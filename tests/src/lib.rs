//! Integration tests for the AJAX Crawl workspace live in `tests/tests/`.
