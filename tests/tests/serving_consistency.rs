//! Property test: the concurrent `ajax-serve` path must be **byte-identical**
//! to the sequential `QueryBroker` — same documents, same score bits, same
//! order — for the full 100-query VidShare workload, under any sharding and
//! any worker count.
//!
//! This is the load-bearing invariant of the serving subsystem: worker pools
//! change *when and where* shard evaluation runs, never *what* it computes.
//! The server collects shard replies in shard order before the global-idf
//! merge, which pins the floating-point summation order to the sequential
//! one.

use ajax_crawl::model::AppModel;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::Query;
use ajax_index::shard::QueryBroker;
use ajax_net::Url;
use ajax_serve::{ServeConfig, ShardServer};
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// The crawled corpus is deterministic and expensive, so it is built once
/// and shared by every proptest case; cases vary the sharding and worker
/// count over it.
fn corpus() -> &'static (Vec<AppModel>, HashMap<String, f64>) {
    static CORPUS: OnceLock<(Vec<AppModel>, HashMap<String, f64>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        use ajax_engine::{AjaxSearchEngine, EngineConfig};
        let spec = VidShareSpec::small(40);
        let start = Url::parse(&spec.watch_url(0));
        let server = Arc::new(VidShareServer::new(spec));
        let mut config = EngineConfig::ajax(40);
        config.keep_models = true;
        let engine = AjaxSearchEngine::build(server, &start, config);
        let pagerank = engine.graph.pagerank.clone();
        (engine.models, pagerank)
    })
}

fn build_shards(per_shard: usize) -> Vec<InvertedIndex> {
    let (models, pagerank) = corpus();
    models
        .chunks(per_shard)
        .map(|chunk| {
            let mut b = IndexBuilder::new();
            for m in chunk {
                b.add_model(m, pagerank.get(&m.url).copied());
            }
            b.build()
        })
        .collect()
}

/// The concurrent serve path must also be bit-identical to the **frozen
/// pre-columnar implementation** (`ajax_index::reference`) — the refactor's
/// before/after contract, asserted end to end rather than transitively
/// through the sequential broker.
#[test]
fn serving_workload_matches_pre_columnar_reference() {
    use ajax_index::reference::{ref_broker_search, RefIndexBuilder};

    let (models, pagerank) = corpus();
    let per_shard = 7;
    let ref_shards: Vec<_> = models
        .chunks(per_shard)
        .map(|chunk| {
            let mut b = RefIndexBuilder::new();
            for m in chunk {
                b.add_model(m, pagerank.get(&m.url).copied());
            }
            b.build()
        })
        .collect();
    let server = ShardServer::new(
        QueryBroker::new(build_shards(per_shard)),
        ServeConfig::default().with_workers_per_shard(2),
    );
    let weights = server.weights();
    for q in query_phrases() {
        let query = Query::parse(q);
        let expected = ref_broker_search(&ref_shards, &query, &weights);
        let got = server.search_query(&query).expect("admitted");
        assert!(!got.degraded);
        assert_eq!(expected.len(), got.results.len(), "count for {q:?}");
        for (rank, (e, g)) in expected.iter().zip(got.results.iter()).enumerate() {
            assert_eq!(e.url, g.url, "url at rank {rank} for {q:?}");
            assert_eq!(e.doc, g.doc, "doc at rank {rank} for {q:?}");
            assert_eq!(e.shard, g.shard, "shard at rank {rank} for {q:?}");
            assert_eq!(
                e.score.to_bits(),
                g.score.to_bits(),
                "score bits at rank {rank} for {q:?}: {} vs {}",
                e.score,
                g.score
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn serving_workload_matches_sequential_broker(
        per_shard in 1usize..=13,
        workers in 1usize..=4,
    ) {
        let sequential = QueryBroker::new(build_shards(per_shard));
        let server = ShardServer::new(
            QueryBroker::new(build_shards(per_shard)),
            ServeConfig::default().with_workers_per_shard(workers),
        );
        for q in query_phrases() {
            let query = Query::parse(q);
            let expected = sequential.search(&query);
            let got = server.search_query(&query)
                .map_err(|e| TestCaseError::fail(format!("query {q:?} not admitted: {e}")))?;
            prop_assert!(!got.degraded, "no deadline configured, nothing may degrade");
            prop_assert_eq!(
                expected.len(), got.results.len(),
                "result count differs for {:?}", q
            );
            for (rank, (e, g)) in expected.iter().zip(got.results.iter()).enumerate() {
                prop_assert_eq!(&e.url, &g.url, "url at rank {} for {:?}", rank, q);
                prop_assert_eq!(e.doc, g.doc, "doc at rank {} for {:?}", rank, q);
                prop_assert_eq!(e.shard, g.shard, "shard at rank {} for {:?}", rank, q);
                prop_assert_eq!(
                    e.score.to_bits(), g.score.to_bits(),
                    "score bits at rank {} for {:?}: {} vs {}", rank, q, e.score, g.score
                );
            }
        }
    }
}
