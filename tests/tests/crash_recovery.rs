//! Kill-anywhere crash/recovery torture tests.
//!
//! The durability tentpole's headline guarantee: a build killed with
//! SIGKILL at an arbitrary point and resumed from its checkpoint journal
//! produces an index **bit-equal** to an uninterrupted run. These tests
//! drive the real `ajax-search` binary as a subprocess (real fsync, real
//! rename, real SIGKILL — not a simulated crash), plus the orphan-reaping
//! guarantees of the distributed cluster launcher.
//!
//! Seed count is bounded by default and overridable: set
//! `CRASH_SEEDS=0,1,2` (comma-separated) to pick seeds, and
//! `AJAX_SEARCH_BIN` to point at a prebuilt binary (what CI's crash-smoke
//! job does).

mod support;

use ajax_index::persist::load_index;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};
use support::{find_ajax_search, ScratchDir};

const VIDEOS: u32 = 12;

fn seeds() -> Vec<u64> {
    match std::env::var("CRASH_SEEDS") {
        Ok(spec) => spec
            .split(',')
            .filter_map(|s| s.trim().parse().ok())
            .collect(),
        Err(_) => (0..8).collect(),
    }
}

/// Deterministic per-seed kill fraction in [0.02, 0.92].
fn kill_fraction(seed: u64) -> f64 {
    let x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    0.02 + (x >> 11) as f64 / (1u64 << 53) as f64 * 0.9
}

fn build_command(bin: &Path, out: &Path, ckpt: Option<&Path>, resume: bool) -> Command {
    let mut cmd = Command::new(bin);
    cmd.arg("build")
        .arg("--videos")
        .arg(VIDEOS.to_string())
        .arg("--out")
        .arg(out)
        .arg("--checkpoint-every")
        .arg("2")
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(dir) = ckpt {
        cmd.arg("--checkpoint-dir").arg(dir);
        if resume {
            cmd.arg("--resume");
        }
    }
    cmd
}

fn run_to_completion(bin: &Path, out: &Path, ckpt: Option<&Path>, resume: bool) {
    let status = build_command(bin, out, ckpt, resume)
        .status()
        .expect("spawn ajax-search build");
    assert!(status.success(), "build exited with {status}");
}

#[test]
fn kill_anywhere_resume_is_bit_equal() {
    let Some(bin) = find_ajax_search() else {
        eprintln!("skipping: ajax-search binary not found (set AJAX_SEARCH_BIN)");
        return;
    };
    let scratch = ScratchDir::new("kill_anywhere");

    // The uninterrupted reference run, timed so kills land inside the
    // build's actual duration.
    let ref_out = scratch.path("reference.ajx");
    let t0 = Instant::now();
    run_to_completion(&bin, &ref_out, None, false);
    let ref_wall = t0.elapsed().max(Duration::from_millis(50));
    let reference = load_index(&ref_out).expect("reference index loads");
    assert!(reference.total_states > 0);

    let mut killed_mid_build = 0usize;
    let seeds = seeds();
    for &seed in &seeds {
        let ckpt = scratch.path(&format!("ckpt_{seed}"));
        let out = scratch.path(&format!("out_{seed}.ajx"));

        // Start a checkpointed build and SIGKILL it at a seeded point.
        let mut child = build_command(&bin, &out, Some(&ckpt), false)
            .spawn()
            .expect("spawn checkpointed build");
        std::thread::sleep(ref_wall.mul_f64(kill_fraction(seed)));
        let already_done = child.try_wait().expect("try_wait").is_some();
        if !already_done {
            child.kill().expect("SIGKILL build");
            killed_mid_build += 1;
        }
        child.wait().expect("reap build");

        // Resume must finish cleanly from whatever the journal holds —
        // including a torn snapshot from the kill — and reproduce the
        // reference index bit for bit.
        run_to_completion(&bin, &out, Some(&ckpt), true);
        let resumed = load_index(&out)
            .unwrap_or_else(|e| panic!("seed {seed}: resumed index unreadable: {e}"));
        assert_eq!(
            resumed, reference,
            "seed {seed}: resumed index differs from uninterrupted build"
        );
    }
    eprintln!(
        "kill-anywhere: {}/{} seeds killed mid-build (reference wall {:?})",
        killed_mid_build,
        seeds.len(),
        ref_wall
    );
    assert!(
        killed_mid_build >= 1,
        "every build finished before its kill — kill fractions are miscalibrated"
    );
}

#[test]
fn double_kill_resume_still_recovers() {
    // Killing the *resume* run too must not corrupt the journal: resume is
    // itself checkpointed, so a second resume completes the build.
    let Some(bin) = find_ajax_search() else {
        eprintln!("skipping: ajax-search binary not found (set AJAX_SEARCH_BIN)");
        return;
    };
    let scratch = ScratchDir::new("double_kill");

    let ref_out = scratch.path("reference.ajx");
    let t0 = Instant::now();
    run_to_completion(&bin, &ref_out, None, false);
    let ref_wall = t0.elapsed().max(Duration::from_millis(50));
    let reference = load_index(&ref_out).expect("reference index loads");

    let ckpt = scratch.path("ckpt");
    let out = scratch.path("out.ajx");
    for (attempt, fraction) in [(0usize, 0.35), (1, 0.55)] {
        let mut child = build_command(&bin, &out, Some(&ckpt), attempt > 0)
            .spawn()
            .expect("spawn build");
        std::thread::sleep(ref_wall.mul_f64(fraction));
        if child.try_wait().expect("try_wait").is_none() {
            child.kill().expect("SIGKILL build");
        }
        child.wait().expect("reap build");
    }
    run_to_completion(&bin, &out, Some(&ckpt), true);
    assert_eq!(
        load_index(&out).expect("final index loads"),
        reference,
        "index after two kills and a final resume differs from reference"
    );
}

#[test]
fn fsck_passes_on_journal_and_flags_corruption() {
    let Some(bin) = find_ajax_search() else {
        eprintln!("skipping: ajax-search binary not found (set AJAX_SEARCH_BIN)");
        return;
    };
    let scratch = ScratchDir::new("fsck");
    let ckpt = scratch.path("ckpt");
    let out = scratch.path("out.ajx");
    run_to_completion(&bin, &out, Some(&ckpt), false);

    // A healthy journal and artifact pass fsck.
    for target in [&ckpt, &out] {
        let status = Command::new(&bin)
            .arg("fsck")
            .arg(target)
            .stdout(std::process::Stdio::null())
            .status()
            .expect("run fsck");
        assert!(
            status.success(),
            "fsck failed on healthy {}",
            target.display()
        );
    }

    // A torn index artifact is fatal damage: nonzero exit.
    let bytes = std::fs::read(&out).expect("read index");
    std::fs::write(&out, &bytes[..bytes.len() / 3]).expect("tear index");
    let status = Command::new(&bin)
        .arg("fsck")
        .arg(&out)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .status()
        .expect("run fsck");
    assert!(!status.success(), "fsck must flag a torn index as fatal");
}

/// Builds a couple of tiny models for cluster-launch tests.
fn tiny_partitions(shards: usize) -> Vec<ajax_index::InvertedIndex> {
    let models: Vec<_> = (0..4)
        .map(|i| {
            let mut m = ajax_crawl::model::AppModel::new(format!("http://x/{i}"));
            m.add_state(i + 1, format!("state text {i}"), None);
            m
        })
        .collect();
    ajax_dist::partition_models(&models, |_| None, shards, None)
}

#[test]
fn failed_cluster_launch_leaves_no_temp_indexes() {
    // `/bin/cat` accepts the spawn but never prints a LISTENING banner, so
    // the launch fails after the child is already running — the guard must
    // reap it and remove the shard index it had been given.
    let exe = Path::new("/bin/cat");
    if !exe.exists() {
        eprintln!("skipping: /bin/cat not available");
        return;
    }
    let err = ajax_dist::DistCluster::launch_processes(
        exe,
        tiny_partitions(2),
        ajax_index::RankWeights::default(),
        ajax_dist::ClusterConfig::default(),
        None,
    );
    assert!(err.is_err(), "cat cannot serve shards");
    for i in 0..2 {
        let leftover: PathBuf =
            std::env::temp_dir().join(format!("ajax-dist-{}-shard{i}.json", std::process::id()));
        assert!(
            !leftover.exists(),
            "failed launch leaked {}",
            leftover.display()
        );
    }
}

#[test]
fn dropped_cluster_reaps_shard_processes() {
    let Some(bin) = find_ajax_search() else {
        eprintln!("skipping: ajax-search binary not found (set AJAX_SEARCH_BIN)");
        return;
    };
    let cluster = ajax_dist::DistCluster::launch_processes(
        &bin,
        tiny_partitions(2),
        ajax_index::RankWeights::default(),
        ajax_dist::ClusterConfig::default(),
        None,
    )
    .expect("launch process cluster");
    let pids = cluster.process_pids();
    assert_eq!(pids.len(), 2);
    #[cfg(target_os = "linux")]
    for pid in &pids {
        assert!(
            Path::new(&format!("/proc/{pid}")).exists(),
            "shard {pid} should be running"
        );
    }
    // Drop without an explicit shutdown(): children must still be killed
    // AND waited on (no zombies — a zombie keeps its /proc entry).
    drop(cluster);
    #[cfg(target_os = "linux")]
    for pid in &pids {
        assert!(
            !Path::new(&format!("/proc/{pid}")).exists(),
            "orphaned shard process {pid} after cluster drop"
        );
    }
}
