//! Shared helpers for integration tests that drive the real `ajax-search`
//! binary as a subprocess.

use std::path::PathBuf;

/// Locates the compiled `ajax-search` binary.
///
/// Order: the `AJAX_SEARCH_BIN` environment variable (what CI sets), then
/// the `target/{debug,release}` directories walking up from the running
/// test executable (which lives in `target/<profile>/deps/`).
pub fn find_ajax_search() -> Option<PathBuf> {
    if let Ok(path) = std::env::var("AJAX_SEARCH_BIN") {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Some(path);
        }
    }
    let name = format!("ajax-search{}", std::env::consts::EXE_SUFFIX);
    let exe = std::env::current_exe().ok()?;
    for dir in exe.ancestors().skip(1) {
        let direct = dir.join(&name);
        if direct.is_file() {
            return Some(direct);
        }
        for profile in ["debug", "release"] {
            let nested = dir.join(profile).join(&name);
            if nested.is_file() {
                return Some(nested);
            }
        }
    }
    None
}

/// A scratch directory under the system temp dir, unique to this process
/// and `tag`; recreated empty. Removed on drop.
pub struct ScratchDir(pub PathBuf);

impl ScratchDir {
    pub fn new(tag: &str) -> Self {
        let mut dir = std::env::temp_dir();
        dir.push(format!("ajax_it_{}_{tag}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        Self(dir)
    }

    pub fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}
