//! End-to-end observability: a traced build emits a valid, deterministic
//! Chrome trace; the profile rollup covers every pipeline phase; tracing off
//! means no spans at all; and the serve layer's flight recorder works under
//! a manual clock.

use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::{Server, Url};
use ajax_obs::{chrome_trace_json, chrome_trace_json_named, validate_chrome_trace, ProfileRollup};
use ajax_serve::{ServeClock, ServeConfig};
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::collections::BTreeSet;
use std::sync::Arc;

fn vidshare(n: u32) -> (Arc<VidShareServer>, Url) {
    let spec = VidShareSpec::small(n);
    let url = Url::parse(&spec.watch_url(0));
    (Arc::new(VidShareServer::new(spec)), url)
}

fn traced_build(n: u32) -> AjaxSearchEngine {
    let (server, start) = vidshare(n);
    AjaxSearchEngine::build(
        server as Arc<dyn Server>,
        &start,
        EngineConfig::ajax(n as usize).with_tracing(true),
    )
}

/// Two same-seed traced builds serialise to byte-identical Chrome traces,
/// and the trace passes shape validation with every phase represented.
#[test]
fn traced_build_emits_a_valid_deterministic_chrome_trace() {
    let a = traced_build(12);
    let b = traced_build(12);
    let names = [(0u32, "line 0"), (1u32, "line 1")];
    let json_a = chrome_trace_json_named(&a.spans, &names);
    let json_b = chrome_trace_json_named(&b.spans, &names);
    assert_eq!(json_a, json_b, "same-seed traces must be byte-identical");

    let stats = validate_chrome_trace(&json_a).expect("trace must be valid");
    assert_eq!(stats.complete_events, a.spans.len());
    for kind in [
        "precrawl.page",
        "crawl.page",
        "crawl.event",
        "crawl.load",
        "index.invert",
    ] {
        assert!(
            stats.span_kinds.contains(kind),
            "trace is missing span kind {kind}"
        );
    }
}

/// The per-phase rollup aggregates every span kind the build emitted, with
/// counts that add back up to the raw span list.
#[test]
fn profile_rollup_covers_the_pipeline_phases() {
    let engine = traced_build(10);
    let rollup = ProfileRollup::from_events(&engine.spans);
    assert!(!rollup.is_empty());
    let rows = rollup.rows();
    let kinds_in_rows: BTreeSet<&str> = rows.iter().map(|r| r.kind.as_str()).collect();
    let kinds_in_spans: BTreeSet<&str> = engine.spans.iter().map(|s| s.name).collect();
    assert_eq!(
        kinds_in_rows,
        kinds_in_spans.iter().copied().collect::<BTreeSet<_>>()
    );
    let total: u64 = rows.iter().map(|r| r.count).sum();
    assert_eq!(total as usize, engine.spans.len());
    let rendered = rollup.render();
    for kind in kinds_in_rows {
        assert!(rendered.contains(kind), "rollup table must list {kind}");
    }
}

/// With tracing off the engine carries no spans and the rollup is empty —
/// the observable half of the zero-cost-when-disabled contract.
#[test]
fn untraced_build_produces_no_spans() {
    let (server, start) = vidshare(8);
    let engine = AjaxSearchEngine::build(server as Arc<dyn Server>, &start, EngineConfig::ajax(8));
    assert!(engine.spans.is_empty());
    assert!(ProfileRollup::from_events(&engine.spans).is_empty());
}

/// Serve-layer flight recorder under a manual clock: queries, shard
/// fan-out, and the merge all land in the ring, and the span log serialises
/// to a valid Chrome trace.
#[test]
fn serve_trace_smoke_under_manual_clock() {
    let engine = traced_build(10);
    let (clock, _handle) = ServeClock::manual();
    let server = engine.into_server(
        ServeConfig::default()
            .with_clock(clock)
            .with_eval_cost_micros(250)
            .with_tracing(true),
    );
    server.search("video").expect("query");
    server.search("video").expect("cached query");
    let spans = server.take_trace();
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert_eq!(count("serve.query"), 2);
    assert_eq!(count("serve.merge"), 1, "the cache hit skips the merge");
    assert!(count("shard.eval") >= 1, "shards must record evaluations");
    let json = chrome_trace_json(&spans);
    let stats = validate_chrome_trace(&json).expect("serve trace must be valid");
    assert_eq!(stats.complete_events, spans.len());
}

/// Two same-seed runs record byte-identical `index.invert` and `serve.query`
/// spans. The `shard.eval` spans interleave on worker threads, but the
/// query-level timeline is pinned by the virtual clock: each evaluation
/// advances it by a fixed cost regardless of scheduling order.
#[test]
fn invert_and_serve_query_spans_identical_across_same_seed_runs() {
    let run = || {
        let engine = traced_build(10);
        let invert: Vec<_> = engine
            .spans
            .iter()
            .filter(|s| s.name == "index.invert")
            .cloned()
            .collect();
        let (clock, _handle) = ServeClock::manual();
        let server = engine.into_server(
            ServeConfig::default()
                .with_clock(clock)
                .with_eval_cost_micros(250)
                .with_tracing(true),
        );
        for q in ["video", "wow dance", "video"] {
            server.search(q).expect("query");
        }
        let queries: Vec<_> = server
            .take_trace()
            .into_iter()
            .filter(|s| s.name == "serve.query")
            .collect();
        (invert, queries)
    };
    let (invert_a, queries_a) = run();
    let (invert_b, queries_b) = run();
    assert!(!invert_a.is_empty());
    assert_eq!(invert_a, invert_b, "index.invert spans must be identical");
    assert_eq!(queries_a.len(), 3);
    assert_eq!(queries_a, queries_b, "serve.query spans must be identical");
}
