//! Failure injection: the crawler must survive hostile pages and flaky
//! servers — the real Web is not the thesis' clean YouTube subset.

use ajax_crawl::crawler::{CrawlConfig, Crawler};
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::Partition;
use ajax_net::server::{FnServer, Request, Response, Server};
use ajax_net::{LatencyModel, Url};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

fn crawler_for(server: Arc<dyn Server>, config: CrawlConfig) -> Crawler {
    Crawler::new(server, LatencyModel::Zero, config)
}

/// Wraps a server, failing every `n`-th request with a 500.
struct FlakyServer<S> {
    inner: S,
    n: u64,
    counter: AtomicU64,
}

impl<S: Server> Server for FlakyServer<S> {
    fn handle(&self, request: &Request) -> Response {
        let k = self.counter.fetch_add(1, Ordering::Relaxed);
        if k % self.n == self.n - 1 {
            Response::server_error("injected failure")
        } else {
            self.inner.handle(request)
        }
    }
}

#[test]
fn infinite_js_loop_is_contained() {
    let server = Arc::new(FnServer(|_: &Request| {
        Response::html(
            "<html><head><script>\
             function spin() { while (true) { var x = 1; } }\
             </script></head>\
             <body onload=\"spin()\"><p>content survives</p>\
             <span onclick=\"spin()\">go</span></body></html>",
        )
    }));
    // The static planner would prove `spin()` stateless and never fire it
    // (a looping handler can't mutate anything before the fuel runs out);
    // disable it — this test is about the *runtime* containment path.
    let mut crawler = crawler_for(
        server,
        CrawlConfig {
            js_fuel: 50_000,
            ..CrawlConfig::ajax().without_static_prune()
        },
    );
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert!(crawl.stats.js_errors >= 2, "onload + click both spin");
    assert_eq!(crawl.model.state_count(), 1);
    assert!(crawl.model.states[0].text.contains("content survives"));
}

#[test]
fn infinite_state_expansion_is_capped() {
    // Every click appends to the DOM: unbounded distinct states.
    let server = Arc::new(FnServer(|_: &Request| {
        Response::html(
            "<html><head><script>\
             var n = 0;\
             function grow() {\
               n = n + 1;\
               var box = document.getElementById('box');\
               box.innerHTML = box.innerHTML + '<p>entry ' + n + '</p>';\
             }\
             </script></head>\
             <body><span id=\"g\" onclick=\"grow()\">grow</span>\
             <div id=\"box\"><p>entry 0</p></div></body></html>",
        )
    }));
    let config = CrawlConfig::ajax().with_max_states(5);
    let max_events = config.max_events_per_page as u64;
    let mut crawler = crawler_for(server, config);
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.model.state_count(), 5, "state cap must hold");
    assert!(crawl.stats.events_fired <= max_events);
}

#[test]
fn deep_recursion_is_contained() {
    let server = Arc::new(FnServer(|_: &Request| {
        Response::html(
            "<html><head><script>function r(n) { return r(n + 1); }</script></head>\
             <body><span onclick=\"r(0)\">boom</span><p>safe</p></body></html>",
        )
    }));
    // As with the infinite loop above, pruning would skip the provably
    // stateless recursion; keep it off to exercise the fuel limit itself.
    let mut crawler = crawler_for(server, CrawlConfig::ajax().without_static_prune());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.stats.js_errors, 1);
    assert_eq!(crawl.model.state_count(), 1);
}

#[test]
fn xhr_errors_are_not_cached_and_crawl_continues() {
    let server = Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
        "/page" => Response::html(
            "<html><head><script>\
             function fetchInto(url, id) {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', url, false);\
               xhr.send(null);\
               if (xhr.status == 200) {\
                 document.getElementById(id).innerHTML = xhr.responseText;\
               }\
             }\
             </script></head><body>\
             <span onclick=\"fetchInto('/missing', 'box')\">bad</span>\
             <span onclick=\"fetchInto('/good', 'box')\">good</span>\
             <div id=\"box\">initial</div></body></html>",
        ),
        "/good" => Response::html("<p>fresh content</p>"),
        _ => Response::not_found(),
    }));
    let mut crawler = crawler_for(server, CrawlConfig::ajax());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.stats.js_errors, 0, "a 404 XHR is not a JS error");
    // The good endpoint produced a second state; the 404 did not.
    assert_eq!(crawl.model.state_count(), 2);
    assert!(crawl
        .model
        .states
        .iter()
        .any(|s| s.text.contains("fresh content")));
}

#[test]
fn malformed_html_fragments_do_not_break_state_tracking() {
    let server = Arc::new(FnServer(|req: &Request| match req.url.path.as_str() {
        "/page" => Response::html(
            "<html><head><script>\
             function load() {\
               var xhr = new XMLHttpRequest();\
               xhr.open('GET', '/broken', false);\
               xhr.send(null);\
               document.getElementById('box').innerHTML = xhr.responseText;\
             }\
             </script></head><body>\
             <span onclick=\"load()\">load</span><div id=\"box\">start</div>\
             </body></html>",
        ),
        // Unclosed tags, stray closers, nonsense nesting.
        "/broken" => Response::html("</div><b><i>text</b> more <p><p><"),
        _ => Response::not_found(),
    }));
    let mut crawler = crawler_for(server, CrawlConfig::ajax());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.model.state_count(), 2);
    let texts: Vec<&str> = crawl.model.states.iter().map(|s| s.text.as_str()).collect();
    assert!(texts.iter().any(|t| t.contains("text")), "{texts:?}");
}

#[test]
fn flaky_server_recovered_by_retries() {
    let inner = ajax_webgen::VidShareServer::new(ajax_webgen::VidShareSpec::small(30));
    let flaky = Arc::new(FlakyServer {
        inner,
        n: 4,
        counter: AtomicU64::new(0),
    });
    let partitions = vec![Partition {
        id: 1,
        urls: (0..12)
            .map(|v| format!("http://vidshare.example/watch?v={v}"))
            .collect(),
    }];
    let mp = MpCrawler::new(flaky, LatencyModel::Zero, CrawlConfig::ajax()).with_proc_lines(1);
    let report = mp.crawl(&partitions);
    let partition = &report.partitions[0];
    // The flaky server fails every 4th request, but consecutive requests
    // differ (its counter advances), so a single retry always recovers:
    // the retry layer turns "1 in 4 pages lost" into zero lost pages.
    assert!(partition.failures.is_empty(), "retries recover every 500");
    assert_eq!(partition.models.len(), 12);
    assert!(
        report.aggregate.fetch_retries > 0,
        "recovery must have cost retries"
    );
    assert!(report.aggregate.backoff_micros > 0, "retries sleep backoff");
}

#[test]
fn flaky_server_without_retries_loses_pages() {
    // The pre-resilience behavior, now opt-in via RetryPolicy::none():
    // failed page GETs are reported and skipped.
    use ajax_crawl::crawler::RetryPolicy;
    let inner = ajax_webgen::VidShareServer::new(ajax_webgen::VidShareSpec::small(30));
    let flaky = Arc::new(FlakyServer {
        inner,
        n: 4,
        counter: AtomicU64::new(0),
    });
    let partitions = vec![Partition {
        id: 1,
        urls: (0..12)
            .map(|v| format!("http://vidshare.example/watch?v={v}"))
            .collect(),
    }];
    let config = CrawlConfig::ajax().with_retry(RetryPolicy::none());
    let mp = MpCrawler::new(flaky, LatencyModel::Zero, config)
        .with_proc_lines(1)
        .with_quarantine_after(1);
    let report = mp.crawl(&partitions);
    let partition = &report.partitions[0];
    assert!(!partition.failures.is_empty(), "some page GETs failed");
    assert!(
        !partition.models.is_empty(),
        "pages between failures still crawled"
    );
    assert_eq!(partition.failures.len() + partition.models.len(), 12);
    for failure in &partition.failures {
        assert!(matches!(
            failure.error,
            ajax_crawl::crawler::CrawlError::Exhausted { status: 500, .. }
        ));
        assert_eq!(failure.attempts, 1);
    }
}

#[test]
fn event_handler_with_syntax_error_is_skipped() {
    let server = Arc::new(FnServer(|_: &Request| {
        Response::html(
            "<html><body>\
             <span onclick=\"this is not javascript ((\">bad</span>\
             <p>page text</p></body></html>",
        )
    }));
    let mut crawler = crawler_for(server, CrawlConfig::ajax());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.stats.js_errors, 1);
    assert_eq!(crawl.model.state_count(), 1);
}

#[test]
fn dom_mutation_of_missing_element_is_a_recorded_error() {
    let server = Arc::new(FnServer(|_: &Request| {
        Response::html(
            "<html><head><script>\
             function poke() { document.getElementById('ghost').innerHTML = 'x'; }\
             </script></head>\
             <body><span onclick=\"poke()\">poke</span></body></html>",
        )
    }));
    let mut crawler = crawler_for(server, CrawlConfig::ajax());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    // getElementById returns null; null.innerHTML is a type error.
    assert_eq!(crawl.stats.js_errors, 1);
    assert_eq!(crawl.model.state_count(), 1);
}

#[test]
fn empty_page_crawls_cleanly() {
    let server = Arc::new(FnServer(|_: &Request| Response::html("")));
    let mut crawler = crawler_for(server, CrawlConfig::ajax());
    let crawl = crawler.crawl_page(&Url::parse("http://x/page")).unwrap();
    assert_eq!(crawl.model.state_count(), 1);
    assert_eq!(crawl.stats.events_fired, 0);
}
