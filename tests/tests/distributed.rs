//! Distributed-serving equivalence and chaos tests (`ajax-dist`).
//!
//! The load-bearing invariant: a coordinator over N shard *processes*
//! (here: thread-mode shard servers speaking the real TCP protocol) returns
//! **bit-identical** merged results to single-process serving — same
//! documents, same order, same score bits — for every shard count. Global
//! idf is computed from exact integer sums at merge time, per-document
//! scores are shard-local, and the wire round-trips every float bit, so
//! partitioning must be unobservable in the ranking.
//!
//! Document identity across partitionings is `(url, doc.state)`; the
//! `shard` field and `doc.page` (an index into the owning partition's page
//! table) are partition-relative provenance and excluded from comparison.
//!
//! On top of equivalence: crash → degraded partial results → restart →
//! recovery through the transport's reconnect backoff, and hedged requests
//! under an injected slow shard (latency changes, results never).

use ajax_crawl::model::AppModel;
use ajax_dist::{partition_models, ClusterConfig, DistCluster};
use ajax_index::shard::QueryBroker;
use ajax_index::{BrokerResult, RankWeights};
use ajax_net::{Fault, FaultPlan, FaultRule, ProxyConfig, Url};
use ajax_serve::{ServeConfig, ShardServer};
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

const CORPUS_PAGES: u32 = 30;

/// Deterministic, expensive crawl — built once, shared by every test.
fn corpus() -> &'static (Vec<AppModel>, HashMap<String, f64>) {
    static CORPUS: OnceLock<(Vec<AppModel>, HashMap<String, f64>)> = OnceLock::new();
    CORPUS.get_or_init(|| {
        use ajax_engine::{AjaxSearchEngine, EngineConfig};
        let spec = VidShareSpec::small(CORPUS_PAGES);
        let start = Url::parse(&spec.watch_url(0));
        let server = Arc::new(VidShareServer::new(spec));
        let mut config = EngineConfig::ajax(CORPUS_PAGES as usize);
        config.keep_models = true;
        let engine = AjaxSearchEngine::build(server, &start, config);
        let pagerank = engine.graph.pagerank.clone();
        (engine.models, pagerank)
    })
}

fn partitions(shards: usize) -> Vec<ajax_index::InvertedIndex> {
    let (models, pagerank) = corpus();
    partition_models(models, |url| pagerank.get(url).copied(), shards, None)
}

fn launch(shards: usize, config: ClusterConfig) -> DistCluster {
    DistCluster::launch_threads(partitions(shards), RankWeights::default(), config)
        .expect("cluster launch")
}

/// The single-process reference: the whole corpus through `ajax-serve`.
fn single_process() -> &'static ShardServer {
    static SINGLE: OnceLock<ShardServer> = OnceLock::new();
    SINGLE.get_or_init(|| ShardServer::new(QueryBroker::new(partitions(1)), ServeConfig::default()))
}

/// Asserts partition-invariant bit-identity of two merged result lists.
fn assert_bit_identical(got: &[BrokerResult], want: &[BrokerResult], context: &str) {
    assert_eq!(got.len(), want.len(), "result count for {context}");
    for (rank, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        assert_eq!(g.url, w.url, "url at rank {rank} for {context}");
        assert_eq!(
            g.doc.state, w.doc.state,
            "state at rank {rank} for {context}"
        );
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "score bits at rank {rank} for {context}: {} vs {}",
            g.score,
            w.score
        );
    }
}

/// The full Table 7.4 workload through 1-, 2- and 4-shard clusters must be
/// bit-identical to single-process serving.
#[test]
fn coordinator_matches_single_process_across_shard_counts() {
    let reference = single_process();
    for shards in [1usize, 2, 4] {
        let mut cluster = launch(shards, ClusterConfig::default());
        for q in query_phrases() {
            let want = reference.search(q).expect("single-process admitted");
            let got = cluster.server.search(q).expect("coordinator admitted");
            assert!(!got.degraded, "{shards} shards degraded on {q:?}");
            assert_bit_identical(
                &got.results,
                &want.results,
                &format!("{q:?} at {shards} shards"),
            );
        }
        cluster.shutdown();
    }
}

/// Killing a shard degrades responses (partial results, the dead shard
/// listed missing) instead of hanging or erroring; restarting it on the
/// same port recovers full, bit-identical results through the transport's
/// reconnect backoff.
#[test]
fn crashed_shard_degrades_then_restart_recovers() {
    let probe = "wow";
    // Cache off: the post-crash probe must actually cross the wire, not be
    // answered from the result cache.
    let mut cluster = launch(
        2,
        ClusterConfig {
            serve: ServeConfig::default().with_cache_capacity(0),
            ..ClusterConfig::default()
        },
    );

    let baseline = cluster.server.search(probe).expect("admitted");
    assert!(!baseline.degraded);

    cluster.kill_shard(1);
    let degraded = cluster.server.search(probe).expect("admitted");
    assert!(degraded.degraded, "dead shard must degrade the response");
    assert_eq!(degraded.missing_shards, vec![1]);
    assert!(
        degraded.results.len() < baseline.results.len(),
        "partial results must come from the surviving shard only"
    );

    cluster.restart_shard(1).expect("restart");
    // Reconnect backoff starts at 5 ms and doubles; give it a few rounds.
    let mut recovered = None;
    for _ in 0..200 {
        let resp = cluster.server.search(probe).expect("admitted");
        if !resp.degraded {
            recovered = Some(resp);
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    let recovered = recovered.expect("coordinator never re-adopted the restarted shard");
    assert_bit_identical(&recovered.results, &baseline.results, "post-restart probe");
    cluster.shutdown();
}

/// A uniformly slow shard (every reply chunk delayed through the chaos
/// proxy) triggers hedged requests on the direct path; hedging changes
/// latency, never results.
#[test]
fn hedging_under_slow_shard_preserves_results() {
    let chaos = ProxyConfig::new(FaultPlan::new(7).with_rule(FaultRule::matching(
        "shard1/reply",
        1.0,
        Fault::Slow { factor: 40.0 },
    )));
    let mut cluster = launch(
        2,
        ClusterConfig {
            serve: ServeConfig::default().with_cache_capacity(0),
            hedge_after_micros: Some(1_000),
            chaos: Some(chaos),
        },
    );
    let reference = single_process();
    for q in query_phrases().iter().take(25) {
        let want = reference.search(q).expect("single-process admitted");
        let got = cluster.server.search(q).expect("coordinator admitted");
        assert!(
            !got.degraded,
            "hedging must keep results complete for {q:?}"
        );
        assert_bit_identical(&got.results, &want.results, &format!("{q:?} hedged"));
    }
    assert!(
        cluster.hedges_fired() > 0,
        "a uniformly slow shard must fire hedges"
    );
    cluster.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Seeded query selections over seeded shard counts: every sampled
    /// query's coordinator top-k (documents, order, score bits) equals
    /// single-process serve.
    #[test]
    fn sampled_queries_match_single_process(
        shards in 1usize..=4,
        picks in proptest::collection::vec(0usize..100, 4..12),
    ) {
        let reference = single_process();
        let workload = query_phrases();
        let mut cluster = launch(shards, ClusterConfig::default());
        for &i in &picks {
            let q = workload[i % workload.len()];
            let want = reference.search(q)
                .map_err(|e| TestCaseError::fail(format!("reference shed {q:?}: {e}")))?;
            let got = cluster.server.search(q)
                .map_err(|e| TestCaseError::fail(format!("coordinator shed {q:?}: {e}")))?;
            prop_assert!(!got.degraded, "degraded on {:?} at {} shards", q, shards);
            prop_assert_eq!(got.results.len(), want.results.len(), "count for {:?}", q);
            for (rank, (g, w)) in got.results.iter().zip(want.results.iter()).enumerate() {
                prop_assert_eq!(&g.url, &w.url, "url at rank {} for {:?}", rank, q);
                prop_assert_eq!(g.doc.state, w.doc.state, "state at rank {} for {:?}", rank, q);
                prop_assert_eq!(
                    g.score.to_bits(), w.score.to_bits(),
                    "score bits at rank {} for {:?}", rank, q
                );
            }
        }
        cluster.shutdown();
    }
}
