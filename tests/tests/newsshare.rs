//! Crawling the second synthetic application (NewsShare): two independent
//! AJAX regions, two hot nodes, a product-shaped state space — the scenario
//! behind the thesis' conjecture that multiple hot nodes benefit even more
//! from caching (§7.3).

use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_crawl::model::StateId;
use ajax_crawl::replay::reconstruct_state;
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{NewsShareServer, NewsSpec};
use std::sync::Arc;

fn crawl_news(page: u32, config: CrawlConfig) -> (ajax_crawl::model::AppModel, PageStats) {
    let spec = NewsSpec::small(30);
    let url = Url::parse(&spec.page_url(page));
    let server = Arc::new(NewsShareServer::new(spec));
    let mut crawler = Crawler::new(
        server as Arc<dyn Server>,
        LatencyModel::Fixed(5_000),
        config,
    );
    let result = crawler.crawl_page(&url).expect("crawl");
    (result.model, result.stats)
}

#[test]
fn discovers_product_state_space() {
    let (model, stats) = crawl_news(3, CrawlConfig::ajax().with_max_states(20));
    // 3 sections × 3 story pages = 9 combined states.
    assert_eq!(
        model.state_count(),
        9,
        "state space must be the product of the two regions; transitions: {:#?}",
        model.transitions
    );
    assert_eq!(stats.hot_nodes, 2, "fetchSection and fetchStories");
    // All states reachable.
    for s in 0..model.state_count() {
        assert!(model.event_path(StateId(s as u32)).is_some(), "state {s}");
    }
}

#[test]
fn two_hot_nodes_cache_all_repeat_calls() {
    let config = CrawlConfig::ajax().with_max_states(20);
    let (_, cached) = crawl_news(3, config.clone());
    let (_, uncached) = crawl_news(
        3,
        CrawlConfig {
            hot_node_policy: false,
            ..config
        },
    );
    assert_eq!(cached.states, uncached.states);
    // Distinct fetches: 3 sections + 3 story pages = 6 (section 0 and page 1
    // are also fetchable via events, their inline copies never hit the
    // cache); the cap is 6 network calls with caching.
    assert!(
        cached.ajax_network_calls <= 6,
        "{}",
        cached.ajax_network_calls
    );
    assert!(
        uncached.ajax_network_calls > cached.ajax_network_calls * 3,
        "dense event collisions should save >3x: {} vs {}",
        uncached.ajax_network_calls,
        cached.ajax_network_calls
    );
}

#[test]
fn multi_hot_node_site_beats_single_hot_node_reduction() {
    // The §7.3 conjecture, tested: NewsShare (2 hot nodes, product state
    // space) should enjoy an equal-or-better call-reduction factor than a
    // comparable VidShare page (1 hot node, linear chain).
    let (_, news_cached) = crawl_news(3, CrawlConfig::ajax().with_max_states(20));
    let (_, news_uncached) = crawl_news(
        3,
        CrawlConfig {
            hot_node_policy: false,
            ..CrawlConfig::ajax().with_max_states(20)
        },
    );
    let news_factor =
        news_uncached.ajax_network_calls as f64 / news_cached.ajax_network_calls.max(1) as f64;

    // A VidShare video with a similar state count (aim for ≥6 pages).
    let vid_spec = ajax_webgen::VidShareSpec::small(80);
    let video = (0..80)
        .find(|&v| ajax_webgen::video_meta(&vid_spec, v).comment_pages >= 6)
        .expect("a long video");
    let vid_url = Url::parse(&vid_spec.watch_url(video));
    let vid_server = Arc::new(ajax_webgen::VidShareServer::new(vid_spec));
    let crawl_vid = |config: CrawlConfig| -> PageStats {
        let mut crawler = Crawler::new(
            Arc::clone(&vid_server) as Arc<dyn Server>,
            LatencyModel::Fixed(5_000),
            config,
        );
        crawler.crawl_page(&vid_url).expect("crawl").stats
    };
    let vid_cached = crawl_vid(CrawlConfig::ajax());
    let vid_uncached = crawl_vid(CrawlConfig::ajax_no_cache());
    let vid_factor =
        vid_uncached.ajax_network_calls as f64 / vid_cached.ajax_network_calls.max(1) as f64;

    assert!(
        news_factor >= vid_factor * 0.9,
        "multi-hot-node reduction ({news_factor:.2}x) should not trail the \
         single-hot-node site ({vid_factor:.2}x) materially"
    );
}

#[test]
fn news_states_replayable() {
    let (model, _) = crawl_news(7, CrawlConfig::ajax().with_max_states(20).storing_dom());
    for state in &model.states {
        let doc = reconstruct_state(&model, state.id)
            .unwrap_or_else(|e| panic!("state {}: {e}", state.id));
        assert_eq!(doc.content_hash(), state.hash);
    }
}

#[test]
fn state_cap_prunes_product_space() {
    let (model, _) = crawl_news(3, CrawlConfig::ajax().with_max_states(4));
    assert_eq!(model.state_count(), 4);
}

#[test]
fn section_content_indexed_per_state() {
    let spec = NewsSpec::small(30);
    let (model, _) = crawl_news(3, CrawlConfig::ajax().with_max_states(20));
    // Every section's first headline must occur in at least one state.
    for section in &spec.sections {
        let headline = spec.headline(3, section, 0);
        assert!(
            model.states.iter().any(|s| s.text.contains(&headline)),
            "{section} headline missing from all states"
        );
    }
    // And deep combinations: tech section + stories page 3 simultaneously.
    let tech = spec.headline(3, "tech", 0);
    let stories3 = spec.headline(3, "stories3", 0);
    assert!(
        model
            .states
            .iter()
            .any(|s| s.text.contains(&tech) && s.text.contains(&stories3)),
        "combined state (tech, stories3) must exist"
    );
}

#[test]
fn transitions_annotated_with_modified_targets() {
    // Table 2.1: the comment-box transitions on VidShare must carry
    // div#recent_comments as their modified target; NewsShare transitions
    // must name one of the two AJAX regions.
    let vid_spec = ajax_webgen::VidShareSpec::small(50);
    let video = (0..50)
        .find(|&v| ajax_webgen::video_meta(&vid_spec, v).comment_pages >= 3)
        .unwrap();
    let url = Url::parse(&vid_spec.watch_url(video));
    let server = Arc::new(ajax_webgen::VidShareServer::new(vid_spec));
    let mut crawler = Crawler::new(
        server as Arc<dyn Server>,
        LatencyModel::Zero,
        CrawlConfig::ajax(),
    );
    let model = crawler.crawl_page(&url).unwrap().model;
    assert!(!model.transitions.is_empty());
    for t in &model.transitions {
        assert_eq!(
            t.targets,
            vec!["div#recent_comments".to_string()],
            "transition {} -> {} via {:?}",
            t.from,
            t.to,
            t.action
        );
    }

    let (news_model, _) = crawl_news(3, CrawlConfig::ajax().with_max_states(20));
    for t in &news_model.transitions {
        assert_eq!(t.targets.len(), 1, "one region changes per event");
        let target = &t.targets[0];
        // Section switches pinpoint the inner panel (its data-section
        // attribute changed); story pagination refills the whole box.
        assert!(
            target == "div.panel" || target == "div#top_stories",
            "unexpected target {target} for {:?}",
            t.action
        );
    }
}
