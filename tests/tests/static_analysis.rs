//! Integration tests for the static effect analysis and the crawl planner
//! built on it: pruning must change *cost* (events fired), never *results*
//! (transition graphs, state counts, search output), and verify mode must
//! find zero soundness mismatches on both generated sites.

use ajax_crawl::crawler::CrawlConfig;
use ajax_engine::{analyze_site, AjaxSearchEngine, EngineConfig};
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{
    query_workload, GalleryServer, GallerySpec, NewsShareServer, NewsSpec, VidShareServer,
    VidShareSpec,
};
use std::sync::Arc;

fn vid_site(n: u32) -> (Arc<VidShareServer>, Url) {
    let spec = VidShareSpec::small(n);
    let start = Url::parse(&spec.watch_url(0));
    (Arc::new(VidShareServer::new(spec)), start)
}

fn build(n: u32, crawl: CrawlConfig) -> AjaxSearchEngine {
    let (server, start) = vid_site(n);
    let mut config = EngineConfig::ajax(n as usize);
    config.crawl = crawl;
    config.keep_models = true;
    AjaxSearchEngine::build(server, &start, config)
}

#[test]
fn pruned_build_is_cheaper_but_identical() {
    let n = 20;
    let pruned = build(n, CrawlConfig::ajax());
    let baseline = build(n, CrawlConfig::ajax().without_static_prune());

    // Cost: the planner must actually cut fired events.
    assert!(pruned.report.crawl.pruned_events > 0, "nothing was pruned");
    assert!(
        pruned.report.crawl.events_fired < baseline.report.crawl.events_fired,
        "pruning must reduce fired events: {} !< {}",
        pruned.report.crawl.events_fired,
        baseline.report.crawl.events_fired
    );

    // Results: state counts, transition graphs, and the index must agree.
    assert_eq!(pruned.report.crawl.states, baseline.report.crawl.states);
    assert_eq!(
        pruned.report.crawl.transitions,
        baseline.report.crawl.transitions
    );
    assert_eq!(pruned.report.total_states, baseline.report.total_states);
    let sig = |e: &AjaxSearchEngine| -> Vec<(String, u64)> {
        let mut sigs: Vec<(String, u64)> = e
            .models
            .iter()
            .map(|m| (m.url.clone(), m.graph_signature()))
            .collect();
        sigs.sort();
        sigs
    };
    assert_eq!(sig(&pruned), sig(&baseline), "transition graphs diverged");

    for query in query_workload().iter().take(6) {
        let a = pruned.search(&query.text);
        let b = baseline.search(&query.text);
        assert_eq!(a.len(), b.len(), "result count for {:?}", query.text);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.url, rb.url);
            assert_eq!(ra.doc.state, rb.doc.state);
        }
    }
}

#[test]
fn verify_prune_is_sound_on_both_sites() {
    // VidShare via the engine pipeline.
    let verified = build(12, CrawlConfig::ajax().verifying_prune());
    assert!(verified.report.crawl.pruned_events > 0);
    assert_eq!(
        verified.report.crawl.prune_mismatches, 0,
        "a statically-pruned vidshare event changed state"
    );

    // NewsShare via a direct crawl of every page.
    let spec = NewsSpec::small(4);
    let server: Arc<dyn Server> = Arc::new(NewsShareServer::new(spec.clone()));
    let mut crawler = ajax_crawl::Crawler::new(
        server,
        LatencyModel::Zero,
        CrawlConfig::ajax().verifying_prune(),
    );
    for page in 0..4 {
        let crawl = crawler
            .crawl_page(&Url::parse(&spec.page_url(page)))
            .unwrap();
        assert_eq!(
            crawl.stats.prune_mismatches, 0,
            "a statically-pruned news event changed state on page {page}"
        );
    }
}

#[test]
fn analysis_span_appears_in_traced_builds() {
    let (server, start) = vid_site(6);
    let mut config = EngineConfig::ajax(6);
    config.trace = true;
    let engine = AjaxSearchEngine::build(server, &start, config);
    let pages = engine
        .spans
        .iter()
        .filter(|s| s.name == "analysis.page")
        .count();
    assert!(pages >= 6, "one analysis.page span per crawled page");
}

#[test]
fn analyze_surface_flags_both_sites_clean() {
    // The CI analyze-smoke gate in library form: no error-severity
    // diagnostics on either generated site.
    let vid_spec = VidShareSpec::small(6);
    let vid_urls: Vec<String> = (0..6).map(|v| vid_spec.watch_url(v)).collect();
    let vid = analyze_site(&VidShareServer::new(vid_spec), &vid_urls);
    assert!(!vid.has_errors(), "vidshare must lint clean");

    let news_spec = NewsSpec::small(4);
    let news_urls: Vec<String> = (0..4).map(|p| news_spec.page_url(p)).collect();
    let news = analyze_site(&NewsShareServer::new(news_spec), &news_urls);
    assert!(!news.has_errors(), "news must lint clean");
}

fn gallery_build(n: u32, crawl: CrawlConfig) -> AjaxSearchEngine {
    let spec = GallerySpec::small(n);
    let start = Url::parse(&spec.page_url(0));
    let server = Arc::new(GalleryServer::new(spec));
    let mut config = EngineConfig::ajax(n as usize);
    config.crawl = crawl;
    config.keep_models = true;
    config.path_filter = Some("/album".to_string());
    AjaxSearchEngine::build(server, &start, config)
}

#[test]
fn equiv_pruned_gallery_build_is_cheaper_but_identical() {
    let n = 4;
    let baseline = gallery_build(n, CrawlConfig::ajax());
    let pruned = gallery_build(n, CrawlConfig::ajax().with_equiv_prune());

    // Cost: both claim channels fire, every skipped event is accounted
    // for, and the acceptance bar (≥ 40% fewer fired events) clears.
    assert!(pruned.report.crawl.equiv_pruned_events > 0);
    assert!(pruned.report.crawl.commute_pruned_events > 0);
    assert_eq!(
        pruned.report.crawl.events_fired
            + pruned.report.crawl.equiv_pruned_events
            + pruned.report.crawl.commute_pruned_events,
        baseline.report.crawl.events_fired,
        "claimed events must partition the baseline's fired events"
    );
    assert!(
        pruned.report.crawl.events_fired * 5 <= baseline.report.crawl.events_fired * 3,
        "expected >=40% reduction: {} vs {}",
        pruned.report.crawl.events_fired,
        baseline.report.crawl.events_fired
    );

    // Results: state counts, transition graphs, and search output agree.
    assert_eq!(pruned.report.crawl.states, baseline.report.crawl.states);
    assert_eq!(
        pruned.report.crawl.transitions,
        baseline.report.crawl.transitions
    );
    assert_eq!(pruned.report.total_states, baseline.report.total_states);
    let sig = |e: &AjaxSearchEngine| -> Vec<(String, u64)> {
        let mut sigs: Vec<(String, u64)> = e
            .models
            .iter()
            .map(|m| (m.url.clone(), m.graph_signature()))
            .collect();
        sigs.sort();
        sigs
    };
    assert_eq!(sig(&pruned), sig(&baseline), "transition graphs diverged");
    for query in query_workload().iter().take(6) {
        let a = pruned.search(&query.text);
        let b = baseline.search(&query.text);
        assert_eq!(a.len(), b.len(), "result count for {:?}", query.text);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.url, rb.url);
            assert_eq!(ra.doc.state, rb.doc.state);
            assert_eq!(ra.score.to_bits(), rb.score.to_bits());
        }
    }
}

#[test]
fn verify_equiv_finds_no_mismatches_on_gallery() {
    let verified = gallery_build(4, CrawlConfig::ajax().verifying_equiv());
    assert!(
        verified.report.crawl.equiv_pruned_events + verified.report.crawl.commute_pruned_events > 0,
        "verify mode must still make claims to check"
    );
    assert_eq!(
        verified.report.crawl.equiv_mismatches, 0,
        "an event claimed barren by equivalence/commutativity changed state"
    );
    // Verify fires everything, so its model matches the plain baseline.
    let baseline = gallery_build(4, CrawlConfig::ajax());
    assert_eq!(
        verified.report.crawl.events_fired,
        baseline.report.crawl.events_fired
    );
    assert_eq!(verified.report.total_states, baseline.report.total_states);
}

#[test]
fn analyze_surface_reports_gallery_classes() {
    let spec = GallerySpec::small(3);
    let urls: Vec<String> = (0..3).map(|a| spec.page_url(a)).collect();
    let site = analyze_site(&GalleryServer::new(spec), &urls);
    assert!(!site.has_errors(), "gallery must lint clean");
    for page in &site.pages {
        // All caption + tag rows collapse into one class.
        let biggest = page
            .equiv_classes
            .iter()
            .map(|c| c.members.len())
            .max()
            .unwrap_or(0);
        assert!(
            biggest >= 10,
            "expected a large redundant-handler class, got {biggest}"
        );
        assert!(!page.commute.codes.is_empty());
    }
}
