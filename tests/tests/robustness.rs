//! Robustness of the resilient crawl: determinism under injected faults,
//! fault-transparency of retries, zero page loss under transient faults,
//! and quarantine of permanently dead URLs.

use ajax_crawl::crawler::{CrawlConfig, Crawler};
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::{partition_urls, Partition};
use ajax_net::{Fault, FaultPlan, FaultRule, LatencyModel, Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use std::sync::Arc;

fn vidshare(n: u32) -> Arc<VidShareServer> {
    Arc::new(VidShareServer::new(VidShareSpec::small(n)))
}

fn watch_urls(n: u32) -> Vec<String> {
    (0..n)
        .map(|v| format!("http://vidshare.example/watch?v={v}"))
        .collect()
}

/// Two serial crawls under the same fault seed are bit-identical: same
/// states, same transitions, same stats (virtual time included).
#[test]
fn serial_crawl_is_deterministic_under_faults() {
    let run = || {
        let server = vidshare(20);
        let mut crawler =
            Crawler::new(server, LatencyModel::thesis_default(7), CrawlConfig::ajax())
                .with_fault_plan(FaultPlan::transient_mix(9, 0.3));
        watch_urls(6)
            .iter()
            .map(|u| crawler.crawl_page(&Url::parse(u)).expect("crawl"))
            .collect::<Vec<_>>()
    };
    let a = run();
    let b = run();
    for (pa, pb) in a.iter().zip(&b) {
        assert_eq!(pa.model.states, pb.model.states);
        assert_eq!(pa.model.transitions, pb.model.transitions);
        assert_eq!(pa.stats, pb.stats, "virtual time must reproduce exactly");
    }
}

/// Two parallel crawls under the same fault seed produce identical models,
/// stats, and makespan — thread scheduling must not leak into results.
#[test]
fn parallel_crawl_is_deterministic_under_faults() {
    let partitions = partition_urls(&watch_urls(16), 4);
    let run = || {
        let mp = MpCrawler::new(
            vidshare(20) as Arc<dyn Server>,
            LatencyModel::thesis_default(7),
            CrawlConfig::ajax(),
        )
        .with_proc_lines(4)
        .with_fault_plan(FaultPlan::transient_mix(5, 0.3));
        mp.crawl(&partitions)
    };
    let a = run();
    let b = run();
    assert_eq!(a.aggregate, b.aggregate);
    assert_eq!(a.virtual_makespan, b.virtual_makespan);
    assert_eq!(a.virtual_serial, b.virtual_serial);
    for (pa, pb) in a.partitions.iter().zip(&b.partitions) {
        assert_eq!(pa.failures, pb.failures);
        assert_eq!(pa.models.len(), pb.models.len());
        for (ma, mb) in pa.models.iter().zip(&pb.models) {
            assert_eq!(ma.url, mb.url);
            assert_eq!(ma.states, mb.states);
            assert_eq!(ma.transitions, mb.transitions);
        }
    }
}

/// Transient 5xx that succeed within the retry budget are invisible in the
/// crawled model: states and transitions match the fault-free crawl.
#[test]
fn recovered_faults_leave_no_trace_in_the_model() {
    let crawl = |plan: Option<FaultPlan>| {
        let mut crawler = Crawler::new(
            vidshare(15) as Arc<dyn Server>,
            LatencyModel::thesis_default(7),
            CrawlConfig::ajax(),
        );
        if let Some(plan) = plan {
            crawler = crawler.with_fault_plan(plan);
        }
        watch_urls(8)
            .iter()
            .map(|u| crawler.crawl_page(&Url::parse(u)).expect("crawl"))
            .collect::<Vec<_>>()
    };
    // Every request fails once then succeeds: well inside 3 attempts.
    let plan = FaultPlan::new(3).with_rule(FaultRule::any(
        1.0,
        Fault::Transient {
            status: 503,
            fail_attempts: 1,
        },
    ));
    let clean = crawl(None);
    let faulty = crawl(Some(plan));
    for (c, f) in clean.iter().zip(&faulty) {
        assert_eq!(c.model.states, f.model.states);
        assert_eq!(c.model.transitions, f.model.transitions);
        assert_eq!(f.model.partial_states, 0, "nothing exhausted its budget");
        assert!(f.stats.fetch_retries > 0, "faults must have cost retries");
        assert_eq!(
            c.stats.ajax_network_calls, f.stats.ajax_network_calls,
            "logical calls"
        );
    }
}

/// 30% transient faults on the webgen site: zero lost pages, every model
/// present, costs visible in the report.
#[test]
fn thirty_percent_transient_faults_lose_no_pages() {
    let urls = watch_urls(24);
    let partitions = partition_urls(&urls, 6);
    let mp = MpCrawler::new(
        vidshare(30) as Arc<dyn Server>,
        LatencyModel::thesis_default(7),
        CrawlConfig::ajax(),
    )
    .with_proc_lines(4)
    .with_fault_plan(FaultPlan::transient_mix(17, 0.3));
    let report = mp.crawl(&partitions);
    let crawled: usize = report.partitions.iter().map(|p| p.models.len()).sum();
    assert_eq!(
        crawled,
        urls.len(),
        "no page may be lost to transient faults"
    );
    for p in &report.partitions {
        assert!(p.failures.is_empty(), "partition {} lost pages", p.id);
    }
    assert!(report.aggregate.fetch_retries > 0);
    assert!(report.aggregate.backoff_micros > 0);
    assert_eq!(report.quarantined_pages, 0);
    // `quarantined_pages` counts a subset of `failed_pages`; with nothing
    // lost, both halves of the accounting identity are zero.
    assert_eq!(report.failed_pages, 0);
    assert_eq!(
        report.failed_pages,
        report.quarantined_pages + report.permanent_failures()
    );
}

/// A permanently dead URL pattern is quarantined after K page-level
/// attempts; healthy pages are unaffected.
#[test]
fn dead_urls_quarantined_after_k_attempts() {
    let urls = watch_urls(8);
    let partitions = vec![Partition {
        id: 0,
        urls: urls.clone(),
    }];
    let k = 3;
    // v=5 times out on every attempt — a transport-level dead host.
    let plan = FaultPlan::new(1).with_rule(FaultRule::matching("v=5", 1.0, Fault::Timeout));
    let mp = MpCrawler::new(
        vidshare(10) as Arc<dyn Server>,
        LatencyModel::thesis_default(7),
        CrawlConfig::ajax(),
    )
    .with_proc_lines(1)
    .with_fault_plan(plan)
    .with_quarantine_after(k);
    let report = mp.crawl(&partitions);
    let p = &report.partitions[0];
    assert_eq!(p.models.len(), urls.len() - 1, "healthy pages all crawled");
    assert_eq!(p.failures.len(), 1);
    let failure = &p.failures[0];
    assert!(failure.url.contains("v=5"));
    assert_eq!(failure.attempts, k, "exactly K page-level attempts");
    assert!(
        failure.quarantined,
        "persistent transient failure → quarantine"
    );
    assert!(matches!(
        failure.error,
        ajax_crawl::crawler::CrawlError::Timeout { .. }
    ));
    assert_eq!(report.quarantined_pages, 1);
    assert_eq!(report.page_retries, (k - 1) as u64);
    // The one abandoned page is both failed and quarantined: quarantine is a
    // subset of failure, not a disjoint bucket, so the identity
    // failed = quarantined + permanent must hold with permanent = 0 here.
    assert_eq!(report.failed_pages, 1);
    assert_eq!(report.permanent_failures(), 0);
    assert_eq!(
        report.failed_pages,
        report.quarantined_pages + report.permanent_failures()
    );
}
