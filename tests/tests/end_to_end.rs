//! End-to-end integration tests: the full pipeline against the VidShare
//! site, exercising every phase of Fig 6.1 together.

use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_net::{Server, Url};
use ajax_webgen::{ground_truth, query_workload, VidShareServer, VidShareSpec};
use std::sync::Arc;

fn site(n: u32) -> (Arc<VidShareServer>, Url) {
    let spec = VidShareSpec::small(n);
    let start = Url::parse(&spec.watch_url(0));
    (Arc::new(VidShareServer::new(spec)), start)
}

#[test]
fn engine_results_match_generator_ground_truth() {
    // What the crawler+indexer find must equal what the generator knows it
    // planted: for each query, (video, state)-matches at full depth.
    let n = 40;
    let (server, start) = site(n);
    let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(n as usize));
    let spec = VidShareSpec::small(n);

    for query in query_workload().iter().take(8) {
        let results = engine.search(&query.text);
        let truth = ground_truth(&spec, n, 11, query);
        let expected = *truth.state_matches_by_depth.last().unwrap() as usize;
        assert_eq!(
            results.len(),
            expected,
            "query {:?}: engine {} vs ground truth {}",
            query.text,
            results.len(),
            expected
        );
    }
}

#[test]
fn traditional_engine_matches_first_page_ground_truth() {
    let n = 40;
    let (server, start) = site(n);
    let engine = AjaxSearchEngine::build(server, &start, EngineConfig::traditional(n as usize));
    let spec = VidShareSpec::small(n);

    for query in query_workload().iter().take(8) {
        let results = engine.search(&query.text);
        let truth = ground_truth(&spec, n, 1, query);
        assert_eq!(
            results.len(),
            truth.first_page_videos as usize,
            "query {:?}",
            query.text
        );
    }
}

#[test]
fn hot_node_policy_does_not_change_search_results() {
    let n = 25;
    let (server, start) = site(n);
    let mut no_cache_cfg = EngineConfig::ajax(n as usize);
    no_cache_cfg.crawl.hot_node_policy = false;

    let cached = AjaxSearchEngine::build(
        Arc::clone(&server) as Arc<dyn Server>,
        &start,
        EngineConfig::ajax(n as usize),
    );
    let uncached = AjaxSearchEngine::build(server, &start, no_cache_cfg);

    for q in ["wow", "dance", "morcheeba mysterious video", "our song"] {
        let a: Vec<_> = cached
            .search(q)
            .iter()
            .map(|r| (r.url.clone(), r.doc.state))
            .collect();
        let b: Vec<_> = uncached
            .search(q)
            .iter()
            .map(|r| (r.url.clone(), r.doc.state))
            .collect();
        assert_eq!(a, b, "query {q:?}");
    }
    // But the cached build must have been cheaper on the network.
    assert!(cached.report.crawl.ajax_network_calls < uncached.report.crawl.ajax_network_calls);
}

#[test]
fn partition_size_does_not_change_search_results() {
    let n = 30;
    let (server, start) = site(n);
    let configs = [1usize, 7, 30].map(|partition_size| EngineConfig {
        partition_size,
        ..EngineConfig::ajax(n as usize)
    });
    let engines: Vec<_> = configs
        .into_iter()
        .map(|c| AjaxSearchEngine::build(Arc::clone(&server) as Arc<dyn Server>, &start, c))
        .collect();
    for q in ["wow", "kiss", "american idol"] {
        let reference: Vec<_> = engines[0]
            .search(q)
            .iter()
            .map(|r| (r.url.clone(), r.doc.state, (r.score * 1e9).round() as i64))
            .collect();
        for engine in &engines[1..] {
            let other: Vec<_> = engine
                .search(q)
                .iter()
                .map(|r| (r.url.clone(), r.doc.state, (r.score * 1e9).round() as i64))
                .collect();
            assert_eq!(reference, other, "query {q:?}: sharding changed results");
        }
    }
}

#[test]
fn recall_improves_monotonically_with_indexed_states() {
    let n = 50;
    let (server, start) = site(n);
    let mut counts = Vec::new();
    for depth in [1usize, 3, 6, 11] {
        let engine = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig {
                max_index_states: Some(depth),
                ..EngineConfig::ajax(n as usize)
            },
        );
        let total: usize = query_workload()
            .iter()
            .take(15)
            .map(|q| engine.search(&q.text).len())
            .sum();
        counts.push(total);
    }
    assert!(
        counts.windows(2).all(|w| w[0] <= w[1]),
        "recall must grow with depth: {counts:?}"
    );
    assert!(
        counts.last() > counts.first(),
        "AJAX states must add results: {counts:?}"
    );
}

#[test]
fn engine_survives_broken_start_page() {
    let (server, _) = site(5);
    // Start the precrawl from a 404 page: nothing crawled, empty engine,
    // queries return nothing — no panics anywhere.
    let start = Url::parse("http://vidshare.example/watch?v=999999");
    let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(5));
    assert_eq!(engine.report.pages_crawled, 0);
    assert_eq!(engine.report.pages_failed, 1);
    assert!(engine.search("wow").is_empty());
}
