//! Cross-crate property-based tests (proptest) on the core invariants the
//! thesis' correctness rests on.

use ajax_crawl::crawler::{CrawlConfig, Crawler};
use ajax_crawl::replay::reconstruct_state;
use ajax_dom::parse_document;
use ajax_index::invert::IndexBuilder;
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::shard::QueryBroker;
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use proptest::prelude::*;
use std::sync::Arc;

fn crawl_video(seed: u64, video: u32, config: CrawlConfig) -> ajax_crawl::model::AppModel {
    let spec = VidShareSpec {
        seed,
        ..VidShareSpec::small(64)
    };
    let server = Arc::new(VidShareServer::new(spec));
    let mut crawler = Crawler::new(server as Arc<dyn Server>, LatencyModel::Zero, config);
    crawler
        .crawl_page(&Url::parse(&format!(
            "http://vidshare.example/watch?v={video}"
        )))
        .expect("crawl")
        .model
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The hot-node cache must be *transparent*: same states, same
    /// transitions, for any site seed and any video.
    #[test]
    fn cache_transparency(seed in 0u64..1_000, video in 0u32..64) {
        let cached = crawl_video(seed, video, CrawlConfig::ajax());
        let uncached = crawl_video(seed, video, CrawlConfig::ajax_no_cache());
        prop_assert_eq!(&cached.states, &uncached.states);
        prop_assert_eq!(&cached.transitions, &uncached.transitions);
    }

    /// Crawling is deterministic: same inputs, identical model.
    #[test]
    fn crawl_determinism(seed in 0u64..1_000, video in 0u32..64) {
        let a = crawl_video(seed, video, CrawlConfig::ajax());
        let b = crawl_video(seed, video, CrawlConfig::ajax());
        prop_assert_eq!(a, b);
    }

    /// Every crawled state can be reconstructed by event replay, hash-exact.
    #[test]
    fn replay_soundness(seed in 0u64..300, video in 0u32..64) {
        let model = crawl_video(seed, video, CrawlConfig::ajax().storing_dom());
        for state in &model.states {
            let doc = reconstruct_state(&model, state.id)
                .map_err(|e| TestCaseError::fail(format!("state {}: {e}", state.id)))?;
            prop_assert_eq!(doc.content_hash(), state.hash);
        }
    }

    /// State-count caps are always respected and state hashes are unique.
    #[test]
    fn state_cap_and_uniqueness(seed in 0u64..1_000, video in 0u32..64, cap in 1usize..12) {
        let model = crawl_video(seed, video, CrawlConfig::ajax().with_max_states(cap));
        prop_assert!(model.state_count() <= cap);
        let mut hashes: Vec<u64> = model.states.iter().map(|s| s.hash).collect();
        hashes.sort_unstable();
        hashes.dedup();
        prop_assert_eq!(hashes.len(), model.state_count(), "duplicate states in model");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// HTML parse → serialize → parse is a fixpoint on the *normalized*
    /// form, for arbitrary text content and ids.
    #[test]
    fn html_roundtrip_fixpoint(
        texts in proptest::collection::vec("[ -~]{0,40}", 1..6),
        ids in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..6),
    ) {
        let mut html = String::new();
        for (text, id) in texts.iter().zip(ids.iter()) {
            html.push_str(&format!("<div id=\"{id}\"><p>{}</p></div>",
                ajax_dom::entities::encode_text(text)));
        }
        let doc1 = parse_document(&html);
        let doc2 = parse_document(&doc1.to_html());
        prop_assert_eq!(doc1.normalized(), doc2.normalized());
        prop_assert_eq!(doc1.content_hash(), doc2.content_hash());
    }

    /// Sharded query processing must equal the single-index reference for
    /// any partitioning of any corpus.
    #[test]
    fn sharding_equivalence(
        state_words in proptest::collection::vec(
            proptest::collection::vec("[a-e]{1,3}", 1..6), 2..8),
        per_shard in 1usize..5,
        query in proptest::collection::vec("[a-e]{1,3}", 1..3),
    ) {
        // Build one page per state-word list.
        let models: Vec<ajax_crawl::model::AppModel> = state_words
            .iter()
            .enumerate()
            .map(|(i, words)| {
                let mut m = ajax_crawl::model::AppModel::new(format!("http://x/{i}"));
                m.add_state(i as u64 + 1, words.join(" "), None);
                m
            })
            .collect();

        let mut single = IndexBuilder::new();
        for m in &models {
            single.add_model(m, Some(0.5));
        }
        let single = single.build();

        let shards: Vec<_> = models
            .chunks(per_shard)
            .map(|chunk| {
                let mut b = IndexBuilder::new();
                for m in chunk {
                    b.add_model(m, Some(0.5));
                }
                b.build()
            })
            .collect();
        let broker = QueryBroker::new(shards);

        let q = Query { terms: query };
        let reference = search(&single, &q, &RankWeights::default());
        let merged = broker.search(&q);
        prop_assert_eq!(reference.len(), merged.len());
        for (r, m) in reference.iter().zip(merged.iter()) {
            prop_assert_eq!(&r.url, &m.url);
            prop_assert!((r.score - m.score).abs() < 1e-9);
        }
    }

    /// Conjunction results are always a subset of each term's results.
    #[test]
    fn conjunction_subset(
        state_words in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,2}", 1..8), 1..6),
        t1 in "[a-d]{1,2}",
        t2 in "[a-d]{1,2}",
    ) {
        let mut m = ajax_crawl::model::AppModel::new("http://x/1");
        for (i, words) in state_words.iter().enumerate() {
            m.add_state(i as u64 + 1, words.join(" "), None);
        }
        let mut b = IndexBuilder::new();
        b.add_model(&m, None);
        let idx = b.build();
        let w = RankWeights::default();

        let both: std::collections::BTreeSet<_> = search(
            &idx,
            &Query { terms: vec![t1.clone(), t2.clone()] },
            &w,
        )
        .into_iter()
        .map(|r| r.doc)
        .collect();
        let only1: std::collections::BTreeSet<_> =
            search(&idx, &Query { terms: vec![t1] }, &w)
                .into_iter()
                .map(|r| r.doc)
                .collect();
        let only2: std::collections::BTreeSet<_> =
            search(&idx, &Query { terms: vec![t2] }, &w)
                .into_iter()
                .map(|r| r.doc)
                .collect();
        prop_assert!(both.is_subset(&only1));
        prop_assert!(both.is_subset(&only2));
        prop_assert_eq!(both.clone(), only1.intersection(&only2).copied().collect());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Damaging a persisted index at *any* byte offset — truncating there or
    /// flipping a bit there — must yield a clean typed [`PersistError`],
    /// never a panic and never a silently wrong load (the tentpole
    /// durability guarantee of §8.3's on-disk format).
    #[test]
    fn corrupted_index_never_loads_wrong(
        offset_frac in 0.0f64..1.0,
        flip_bit in 0u8..8,
        truncate in any::<bool>(),
        case in 0u64..1_000_000,
    ) {
        use ajax_index::persist::{load_index, save_index, PersistError};

        let model = crawl_video(7, 3, CrawlConfig::ajax());
        let mut b = IndexBuilder::new();
        b.add_model(&model, Some(0.5));
        let index = b.build();

        let mut path = std::env::temp_dir();
        path.push(format!("ajax_prop_corrupt_{}_{case}.ajx", std::process::id()));
        save_index(&path, &index).expect("save");
        let mut bytes = std::fs::read(&path).expect("read back");
        prop_assert!(!bytes.is_empty());
        let offset = ((bytes.len() as f64 * offset_frac) as usize).min(bytes.len() - 1);

        if truncate {
            bytes.truncate(offset);
        } else {
            bytes[offset] ^= 1 << flip_bit;
        }
        std::fs::write(&path, &bytes).expect("write damaged");

        let outcome = load_index(&path);
        std::fs::remove_file(&path).ok();
        match outcome {
            // A bit-flip inside JSON string content can survive parsing —
            // but then the decoded index must differ from the original
            // (CRC32 catches every 1-bit flip, so a *successful* load can
            // only be the undamaged truncation-at-EOF... which the exact
            // length check also rejects; equality here means the damage
            // was outside anything load reads, which the frame forbids).
            Ok(loaded) => prop_assert!(
                loaded == index,
                "corrupt file loaded as a different index"
            ),
            Err(
                PersistError::Io { .. }
                | PersistError::Serde { .. }
                | PersistError::Format { .. }
                | PersistError::Corrupt { .. },
            ) => {}
        }
    }
}
