//! Offline stand-in for `serde_json`: serializes the vendor `serde`'s
//! [`Value`] data model to JSON text and parses it back.
//!
//! Floats are written with Rust's shortest-roundtrip formatting, so every
//! `f64` (and every exact `u64`, kept as an integer by the data model)
//! survives `to_string` → `from_str` bit-exactly — the persistence tests
//! depend on that.

use serde::{Deserialize, Serialize, Value};
use std::fmt;

pub use serde::Value as JsonValue;

/// A serialization or parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Self(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0)?;
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0)?;
    Ok(out)
}

/// Parses JSON text into any [`Deserialize`] type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    Ok(T::deserialize(&value)?)
}

// -------------------------------------------------------------- rendering

fn write_value(
    value: &Value,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
) -> Result<(), Error> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => {
            if !f.is_finite() {
                return Err(Error::new(format!("cannot serialize non-finite float {f}")));
            }
            // Rust's Display for f64 is shortest-roundtrip, but renders
            // integral values without a decimal point; keep them
            // float-looking so the type is preserved through a reparse.
            let s = f.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1)?;
            }
            if !items.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_sep(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1)?;
            }
            if !map.is_empty() {
                write_sep(out, indent, depth);
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_sep(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------- parsing

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing data at byte {}", p.pos)));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error::new(format!(
                "expected {:?} at byte {}, got {:?}",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other as char, self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at byte {}, got {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let value = self.value()?;
            map.insert(key, value);
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at byte {}, got {:?}",
                        self.pos, other as char
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let first = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&first) {
                                // Surrogate pair.
                                if self.bytes.get(self.pos) == Some(&b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u')
                                {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00)
                                } else {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                            } else {
                                first
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                _ => {
                    // Consume the whole run of plain bytes up to the next
                    // quote or escape in one go. Validating just the run
                    // keeps parsing linear — re-validating from `pos` to the
                    // end of input per character made large documents
                    // quadratic to parse.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let run = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error::new("invalid utf-8 in string"))?;
                    out.push_str(run);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("short \\u escape"))?;
        let s = std::str::from_utf8(hex).map_err(|_| Error::new("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if !is_float {
            if text.starts_with('-') {
                if let Ok(n) = text.parse::<i64>() {
                    return Ok(Value::I64(n));
                }
            } else if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for json in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn float_exact_roundtrip() {
        for f in [0.15f64, 1.0 / 3.0, f64::MIN_POSITIVE, 1e300, -0.0] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{json}");
        }
    }

    #[test]
    fn u64_exact_roundtrip() {
        let n = 0xdead_beef_cafe_f00du64;
        let back: u64 = from_str(&to_string(&n).unwrap()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn string_escapes() {
        let s = "a\"b\\c\nd\te\u{1}f € 你 😀".to_string();
        let back: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn surrogate_pair_parses() {
        let v: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "😀");
    }

    #[test]
    fn garbage_errors() {
        assert!(from_str::<Value>("{not json").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("").is_err());
    }

    #[test]
    fn pretty_is_reparseable() {
        let v: Value = from_str(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains('\n'));
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, v);
    }
}
