//! Offline stand-in for `serde`.
//!
//! The real serde could not be fetched (the build environment has no network
//! and no registry cache), so this crate implements the subset the workspace
//! relies on: `Serialize`/`Deserialize` traits over an owned JSON-shaped
//! [`Value`], plus re-exported derive macros from the sibling
//! `serde_derive` stand-in. `serde_json` (also vendored) renders/parses
//! [`Value`] as JSON text.
//!
//! Integers are kept as `u64`/`i64` — not `f64` — so 64-bit content hashes
//! and seeds survive a round-trip bit-exactly, which the persistence tests
//! require.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::{BuildHasher, Hash};

pub use serde_derive::{Deserialize, Serialize};

/// Object maps are ordered so serialized output is deterministic.
pub type Map = BTreeMap<String, Value>;

/// The data model: exactly JSON, with integers kept exact.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// A short description of the value's kind (for error messages).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a [`Deserialize`] failed.
#[derive(Debug, Clone)]
pub struct DeError(String);

impl DeError {
    pub fn new(message: String) -> Self {
        Self(message)
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] data model.
pub trait Serialize {
    fn serialize(&self) -> Value;
}

/// Deserialization from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn deserialize(value: &Value) -> Result<Self, DeError>;
}

/// Looks a struct field up in an object value (used by the derive macro).
pub fn __field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    let map = value
        .as_object()
        .ok_or_else(|| DeError::new(format!("expected object, got {}", value.kind())))?;
    let field = map
        .get(name)
        .ok_or_else(|| DeError::new(format!("missing field {name:?}")))?;
    T::deserialize(field).map_err(|e| DeError::new(format!("field {name:?}: {e}")))
}

// ------------------------------------------------------------- primitives

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(u64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::U64(n) => n,
                    Value::I64(n) if n >= 0 => n as u64,
                    Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => f as u64,
                    _ => return Err(DeError::new(format!(
                        "expected unsigned integer, got {}", value.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32);

impl Serialize for u64 {
    fn serialize(&self) -> Value {
        Value::U64(*self)
    }
}
impl Deserialize for u64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::U64(n) => Ok(n),
            Value::I64(n) if n >= 0 => Ok(n as u64),
            Value::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Ok(f as u64),
            _ => Err(DeError::new(format!(
                "expected unsigned integer, got {}",
                value.kind()
            ))),
        }
    }
}

impl Serialize for usize {
    fn serialize(&self) -> Value {
        Value::U64(*self as u64)
    }
}
impl Deserialize for usize {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let n = u64::deserialize(value)?;
        usize::try_from(n).map_err(|_| DeError::new(format!("{n} out of range for usize")))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let n = match *value {
                    Value::I64(n) => n,
                    Value::U64(n) if n <= i64::MAX as u64 => n as i64,
                    Value::F64(f) if f.fract() == 0.0
                        && f >= i64::MIN as f64 && f <= i64::MAX as f64 => f as i64,
                    _ => return Err(DeError::new(format!(
                        "expected integer, got {}", value.kind()))),
                };
                <$t>::try_from(n).map_err(|_| DeError::new(format!(
                    "{n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32);

impl Serialize for i64 {
    fn serialize(&self) -> Value {
        Value::I64(*self)
    }
}
impl Deserialize for i64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::I64(n) => Ok(n),
            Value::U64(n) if n <= i64::MAX as u64 => Ok(n as i64),
            Value::F64(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Ok(f as i64)
            }
            _ => Err(DeError::new(format!(
                "expected integer, got {}",
                value.kind()
            ))),
        }
    }
}

impl Serialize for isize {
    fn serialize(&self) -> Value {
        Value::I64(*self as i64)
    }
}
impl Deserialize for isize {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let n = i64::deserialize(value)?;
        isize::try_from(n).map_err(|_| DeError::new(format!("{n} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            _ => Err(DeError::new(format!(
                "expected number, got {}",
                value.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        f64::deserialize(value).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Bool(b) => Ok(*b),
            _ => Err(DeError::new(format!("expected bool, got {}", value.kind()))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::new(format!("expected string, got {}", value.kind())))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let s = String::deserialize(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::new(format!("expected one char, got {s:?}"))),
        }
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Array(vec![$(self.$idx.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(value: &Value) -> Result<Self, DeError> {
                let arr = value.as_array().ok_or_else(|| DeError::new(
                    format!("expected array, got {}", value.kind())))?;
                Ok(($($t::deserialize(arr.get($idx).ok_or_else(|| {
                    DeError::new("tuple too short".to_string())
                })?)?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Map keys: types that render to / parse from a JSON object key.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(key: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| DeError::new(format!(
                    "bad {} map key {key:?}", stringify!($t))))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: MapKey + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
    for HashMap<K, V, S>
{
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl<T: Serialize + Ord, S: BuildHasher> Serialize for HashSet<T, S> {
    fn serialize(&self) -> Value {
        // Sorted for deterministic output regardless of hasher iteration.
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Value::Array(items.into_iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
    fn serialize(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::new(format!("expected array, got {}", value.kind())))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.serialize()))
                .collect(),
        )
    }
}
impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        value
            .as_object()
            .ok_or_else(|| DeError::new(format!("expected object, got {}", value.kind())))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}
