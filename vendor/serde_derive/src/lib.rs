//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the type
//! shapes this workspace actually uses — non-generic named-field structs,
//! tuple structs, and unit-variant enums — against the vendor `serde`'s
//! value-based traits. Token parsing is done by hand (no `syn`/`quote`,
//! which would themselves need the network).

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct(Vec<String>),
    /// Tuple struct with this arity.
    Tuple(usize),
    /// Enum of unit variants.
    Enum(Vec<String>),
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, gen_serialize)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, gen_deserialize)
}

fn expand(input: TokenStream, gen: fn(&Input) -> String) -> TokenStream {
    match parse(input) {
        Ok(parsed) => gen(&parsed)
            .parse()
            .expect("serde_derive stub generated invalid Rust"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

// ---------------------------------------------------------------- parsing

fn parse(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive stub: generic type {name} is not supported"
        ));
    }

    let shape = match (kind.as_str(), tokens.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Struct(parse_named_fields(g.stream())?)
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::Tuple(count_tuple_fields(g.stream()))
        }
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_unit_variants(g.stream())?)
        }
        _ => return Err(format!("serde_derive stub: unsupported shape for {name}")),
    };
    Ok(Input { name, shape })
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)`
/// visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the following [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1; // pub(crate) etc.
                }
            }
            _ => return,
        }
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected ':' after {name}, got {other:?}")),
        }
        // Skip the type: everything until a top-level ','. Track '<'/'>' depth
        // so generic arguments like HashMap<String, Vec<String>> survive.
        let mut angle = 0i32;
        while let Some(tok) = tokens.get(i) {
            if let TokenTree::Punct(p) = tok {
                match p.as_char() {
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    ',' if angle == 0 => break,
                    _ => {}
                }
            }
            i += 1;
        }
        i += 1; // the comma (or past the end)
        fields.push(name);
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0;
    let mut angle = 0i32;
    let mut saw_token = false;
    for tok in stream {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    count += 1;
                    saw_token = false;
                    continue;
                }
                _ => {}
            }
        }
        saw_token = true;
    }
    if saw_token {
        count += 1;
    }
    count
}

fn parse_unit_variants(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant, got {other:?}")),
        };
        i += 1;
        match tokens.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "serde_derive stub: variant {name} carries data (unit variants only)"
                ))
            }
            other => return Err(format!("unexpected token after {name}: {other:?}")),
        }
        variants.push(name);
    }
    Ok(variants)
}

// ------------------------------------------------------------- generation

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let mut s = String::from("let mut __map = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "__map.insert(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(__map)");
            s
        }
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{name}::{v} => {v:?},"))
                .collect();
            format!(
                "::serde::Value::Str(::std::string::String::from(match self {{ {} }}))",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}"
    )
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::__field(__value, {f:?})?,"))
                .collect();
            format!(
                "let _ = __value.as_object().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"{name}: expected object, got {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name} {{ {} }})",
                inits.join(" ")
            )
        }
        Shape::Tuple(arity) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| {
                    format!(
                        "::serde::Deserialize::deserialize(__arr.get({i}).ok_or_else(|| \
                         ::serde::DeError::new(\"{name}: tuple too short\".to_string()))?)?"
                    )
                })
                .collect();
            format!(
                "let __arr = __value.as_array().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"{name}: expected array, got {{}}\", __value.kind())))?;\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            format!(
                "let __s = __value.as_str().ok_or_else(|| ::serde::DeError::new(\
                     format!(\"{name}: expected string, got {{}}\", __value.kind())))?;\n\
                 match __s {{ {} __other => ::std::result::Result::Err(::serde::DeError::new(\
                     format!(\"{name}: unknown variant {{__other:?}}\"))) }}",
                arms.join(" ")
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}
