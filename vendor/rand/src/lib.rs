//! Offline stand-in for `rand`.
//!
//! Provides the small slice of the rand 0.10 API this workspace uses:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! [`RngExt::random_range`] / [`RngExt::random_bool`]. The generator is
//! SplitMix64 — not the real StdRng algorithm, but deterministic per seed,
//! which is all the synthetic-site generator needs.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// Deterministic 64-bit generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl StdRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        pub(crate) fn next_f64(&mut self) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng { state: seed }
    }
}

/// Range shapes accepted by [`RngExt::random_range`].
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut rngs::StdRng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, rng: &mut rngs::StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as i128 - start as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut rngs::StdRng) -> f64 {
        assert!(self.start < self.end, "empty range in random_range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

pub trait RngExt {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output;
    fn random_bool(&mut self, p: f64) -> bool;
}

impl RngExt for rngs::StdRng {
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = rngs::StdRng::seed_from_u64(42);
        let mut b = rngs::StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rngs::StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3..17usize);
            assert!((3..17).contains(&v));
            let w = rng.random_range(1..=32u32);
            assert!((1..=32).contains(&w));
            let f = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = rngs::StdRng::seed_from_u64(9);
        assert!(!(0..100).map(|_| rng.random_bool(0.0)).any(|b| b));
        assert!((0..100).map(|_| rng.random_bool(1.0)).all(|b| b));
    }
}
