//! Offline stand-in for `criterion`.
//!
//! Implements the group-based benchmarking API this workspace's benches use
//! (`benchmark_group` / `throughput` / `sample_size` / `bench_function` /
//! `finish`, plus the `criterion_group!` / `criterion_main!` macros) with a
//! simple median-of-samples wall-clock timer. Not statistically rigorous —
//! it exists so `cargo bench` runs offline and prints comparable numbers.

use std::time::{Duration, Instant};

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

pub struct Criterion {
    _private: (),
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { _private: () }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let id = id.into();
        let mut group = self.benchmark_group(id.clone());
        group.bench_function(id, f);
        group.finish();
    }
}

pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = n.max(2);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        let id = id.into();
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        // One warm-up run, then timed samples.
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        for _ in 0..self.sample_size {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
            };
            f(&mut bencher);
            samples.push(bencher.elapsed);
        }
        samples.sort();
        let median = samples[samples.len() / 2];
        let extra = match self.throughput {
            Some(Throughput::Bytes(n)) if median.as_nanos() > 0 => {
                let rate = n as f64 / median.as_secs_f64() / (1024.0 * 1024.0);
                format!("  ({rate:.1} MiB/s)")
            }
            Some(Throughput::Elements(n)) if median.as_nanos() > 0 => {
                let rate = n as f64 / median.as_secs_f64();
                format!("  ({rate:.0} elem/s)")
            }
            _ => String::new(),
        };
        println!(
            "{}/{id}: median {:?} over {} samples{extra}",
            self.name,
            median,
            samples.len()
        );
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<T, F: FnMut() -> T>(&mut self, mut routine: F) {
        let start = Instant::now();
        let out = routine();
        self.elapsed += start.elapsed();
        drop(out);
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; ignore them.
            $( $group(); )+
        }
    };
}
