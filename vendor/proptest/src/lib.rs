//! Offline stand-in for `proptest`.
//!
//! Implements the slice of the proptest API this workspace's property tests
//! use: [`Strategy`] with `prop_map` / `prop_recursive`, range and tuple
//! strategies, `collection::vec`, a regex-subset string generator (so
//! `"[a-z]{1,6}"`-style literals work), `any::<T>()`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` / `prop_oneof!` macros.
//!
//! No shrinking: a failing case reports its deterministic seed and the
//! generated inputs instead. Generation is seeded per test name, so runs
//! are reproducible.

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

pub mod prelude {
    pub use crate::strategy::{ArcStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use strategy::{ArcStrategy, Just, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError};

// ------------------------------------------------------------------- rng

/// Deterministic SplitMix64 generator used for all value generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        assert!(range.start < range.end);
        range.start + self.below((range.end - range.start) as u64) as usize
    }
}

// -------------------------------------------------------------- strategy

pub mod strategy {
    use super::*;

    /// A generator of values of one type. Unlike real proptest there is no
    /// value tree / shrinking; `generate` produces a value directly.
    pub trait Strategy {
        type Value: fmt::Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Builds a recursive strategy: `recurse` receives a strategy for
        /// the previous depth level and returns one producing a node above
        /// it. `depth` bounds nesting; the size hints are accepted for
        /// API compatibility and ignored.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> ArcStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(ArcStrategy<Self::Value>) -> R,
        {
            let leaf = arc(self);
            let mut current = leaf.clone();
            for _ in 0..depth {
                let deeper = arc(recurse(current));
                // Mix in leaves at every level so generated trees vary in
                // depth rather than always bottoming out at `depth`.
                current = arc(Union {
                    options: vec![leaf.clone(), deeper],
                });
            }
            current
        }

        fn boxed(self) -> ArcStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            arc(self)
        }
    }

    /// Type-erased, clonable strategy (stands in for `BoxedStrategy`).
    pub struct ArcStrategy<T> {
        gen: Arc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Clone for ArcStrategy<T> {
        fn clone(&self) -> Self {
            ArcStrategy {
                gen: Arc::clone(&self.gen),
            }
        }
    }

    impl<T: fmt::Debug> Strategy for ArcStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    pub fn arc<S: Strategy + 'static>(s: S) -> ArcStrategy<S::Value> {
        ArcStrategy {
            gen: Arc::new(move |rng| s.generate(rng)),
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        pub options: Vec<ArcStrategy<T>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<ArcStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.usize_in(0..self.options.len());
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    self.start.wrapping_add((rng.below(span)) as $t)
                }
            }
            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            self.start + unit * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    /// `&str` literals are regex-subset string strategies.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex_gen::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::regex_gen::generate(self, rng)
        }
    }
}

// ------------------------------------------------------------- arbitrary

pub trait Arbitrary: Sized + fmt::Debug {
    type Strategy: Strategy<Value = Self>;
    fn arbitrary() -> Self::Strategy;
}

pub struct AnyStrategy<T> {
    gen: fn(&mut TestRng) -> T,
}

impl<T: fmt::Debug> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.gen)(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = AnyStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyStrategy { gen: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = AnyStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            gen: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyStrategy<f64>;
    fn arbitrary() -> Self::Strategy {
        AnyStrategy {
            gen: |rng| (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64),
        }
    }
}

/// `any::<T>()` — the full-range strategy for a primitive type.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

// ------------------------------------------------------------ collection

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.usize_in(self.len.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A strategy for vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range in collection::vec");
        VecStrategy { element, len }
    }
}

// ------------------------------------------------------------- regex gen

/// Generator for the regex subset used by this workspace's string
/// strategies: literals, `\`-escapes (incl. `\PC` = any non-control char),
/// character classes with ranges, groups with alternation, and the
/// quantifiers `* + ? {m} {m,n}`.
mod regex_gen {
    use super::TestRng;

    const STAR_MAX: usize = 16;

    #[derive(Debug)]
    enum Node {
        Lit(char),
        /// Any char that is not a Unicode control/format char (`\PC`).
        NonControl,
        Class(Vec<(char, char)>),
        Seq(Vec<Node>),
        Alt(Vec<Node>),
        Repeat(Box<Node>, usize, usize),
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut pos = 0;
        let node = parse_alt(&chars, &mut pos);
        assert!(
            pos == chars.len(),
            "regex stub: could not parse {pattern:?} (stopped at {pos})"
        );
        let mut out = String::new();
        emit(&node, rng, &mut out);
        out
    }

    fn parse_alt(chars: &[char], pos: &mut usize) -> Node {
        let mut options = vec![parse_seq(chars, pos)];
        while chars.get(*pos) == Some(&'|') {
            *pos += 1;
            options.push(parse_seq(chars, pos));
        }
        if options.len() == 1 {
            options.pop().unwrap()
        } else {
            Node::Alt(options)
        }
    }

    fn parse_seq(chars: &[char], pos: &mut usize) -> Node {
        let mut items = Vec::new();
        while let Some(&c) = chars.get(*pos) {
            if c == '|' || c == ')' {
                break;
            }
            let atom = parse_atom(chars, pos);
            items.push(parse_quantifier(chars, pos, atom));
        }
        if items.len() == 1 {
            items.pop().unwrap()
        } else {
            Node::Seq(items)
        }
    }

    fn parse_atom(chars: &[char], pos: &mut usize) -> Node {
        match chars[*pos] {
            '(' => {
                *pos += 1;
                let inner = parse_alt(chars, pos);
                assert_eq!(chars.get(*pos), Some(&')'), "regex stub: unclosed group");
                *pos += 1;
                inner
            }
            '[' => {
                *pos += 1;
                parse_class(chars, pos)
            }
            '\\' => {
                *pos += 1;
                let c = chars[*pos];
                *pos += 1;
                match c {
                    'P' | 'p' => {
                        // Only `\PC` (not-control) is supported.
                        let prop = chars[*pos];
                        *pos += 1;
                        assert_eq!(prop, 'C', "regex stub: only \\PC is supported");
                        Node::NonControl
                    }
                    'd' => Node::Class(vec![('0', '9')]),
                    'w' => Node::Class(vec![('a', 'z'), ('A', 'Z'), ('0', '9'), ('_', '_')]),
                    's' => Node::Class(vec![(' ', ' '), ('\t', '\t')]),
                    'n' => Node::Lit('\n'),
                    't' => Node::Lit('\t'),
                    'r' => Node::Lit('\r'),
                    other => Node::Lit(other),
                }
            }
            '.' => {
                *pos += 1;
                Node::NonControl
            }
            other => {
                *pos += 1;
                Node::Lit(other)
            }
        }
    }

    fn parse_class(chars: &[char], pos: &mut usize) -> Node {
        let mut ranges: Vec<(char, char)> = Vec::new();
        let mut pending: Option<char> = None;
        loop {
            let c = *chars
                .get(*pos)
                .unwrap_or_else(|| panic!("regex stub: unclosed class"));
            *pos += 1;
            match c {
                ']' => {
                    if let Some(p) = pending {
                        ranges.push((p, p));
                    }
                    assert!(!ranges.is_empty(), "regex stub: empty class");
                    return Node::Class(ranges);
                }
                '-' if pending.is_some() && chars.get(*pos) != Some(&']') => {
                    let lo = pending.take().unwrap();
                    let mut hi = chars[*pos];
                    *pos += 1;
                    if hi == '\\' {
                        hi = chars[*pos];
                        *pos += 1;
                    }
                    assert!(lo <= hi, "regex stub: inverted class range");
                    ranges.push((lo, hi));
                }
                '\\' => {
                    if let Some(p) = pending.replace(chars[*pos]) {
                        ranges.push((p, p));
                    }
                    *pos += 1;
                }
                other => {
                    if let Some(p) = pending.replace(other) {
                        ranges.push((p, p));
                    }
                }
            }
        }
    }

    fn parse_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
        match chars.get(*pos) {
            Some('*') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, STAR_MAX)
            }
            Some('+') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 1, STAR_MAX)
            }
            Some('?') => {
                *pos += 1;
                Node::Repeat(Box::new(atom), 0, 1)
            }
            Some('{') => {
                *pos += 1;
                let mut min = 0usize;
                while chars[*pos].is_ascii_digit() {
                    min = min * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                    *pos += 1;
                }
                let max = if chars[*pos] == ',' {
                    *pos += 1;
                    let mut max = 0usize;
                    while chars[*pos].is_ascii_digit() {
                        max = max * 10 + chars[*pos].to_digit(10).unwrap() as usize;
                        *pos += 1;
                    }
                    max
                } else {
                    min
                };
                assert_eq!(chars[*pos], '}', "regex stub: unclosed quantifier");
                *pos += 1;
                Node::Repeat(Box::new(atom), min, max)
            }
            _ => atom,
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Lit(c) => out.push(*c),
            Node::NonControl => out.push(non_control_char(rng)),
            Node::Class(ranges) => {
                let total: u64 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u64 - lo as u64 + 1)
                    .sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                        return;
                    }
                    pick -= span;
                }
                unreachable!()
            }
            Node::Seq(items) => {
                for item in items {
                    emit(item, rng, out);
                }
            }
            Node::Alt(options) => {
                let i = rng.usize_in(0..options.len());
                emit(&options[i], rng, out);
            }
            Node::Repeat(inner, min, max) => {
                let n = min + rng.below((*max - *min + 1) as u64) as usize;
                for _ in 0..n {
                    emit(inner, rng, out);
                }
            }
        }
    }

    /// A char outside Unicode category C — mostly printable ASCII, with a
    /// sprinkling of multi-byte chars to exercise UTF-8 handling.
    fn non_control_char(rng: &mut TestRng) -> char {
        const EXOTIC: &[char] = &['é', 'ß', 'λ', '你', '好', '→', '€', '😀', '∑', '¿'];
        if rng.below(10) == 0 {
            EXOTIC[rng.usize_in(0..EXOTIC.len())]
        } else {
            char::from_u32(0x20 + rng.below(0x5F) as u32).unwrap()
        }
    }
}

// ------------------------------------------------------------ test runner

pub mod test_runner {
    use super::TestRng;

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "test case failed: {r}"),
                TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            }
        }
    }

    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 64,
                max_global_rejects: 4096,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }

    fn fnv1a(text: &str) -> u64 {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for b in text.bytes() {
            hash ^= b as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// Drives one `proptest!` test: runs `config.cases` accepted cases with
    /// per-case deterministic seeds derived from the test name.
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> (String, Result<(), TestCaseError>),
    {
        let base = fnv1a(name);
        let mut accepted = 0u32;
        let mut rejects = 0u32;
        let mut attempt = 0u64;
        while accepted < config.cases {
            let seed = base ^ attempt.wrapping_mul(0x2545_F491_4F6C_DD1D);
            attempt += 1;
            let mut rng = TestRng::new(seed);
            let (inputs, result) = case(&mut rng);
            match result {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejects += 1;
                    if rejects > config.max_global_rejects {
                        panic!(
                            "proptest stub: {name} rejected {rejects} inputs \
                             (accepted {accepted}/{} cases)",
                            config.cases
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest case failed: {name} (seed {seed:#x})\n  inputs: {inputs}\n  {msg}"
                    );
                }
            }
        }
    }

    /// Renders a caught panic payload for failure messages.
    pub fn payload_to_string(payload: Box<dyn std::any::Any + Send>) -> String {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_string()
        }
    }
}

// ---------------------------------------------------------------- macros

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::generate(&($strat), __rng);)+
                let __inputs = {
                    let mut __s = ::std::string::String::new();
                    $(
                        __s.push_str(concat!(stringify!($arg), " = "));
                        __s.push_str(&format!("{:?}, ", &$arg));
                    )+
                    __s
                };
                let __outcome = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            let _: () = $body;
                            ::std::result::Result::Ok(())
                        }
                    )
                );
                let __result = match __outcome {
                    ::std::result::Result::Ok(r) => r,
                    ::std::result::Result::Err(payload) => ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(
                            format!("panicked: {}", $crate::test_runner::payload_to_string(payload)),
                        ),
                    ),
                };
                (__inputs, __result)
            });
        }
    )*};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*), l, r
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::arc($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn regex_shapes() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let t = Strategy::generate(&"(<b>|</b>|[a-z ]{0,8}){0,12}", &mut rng);
            assert!(t
                .chars()
                .all(|c| "</b>abcdefghijklmnopqrstuvwxyz ".contains(c)));

            let u = Strategy::generate(&"[ -~]{0,40}", &mut rng);
            assert!(u.chars().all(|c| (' '..='~').contains(&c)));

            let v = Strategy::generate(&"\\PC*", &mut rng);
            assert!(v.chars().all(|c| !c.is_control()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(a in -50i32..50, b in 1usize..8) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!((1..8).contains(&b));
        }

        #[test]
        fn assume_filters(x in 0u32..100) {
            prop_assume!(x != 50);
            prop_assert_ne!(x, 50);
        }

        #[test]
        fn question_mark_works(x in 0u32..10) {
            let y: u32 = format!("{x}")
                .parse()
                .map_err(|e| TestCaseError::fail(format!("{e}")))?;
            prop_assert_eq!(x, y);
        }

        #[test]
        fn vec_and_oneof(items in crate::collection::vec(prop_oneof![0u32..5, 10u32..15], 1..6)) {
            prop_assert!(!items.is_empty());
            for item in items {
                prop_assert!((0..5).contains(&item) || (10..15).contains(&item));
            }
        }
    }
}
