//! The refactor equivalence suite: the columnar index + allocation-free
//! kernel must reproduce the pre-columnar implementation (`reference.rs`)
//! **bit-for-bit** — same result sequences, same floating-point scores —
//! on every query path: sequential `search`, `search_top_k`, and
//! `QueryBroker::search` (the ajax-serve worker path runs the same two
//! halves, asserted again in the workspace integration tests).
//!
//! Scores are compared with `f64::to_bits`, not a tolerance: the kernel
//! keeps the exact summation order of the old code, so anything weaker
//! would hide a regression of the determinism contract.

use ajax_crawl::model::AppModel;
use ajax_index::invert::{build_index_parallel, IndexBuilder, InvertedIndex};
use ajax_index::query::{search, search_top_k, Query, RankWeights};
use ajax_index::reference::{ref_broker_search, ref_search, ref_search_top_k, RefIndexBuilder};
use ajax_index::shard::QueryBroker;
use proptest::prelude::*;

/// Deterministic pseudo-random corpus: `n_pages` pages, a few states each,
/// drawn from a small vocabulary so conjunctions actually match.
fn corpus(seed: u64, n_pages: usize) -> Vec<AppModel> {
    const VOCAB: &[&str] = &[
        "wow",
        "dance",
        "video",
        "morcheeba",
        "singer",
        "great",
        "filler",
        "the",
        "ride",
        "enjoy",
        "mysterious",
        "concert",
        "live",
        "daisy",
        "2",
    ];
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n_pages)
        .map(|p| {
            let mut m = AppModel::new(format!("http://site.example/watch?v={p}"));
            let n_states = 1 + (next() % 4) as usize;
            for s in 0..n_states {
                let n_tokens = 3 + (next() % 12) as usize;
                let text = (0..n_tokens)
                    .map(|_| VOCAB[(next() % VOCAB.len() as u64) as usize])
                    .collect::<Vec<_>>()
                    .join(" ");
                m.add_state((p * 100 + s) as u64 + 1, text, None);
            }
            m
        })
        .collect()
}

const QUERIES: &[&str] = &[
    "wow",
    "wow dance",
    "morcheeba singer",
    "the great video",
    "enjoy the ride",
    "wow wow",
    "mysterious",
    "absentterm",
    "wow absentterm",
    "",
    "dance video filler",
];

fn build_new(models: &[AppModel]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for m in models {
        b.add_model(m, Some(1.0 / models.len().max(1) as f64));
    }
    b.build()
}

fn build_ref(models: &[AppModel]) -> ajax_index::reference::RefIndex {
    let mut b = RefIndexBuilder::new();
    for m in models {
        b.add_model(m, Some(1.0 / models.len().max(1) as f64));
    }
    b.build()
}

fn assert_bit_identical(
    new: &[ajax_index::query::SearchResult],
    old: &[ajax_index::query::SearchResult],
    label: &str,
) {
    assert_eq!(new.len(), old.len(), "{label}: result count");
    for (i, (n, o)) in new.iter().zip(old.iter()).enumerate() {
        assert_eq!(n.url, o.url, "{label}: url at {i}");
        assert_eq!(n.doc, o.doc, "{label}: doc at {i}");
        assert_eq!(
            n.score.to_bits(),
            o.score.to_bits(),
            "{label}: score bits at {i}: {} vs {}",
            n.score,
            o.score
        );
    }
}

#[test]
fn sequential_search_equals_reference() {
    for seed in [1u64, 7, 42, 1234] {
        let models = corpus(seed, 12);
        let new = build_new(&models);
        let old = build_ref(&models);
        let w = RankWeights::default();
        for q in QUERIES {
            let query = Query::parse(q);
            assert_bit_identical(
                &search(&new, &query, &w),
                &ref_search(&old, &query, &w),
                &format!("seed {seed}, query {q:?}"),
            );
        }
    }
}

#[test]
fn top_k_equals_reference() {
    for seed in [3u64, 99] {
        let models = corpus(seed, 16);
        let new = build_new(&models);
        let old = build_ref(&models);
        let w = RankWeights::default();
        for q in QUERIES {
            let query = Query::parse(q);
            for k in [0usize, 1, 3, 10, 500] {
                assert_bit_identical(
                    &search_top_k(&new, &query, &w, k),
                    &ref_search_top_k(&old, &query, &w, k),
                    &format!("seed {seed}, query {q:?}, k {k}"),
                );
            }
        }
    }
}

#[test]
fn broker_search_equals_reference() {
    for seed in [5u64, 77] {
        let models = corpus(seed, 13);
        for per_shard in [1usize, 3, 5, 13] {
            let new_shards: Vec<InvertedIndex> = models.chunks(per_shard).map(build_new).collect();
            let old_shards: Vec<_> = models.chunks(per_shard).map(build_ref).collect();
            let broker = QueryBroker::new(new_shards);
            for q in QUERIES {
                let query = Query::parse(q);
                let new = broker.search(&query);
                let old = ref_broker_search(&old_shards, &query, &broker.weights);
                assert_eq!(new.len(), old.len(), "query {q:?}");
                for (i, (n, o)) in new.iter().zip(old.iter()).enumerate() {
                    assert_eq!(n.url, o.url, "query {q:?} at {i}");
                    assert_eq!(n.doc, o.doc, "query {q:?} at {i}");
                    assert_eq!(n.shard, o.shard, "query {q:?} at {i}");
                    assert_eq!(
                        n.score.to_bits(),
                        o.score.to_bits(),
                        "query {q:?} score bits at {i}"
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_build_searches_identically() {
    let models = corpus(11, 17);
    let refs: Vec<(&AppModel, Option<f64>)> =
        models.iter().map(|m| (m, Some(1.0 / 17.0))).collect();
    let sequential = build_new(&models);
    // Force the parallel path (this corpus is under the min-states
    // threshold) so segment-merge equivalence stays pinned end to end.
    let parallel =
        ajax_index::build_index_with_path(&refs, None, 4, ajax_index::BuildPath::Parallel);
    assert_eq!(
        sequential, parallel,
        "canonical layout must make builds structurally equal"
    );
    assert_eq!(
        sequential,
        build_index_parallel(&refs, None, 4),
        "the threshold-aware entry point must agree with both"
    );
    let w = RankWeights::default();
    for q in QUERIES {
        let query = Query::parse(q);
        assert_bit_identical(
            &search(&sequential, &query, &w),
            &search(&parallel, &query, &w),
            &format!("query {q:?}"),
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Randomized corpora: the kernel's results (docs, order, scores) equal
    /// the naive BTreeMap/binary-search semantics of the reference engine.
    /// The acceptance bar is 1e-12 on scores; the implementation actually
    /// delivers bit-equality, which is what we assert.
    #[test]
    fn kernel_equals_naive_semantics(
        seed in 0u64..10_000,
        n_pages in 1usize..20,
        query_idx in 0usize..QUERIES.len(),
        k in 0usize..25,
    ) {
        let models = corpus(seed, n_pages);
        let new = build_new(&models);
        let old = build_ref(&models);
        let w = RankWeights::default();
        let query = Query::parse(QUERIES[query_idx]);

        let full_new = search(&new, &query, &w);
        let full_old = ref_search(&old, &query, &w);
        prop_assert_eq!(full_new.len(), full_old.len());
        for (n, o) in full_new.iter().zip(full_old.iter()) {
            prop_assert_eq!(&n.url, &o.url);
            prop_assert_eq!(n.doc, o.doc);
            prop_assert!((n.score - o.score).abs() < 1e-12, "score {} vs {}", n.score, o.score);
            prop_assert_eq!(n.score.to_bits(), o.score.to_bits());
        }

        let top_new = search_top_k(&new, &query, &w, k);
        let top_old = ref_search_top_k(&old, &query, &w, k);
        prop_assert_eq!(top_new, top_old);
    }
}
