//! Property suite for the v4 on-disk segment: any index the builder can
//! produce must survive encode → mmap-backed load **bit-identically** —
//! structural equality, equal search results (score bits included), and a
//! clean round-trip back to an owned index. The flip side: any torn or
//! bit-flipped artifact must be *rejected* at load, never half-read.
//!
//! These run against real temp files so the mmap path (not just the
//! encoder) is what's under test.

use ajax_crawl::model::AppModel;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::{load_index, save_index, PersistError};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Deterministic pseudo-random corpus (same generator family as the
/// equivalence suite): `n_pages` pages, 1–4 states each, drawn from a
/// small vocabulary so queries actually match.
fn corpus(seed: u64, n_pages: usize) -> Vec<AppModel> {
    const VOCAB: &[&str] = &[
        "wow",
        "dance",
        "video",
        "morcheeba",
        "singer",
        "great",
        "filler",
        "the",
        "ride",
        "enjoy",
        "mysterious",
        "concert",
        "live",
        "daisy",
        "2",
    ];
    let mut x = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    (0..n_pages)
        .map(|p| {
            let mut m = AppModel::new(format!("http://site.example/watch?v={p}"));
            let n_states = 1 + (next() % 4) as usize;
            for s in 0..n_states {
                let n_tokens = 3 + (next() % 12) as usize;
                let text = (0..n_tokens)
                    .map(|_| VOCAB[(next() % VOCAB.len() as u64) as usize])
                    .collect::<Vec<_>>()
                    .join(" ");
                m.add_state((p * 100 + s) as u64 + 1, text, None);
            }
            m
        })
        .collect()
}

const QUERIES: &[&str] = &[
    "wow",
    "wow dance",
    "morcheeba singer",
    "enjoy the ride",
    "absentterm",
    "",
];

fn build(models: &[AppModel]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for m in models {
        b.add_model(m, Some(1.0 / models.len().max(1) as f64));
    }
    b.build()
}

/// A unique scratch path per call — proptest shrinks re-enter the test
/// body, so a fixed name would race against itself.
fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "ajax-v4-roundtrip-{}-{tag}-{n}.ajx",
        std::process::id()
    ))
}

fn assert_bit_identical(a: &InvertedIndex, b: &InvertedIndex, queries: &[Query]) {
    let w = RankWeights::default();
    for q in queries {
        let ra = search(a, q, &w);
        let rb = search(b, q, &w);
        assert_eq!(ra.len(), rb.len(), "result count for {:?}", q.terms);
        for (x, y) in ra.iter().zip(rb.iter()) {
            assert_eq!(x.url, y.url);
            assert_eq!(x.doc, y.doc);
            assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "score bits for {:?}: {} vs {}",
                q.terms,
                x.score,
                y.score
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random corpus → save v4 → mmap load: the loaded index is logically
    /// equal, answers every query bit-identically, and `into_owned`
    /// round-trips back to the exact builder output.
    #[test]
    fn v4_roundtrip_is_bit_identical(seed in 0u64..10_000, n_pages in 1usize..24) {
        let models = corpus(seed, n_pages);
        let built = build(&models);
        let path = scratch_path("rt");
        save_index(&path, &built).expect("save v4");

        let loaded = load_index(&path).expect("load v4");
        prop_assert!(loaded.is_mapped(), "a v4 artifact must load mapped");
        prop_assert!(loaded.mapped_bytes() > 0);
        prop_assert_eq!(&built, &loaded);

        let queries: Vec<Query> = QUERIES.iter().map(|q| Query::parse(q)).collect();
        assert_bit_identical(&built, &loaded, &queries);

        let owned = loaded.into_owned();
        prop_assert!(!owned.is_mapped());
        prop_assert_eq!(&built, &owned);

        let _ = std::fs::remove_file(&path);
    }

    /// A single flipped bit anywhere in the artifact — header line, segment
    /// payload, or commit marker — must make the load fail; damage inside
    /// the checksummed payload is reported as `Corrupt`.
    #[test]
    fn v4_bit_flip_is_rejected(seed in 0u64..1_000, flip_frac in 0.0f64..1.0, bit in 0u8..8) {
        let models = corpus(seed, 6);
        let built = build(&models);
        let path = scratch_path("flip");
        save_index(&path, &built).expect("save v4");

        let mut bytes = std::fs::read(&path).expect("read artifact");
        let pos = ((bytes.len() - 1) as f64 * flip_frac) as usize;
        bytes[pos] ^= 1 << bit;
        std::fs::write(&path, &bytes).expect("rewrite artifact");

        let err = load_index(&path).expect_err("flipped artifact must not load");
        // Flips in the JSON header line surface as Format/Serde (the frame
        // no longer parses); flips past it are caught by the payload CRC or
        // the torn-commit marker and must say Corrupt.
        let header_len = bytes.iter().position(|&b| b == b'\n').unwrap_or(0) + 1;
        if pos >= header_len {
            prop_assert!(
                matches!(err, PersistError::Corrupt { .. }),
                "payload flip at {} reported {:?}",
                pos,
                err
            );
        }

        let _ = std::fs::remove_file(&path);
    }

    /// Every strict prefix of a committed v4 artifact is a torn write and
    /// must be rejected as `Corrupt` (or fail framing entirely) — never
    /// parsed into a half-index.
    #[test]
    fn v4_truncation_is_rejected(seed in 0u64..1_000, keep_frac in 0.0f64..1.0) {
        let models = corpus(seed, 5);
        let built = build(&models);
        let path = scratch_path("trunc");
        save_index(&path, &built).expect("save v4");

        let bytes = std::fs::read(&path).expect("read artifact");
        let keep = ((bytes.len() - 1) as f64 * keep_frac) as usize;
        std::fs::write(&path, &bytes[..keep]).expect("truncate artifact");

        prop_assert!(
            load_index(&path).is_err(),
            "a {}-of-{} byte prefix must not load",
            keep,
            bytes.len()
        );

        let _ = std::fs::remove_file(&path);
    }
}

/// Non-property anchor: the empty index round-trips too (zero terms, zero
/// pages — every section table entry is a zero-length slice).
#[test]
fn empty_index_roundtrips() {
    let built = IndexBuilder::new().build();
    let path = scratch_path("empty");
    save_index(&path, &built).expect("save empty v4");
    let loaded = load_index(&path).expect("load empty v4");
    assert!(loaded.is_mapped());
    assert_eq!(built, loaded);
    assert_eq!(built, loaded.into_owned());
    let _ = std::fs::remove_file(&path);
}
