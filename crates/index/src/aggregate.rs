//! Element-level result presentation (thesis §5.3: "the user might be
//! interested in the DOM element in which the desired text resides").
//!
//! Given a reconstructed state's DOM (from `ajax_crawl::replay`) and the
//! query terms, [`locate_terms`] finds the *deepest* elements containing
//! every term and returns a stable CSS-like path plus a text snippet for
//! each — what a result page would highlight.

use crate::tokenize::query_terms;
use ajax_dom::{Document, NodeId};

/// One element-level hit inside a state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElementHit {
    /// CSS-like path from the root, e.g.
    /// `html > body > div#recent_comments > div.comments > p.ctext`.
    pub path: String,
    /// Short description of the element itself (`p.ctext`).
    pub element: String,
    /// Snippet of the element's text, clipped around the first term.
    pub snippet: String,
}

/// Finds the deepest elements whose text contains **all** `terms`
/// (case-insensitive whole words), in document order.
pub fn locate_terms(doc: &Document, query: &str) -> Vec<ElementHit> {
    let terms = query_terms(query);
    if terms.is_empty() {
        return Vec::new();
    }
    let mut hits = Vec::new();
    for node in doc.walk() {
        if !element_contains_all(doc, node, &terms) {
            continue;
        }
        // Deepest-match only: skip if some element child also contains all.
        let has_deeper = doc
            .children(node)
            .any(|c| doc.tag_name(c).is_some() && element_contains_all(doc, c, &terms));
        if has_deeper {
            continue;
        }
        hits.push(ElementHit {
            path: element_path(doc, node),
            element: ajax_dom::events::describe_element(doc, node),
            snippet: snippet(&doc.text_content(node), &terms[0]),
        });
    }
    hits
}

fn element_contains_all(doc: &Document, node: NodeId, terms: &[String]) -> bool {
    let text = doc.text_content(node);
    terms.iter().all(|t| contains_word(&text, t))
}

fn contains_word(text: &str, word: &str) -> bool {
    text.split(|c: char| !c.is_alphanumeric())
        .any(|w| w.eq_ignore_ascii_case(word))
}

/// Builds the `tag#id`-chain path from the root to `node`.
fn element_path(doc: &Document, node: NodeId) -> String {
    let mut parts = Vec::new();
    let mut current = Some(node);
    while let Some(id) = current {
        if doc.tag_name(id).is_some() {
            parts.push(ajax_dom::events::describe_element(doc, id));
        }
        current = doc.node(id).parent;
    }
    parts.reverse();
    parts.join(" > ")
}

/// Clips ~12 words around the first occurrence of `term`.
fn snippet(text: &str, term: &str) -> String {
    let words: Vec<&str> = text.split_whitespace().collect();
    let pos = words
        .iter()
        .position(|w| {
            w.split(|c: char| !c.is_alphanumeric())
                .any(|p| p.eq_ignore_ascii_case(term))
        })
        .unwrap_or(0);
    let start = pos.saturating_sub(4);
    let end = (pos + 8).min(words.len());
    let mut out = String::new();
    if start > 0 {
        out.push_str("… ");
    }
    out.push_str(&words[start..end].join(" "));
    if end < words.len() {
        out.push_str(" …");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_dom::parse_document;

    fn doc() -> Document {
        parse_document(
            "<html><body>\
             <h1 id=\"title\">Morcheeba Enjoy the Ride</h1>\
             <div id=\"recent_comments\"><div class=\"comments\">\
               <div class=\"comment\"><p class=\"ctext\">this mysterious video rocks</p></div>\
               <div class=\"comment\"><p class=\"ctext\">the new singer is daisy martey</p></div>\
             </div></div>\
             </body></html>",
        )
    }

    #[test]
    fn locates_deepest_element() {
        let d = doc();
        let hits = locate_terms(&d, "singer");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].element, "p.ctext");
        assert!(hits[0].path.contains("div#recent_comments"));
        assert!(hits[0].path.ends_with("p.ctext"));
        assert!(hits[0].snippet.contains("singer"));
    }

    #[test]
    fn conjunction_localizes_to_common_ancestor() {
        let d = doc();
        // "mysterious" and "singer" live in sibling comments; the deepest
        // element containing both is the comments container.
        let hits = locate_terms(&d, "mysterious singer");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].element, "div.comments");
    }

    #[test]
    fn multiple_hits_in_document_order() {
        let d = parse_document("<p id=\"a\">wow one</p><p id=\"b\">wow two</p>");
        let hits = locate_terms(&d, "wow");
        assert_eq!(hits.len(), 2);
        assert_eq!(hits[0].element, "p#a");
        assert_eq!(hits[1].element, "p#b");
    }

    #[test]
    fn missing_terms_no_hits() {
        assert!(locate_terms(&doc(), "zebra").is_empty());
        assert!(locate_terms(&doc(), "").is_empty());
    }

    #[test]
    fn title_terms_found_in_h1() {
        let hits = locate_terms(&doc(), "morcheeba ride");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].element, "h1#title");
    }

    #[test]
    fn snippet_clips_long_text() {
        let long = format!(
            "<p>{} target {}</p>",
            "filler ".repeat(20),
            "tail ".repeat(20)
        );
        let d = parse_document(&long);
        let hits = locate_terms(&d, "target");
        assert!(hits[0].snippet.starts_with("… "));
        assert!(hits[0].snippet.ends_with(" …"));
        assert!(hits[0].snippet.contains("target"));
        assert!(hits[0].snippet.split_whitespace().count() < 16);
    }
}
