//! Test/diagnostic probes for the query kernel's allocation discipline.
//!
//! The top-k acceptance contract is "URL strings are materialized only for
//! the final k results". Every place the crate turns a `DocKey` into an
//! owned URL `String` calls [`note_url_materialized`], so a test can reset
//! the counter, run a query, and assert the count stayed ≤ k even when the
//! raw result set was much larger.
//!
//! The counter is **thread-local**: each test (or serving worker) observes
//! only its own materializations, so concurrent queries don't pollute each
//! other's measurements.

use std::cell::Cell;

thread_local! {
    static URL_MATERIALIZATIONS: Cell<u64> = const { Cell::new(0) };
}

/// Records one `DocKey → String` URL materialization.
#[inline]
pub(crate) fn note_url_materialized() {
    URL_MATERIALIZATIONS.with(|c| c.set(c.get() + 1));
}

/// This thread's count of URL materializations since the last [`reset_url_materializations`].
/// Test instrumentation — not part of the stable API.
#[doc(hidden)]
pub fn url_materializations() -> u64 {
    URL_MATERIALIZATIONS.with(Cell::get)
}

/// Resets this thread's materialization counter. Test instrumentation.
#[doc(hidden)]
pub fn reset_url_materializations() {
    URL_MATERIALIZATIONS.with(|c| c.set(0));
}
