//! The term dictionary: interns terms to dense [`TermId`]s.
//!
//! Terms are stored **sorted lexicographically**; the `TermId` of a term is
//! its rank in that order. The dictionary has two representations:
//!
//! * **Owned** — one `Vec<String>` plus a small open-addressing hash table
//!   of `TermId`s, so a lookup is one hash and a handful of probes, each a
//!   single `&str` comparison against the sorted term column. This is what
//!   builders and merges produce.
//! * **Mapped** — a front-coded byte block inside an mmap-ed v4 segment
//!   (`segment::MappedDict`). Lookups binary-search the block heads and scan
//!   one front-coded block against the mapped bytes; no `Vec<String>` is
//!   ever materialized. [`TermDict::decode_term`] reconstructs individual
//!   terms on demand into a caller buffer.
//!
//! Keeping the dictionary sorted makes the whole index layout *canonical*:
//! two indexes over the same logical content are structurally equal (same
//! columns, same arena order) regardless of build order — the property the
//! determinism contract of `docs/index-internals.md` rests on.

use crate::segment::MappedDict;
use serde::{DeError, Deserialize, Serialize, Value};
use std::hash::{Hash, Hasher};

/// Dense identifier of a term: its rank in the sorted dictionary.
pub type TermId = u32;

/// Sorted term dictionary — owned (hash-indexed) or mapped (front-coded).
#[derive(Debug, Clone)]
pub struct TermDict {
    repr: DictRepr,
}

#[derive(Debug, Clone)]
enum DictRepr {
    Owned {
        /// Sorted term column; `TermId` = index.
        terms: Vec<String>,
        /// Open-addressing table of `TermId + 1` (0 = empty slot). Always a
        /// power of two, ≥ 2× the term count. Rebuilt on deserialize — never
        /// persisted.
        buckets: Vec<u32>,
    },
    Mapped(MappedDict),
}

impl Default for TermDict {
    fn default() -> Self {
        Self {
            repr: DictRepr::Owned {
                terms: Vec::new(),
                buckets: Vec::new(),
            },
        }
    }
}

impl TermDict {
    /// Builds a dictionary from a **sorted, deduplicated** term column.
    pub fn from_sorted(terms: Vec<String>) -> Self {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "dictionary terms must be sorted and unique"
        );
        let buckets = build_buckets(&terms);
        Self {
            repr: DictRepr::Owned { terms, buckets },
        }
    }

    /// Wraps a mapped v4 segment dictionary (already validated at open).
    pub(crate) fn from_mapped(mapped: MappedDict) -> Self {
        Self {
            repr: DictRepr::Mapped(mapped),
        }
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        match &self.repr {
            DictRepr::Owned { terms, .. } => terms.len(),
            DictRepr::Mapped(m) => m.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when the terms live in a mapped segment rather than on the heap.
    pub fn is_mapped(&self) -> bool {
        matches!(self.repr, DictRepr::Mapped(_))
    }

    /// The term with the given id. Owned dictionaries only — mapped terms
    /// have no resident string to borrow; use [`TermDict::decode_term`].
    pub fn term(&self, id: TermId) -> &str {
        match &self.repr {
            DictRepr::Owned { terms, .. } => &terms[id as usize],
            DictRepr::Mapped(_) => {
                panic!("TermDict::term on a mapped dictionary; use decode_term")
            }
        }
    }

    /// The sorted term column. Owned dictionaries only.
    pub fn terms(&self) -> &[String] {
        match &self.repr {
            DictRepr::Owned { terms, .. } => terms,
            DictRepr::Mapped(_) => {
                panic!("TermDict::terms on a mapped dictionary; decode terms individually")
            }
        }
    }

    /// Decodes the term with the given id into `buf` and returns it. Works
    /// on both representations; the owned path copies so callers can treat
    /// the buffer uniformly.
    pub fn decode_term<'b>(&self, id: TermId, buf: &'b mut Vec<u8>) -> &'b str {
        match &self.repr {
            DictRepr::Owned { terms, .. } => {
                buf.clear();
                buf.extend_from_slice(terms[id as usize].as_bytes());
                std::str::from_utf8(buf).expect("owned terms are UTF-8")
            }
            DictRepr::Mapped(m) => m.decode_term(id, buf),
        }
    }

    /// Looks a term up. Owned: hash probe into the bucket table. Mapped:
    /// block binary search over the front-coded bytes. O(1) expected /
    /// O(log blocks + block) respectively, no allocation either way.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        match &self.repr {
            DictRepr::Owned { terms, buckets } => {
                if buckets.is_empty() {
                    return None;
                }
                let mask = buckets.len() - 1;
                let mut slot = (hash_term(term) as usize) & mask;
                loop {
                    match buckets[slot] {
                        0 => return None,
                        id_plus_one => {
                            let id = id_plus_one - 1;
                            if terms[id as usize] == term {
                                return Some(id);
                            }
                        }
                    }
                    slot = (slot + 1) & mask;
                }
            }
            DictRepr::Mapped(m) => m.lookup(term),
        }
    }

    /// Materializes an owned dictionary (decodes every term if mapped).
    pub fn into_owned(self) -> TermDict {
        match self.repr {
            DictRepr::Owned { .. } => self,
            DictRepr::Mapped(m) => {
                let mut terms = Vec::with_capacity(m.len());
                let mut buf = Vec::new();
                for id in 0..m.len() as TermId {
                    terms.push(m.decode_term(id, &mut buf).to_string());
                }
                TermDict::from_sorted(terms)
            }
        }
    }

    /// Resident heap footprint in bytes, **content-derived**: string headers
    /// + string byte lengths + the bucket table. Capacity padding is
    ///   excluded so structurally equal dictionaries report identical sizes
    ///   regardless of how they were built. A mapped dictionary holds no term
    ///   bytes on the heap and reports 0.
    pub fn approx_bytes(&self) -> usize {
        match &self.repr {
            DictRepr::Owned { terms, buckets } => {
                terms.len() * std::mem::size_of::<String>()
                    + terms.iter().map(String::len).sum::<usize>()
                    + buckets.len() * std::mem::size_of::<u32>()
            }
            DictRepr::Mapped(_) => 0,
        }
    }
}

/// Equality is content equality: the bucket table is derived, and a mapped
/// dictionary equals an owned one over the same sorted terms.
impl PartialEq for TermDict {
    fn eq(&self, other: &Self) -> bool {
        match (&self.repr, &other.repr) {
            (DictRepr::Owned { terms: a, .. }, DictRepr::Owned { terms: b, .. }) => a == b,
            _ => {
                if self.len() != other.len() {
                    return false;
                }
                let mut a = Vec::new();
                let mut b = Vec::new();
                (0..self.len() as TermId).all(|id| {
                    self.decode_term(id, &mut a);
                    other.decode_term(id, &mut b);
                    a == b
                })
            }
        }
    }
}

impl Serialize for TermDict {
    fn serialize(&self) -> Value {
        let mut buf = Vec::new();
        Value::Array(
            (0..self.len() as TermId)
                .map(|id| Value::Str(self.decode_term(id, &mut buf).to_string()))
                .collect(),
        )
    }
}

impl Deserialize for TermDict {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let terms = Vec::<String>::deserialize(value)?;
        if !terms.windows(2).all(|w| w[0] < w[1]) {
            return Err(DeError::new(
                "term dictionary not sorted/deduplicated".to_string(),
            ));
        }
        Ok(Self::from_sorted(terms))
    }
}

fn build_buckets(terms: &[String]) -> Vec<u32> {
    if terms.is_empty() {
        return Vec::new();
    }
    let cap = (terms.len() * 2).next_power_of_two();
    let mut buckets = vec![0u32; cap];
    let mask = cap - 1;
    for (id, term) in terms.iter().enumerate() {
        let mut slot = (hash_term(term) as usize) & mask;
        while buckets[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        buckets[slot] = id as u32 + 1;
    }
    buckets
}

fn hash_term(term: &str) -> u64 {
    // SipHash with the default fixed keys: deterministic across runs.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    term.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(terms: &[&str]) -> TermDict {
        let mut v: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
        v.sort();
        v.dedup();
        TermDict::from_sorted(v)
    }

    #[test]
    fn lookup_finds_every_term() {
        let d = dict(&["wow", "dance", "morcheeba", "a", "2"]);
        for id in 0..d.len() as u32 {
            let term = d.term(id).to_string();
            assert_eq!(d.lookup(&term), Some(id));
        }
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.lookup(""), None);
    }

    #[test]
    fn ids_are_sorted_ranks() {
        let d = dict(&["charlie", "alpha", "bravo"]);
        assert_eq!(d.term(0), "alpha");
        assert_eq!(d.term(1), "bravo");
        assert_eq!(d.term(2), "charlie");
    }

    #[test]
    fn empty_dictionary() {
        let d = TermDict::default();
        assert!(d.is_empty());
        assert_eq!(d.lookup("x"), None);
        assert_eq!(d.approx_bytes(), 0);
    }

    #[test]
    fn decode_term_matches_term() {
        let d = dict(&["zebra", "zeal", "zero"]);
        let mut buf = Vec::new();
        for id in 0..d.len() as u32 {
            assert_eq!(d.decode_term(id, &mut buf), d.term(id));
        }
    }

    #[test]
    fn approx_bytes_is_content_derived() {
        // Same content through different construction paths must agree.
        let a = dict(&["alpha", "bravo", "charlie"]);
        let mut v: Vec<String> = ["charlie", "alpha", "bravo"]
            .iter()
            .map(|t| {
                let mut s = String::with_capacity(64); // deliberate over-allocation
                s.push_str(t);
                s
            })
            .collect();
        v.sort();
        let b = TermDict::from_sorted(v);
        assert_eq!(a, b);
        assert_eq!(a.approx_bytes(), b.approx_bytes());
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let d = dict(&["x", "y", "zebra"]);
        let v = d.serialize();
        let back = TermDict::deserialize(&v).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.lookup("zebra"), Some(2));
    }

    #[test]
    fn deserialize_rejects_unsorted() {
        let v = Value::Array(vec![Value::Str("b".into()), Value::Str("a".into())]);
        assert!(TermDict::deserialize(&v).is_err());
    }
}
