//! The term dictionary: interns terms to dense [`TermId`]s.
//!
//! Terms are stored **sorted lexicographically** in one `Vec<String>`; the
//! `TermId` of a term is its rank in that order. Lookups go through a small
//! open-addressing hash table that stores only `TermId`s (no duplicated
//! strings), so a lookup is one hash plus a handful of probes, each a single
//! `&str` comparison against the sorted term column.
//!
//! Keeping the dictionary sorted makes the whole index layout *canonical*:
//! two indexes over the same logical content are structurally equal (same
//! columns, same arena order) regardless of build order — the property the
//! determinism contract of `docs/index-internals.md` rests on.

use serde::{DeError, Deserialize, Serialize, Value};
use std::hash::{Hash, Hasher};

/// Dense identifier of a term: its rank in the sorted dictionary.
pub type TermId = u32;

/// Sorted, hash-indexed term dictionary.
#[derive(Debug, Clone, Default)]
pub struct TermDict {
    /// Sorted term column; `TermId` = index.
    terms: Vec<String>,
    /// Open-addressing table of `TermId + 1` (0 = empty slot). Always a
    /// power of two, ≥ 2× the term count. Rebuilt on deserialize — never
    /// persisted.
    buckets: Vec<u32>,
}

impl TermDict {
    /// Builds a dictionary from a **sorted, deduplicated** term column.
    pub fn from_sorted(terms: Vec<String>) -> Self {
        debug_assert!(
            terms.windows(2).all(|w| w[0] < w[1]),
            "dictionary terms must be sorted and unique"
        );
        let buckets = build_buckets(&terms);
        Self { terms, buckets }
    }

    /// Number of distinct terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// The term with the given id.
    pub fn term(&self, id: TermId) -> &str {
        &self.terms[id as usize]
    }

    /// The sorted term column.
    pub fn terms(&self) -> &[String] {
        &self.terms
    }

    /// Looks a term up: hash probe into the bucket table, comparing against
    /// the sorted column. O(1) expected, no allocation.
    pub fn lookup(&self, term: &str) -> Option<TermId> {
        if self.buckets.is_empty() {
            return None;
        }
        let mask = self.buckets.len() - 1;
        let mut slot = (hash_term(term) as usize) & mask;
        loop {
            match self.buckets[slot] {
                0 => return None,
                id_plus_one => {
                    let id = id_plus_one - 1;
                    if self.terms[id as usize] == term {
                        return Some(id);
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }

    /// Estimated heap footprint in bytes: string headers + string bytes
    /// (capacity, not len) + the bucket table.
    pub fn approx_bytes(&self) -> usize {
        self.terms.capacity() * std::mem::size_of::<String>()
            + self.terms.iter().map(String::capacity).sum::<usize>()
            + self.buckets.capacity() * std::mem::size_of::<u32>()
    }
}

/// Equality is content equality: the bucket table is a derived structure.
impl PartialEq for TermDict {
    fn eq(&self, other: &Self) -> bool {
        self.terms == other.terms
    }
}

impl Serialize for TermDict {
    fn serialize(&self) -> Value {
        Value::Array(self.terms.iter().map(|t| Value::Str(t.clone())).collect())
    }
}

impl Deserialize for TermDict {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        let terms = Vec::<String>::deserialize(value)?;
        if !terms.windows(2).all(|w| w[0] < w[1]) {
            return Err(DeError::new(
                "term dictionary not sorted/deduplicated".to_string(),
            ));
        }
        Ok(Self::from_sorted(terms))
    }
}

fn build_buckets(terms: &[String]) -> Vec<u32> {
    if terms.is_empty() {
        return Vec::new();
    }
    let cap = (terms.len() * 2).next_power_of_two();
    let mut buckets = vec![0u32; cap];
    let mask = cap - 1;
    for (id, term) in terms.iter().enumerate() {
        let mut slot = (hash_term(term) as usize) & mask;
        while buckets[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        buckets[slot] = id as u32 + 1;
    }
    buckets
}

fn hash_term(term: &str) -> u64 {
    // SipHash with the default fixed keys: deterministic across runs.
    let mut h = std::collections::hash_map::DefaultHasher::new();
    term.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict(terms: &[&str]) -> TermDict {
        let mut v: Vec<String> = terms.iter().map(|t| t.to_string()).collect();
        v.sort();
        v.dedup();
        TermDict::from_sorted(v)
    }

    #[test]
    fn lookup_finds_every_term() {
        let d = dict(&["wow", "dance", "morcheeba", "a", "2"]);
        for id in 0..d.len() as u32 {
            let term = d.term(id).to_string();
            assert_eq!(d.lookup(&term), Some(id));
        }
        assert_eq!(d.lookup("absent"), None);
        assert_eq!(d.lookup(""), None);
    }

    #[test]
    fn ids_are_sorted_ranks() {
        let d = dict(&["charlie", "alpha", "bravo"]);
        assert_eq!(d.term(0), "alpha");
        assert_eq!(d.term(1), "bravo");
        assert_eq!(d.term(2), "charlie");
    }

    #[test]
    fn empty_dictionary() {
        let d = TermDict::default();
        assert!(d.is_empty());
        assert_eq!(d.lookup("x"), None);
        assert_eq!(d.approx_bytes(), 0);
    }

    #[test]
    fn serde_roundtrip_rebuilds_lookup() {
        let d = dict(&["x", "y", "zebra"]);
        let v = d.serialize();
        let back = TermDict::deserialize(&v).unwrap();
        assert_eq!(d, back);
        assert_eq!(back.lookup("zebra"), Some(2));
    }

    #[test]
    fn deserialize_rejects_unsorted() {
        let v = Value::Array(vec![Value::Str("b".into()), Value::Str("a".into())]);
        assert!(TermDict::deserialize(&v).is_err());
    }
}
