//! Tokenization: lowercase alphanumeric words with positions.

/// One token: the word and its 0-based position in the token stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenAt {
    pub term: String,
    pub position: u32,
}

/// Streams the lowercase alphanumeric tokens of `text` through `f` without
/// allocating a `String` per token: each token is built in `scratch` (reused
/// across calls — the builder hands the same buffer to every state) and
/// handed to `f` as a borrowed `&str` with its 0-based position.
///
/// Everything that is not alphanumeric separates tokens; tokens are
/// lowercased (ASCII + Unicode via `char::to_lowercase`).
pub fn for_each_token(text: &str, scratch: &mut String, mut f: impl FnMut(&str, u32)) {
    scratch.clear();
    let mut position = 0u32;
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            for lower in ch.to_lowercase() {
                scratch.push(lower);
            }
        } else if !scratch.is_empty() {
            f(scratch, position);
            scratch.clear();
            position += 1;
        }
    }
    if !scratch.is_empty() {
        f(scratch, position);
        scratch.clear();
    }
}

/// Splits `text` into lowercase alphanumeric tokens with positions.
/// Allocating wrapper over [`for_each_token`] for callers that want owned
/// tokens (queries, tests); the index build path streams instead.
pub fn tokenize(text: &str) -> Vec<TokenAt> {
    let mut out = Vec::new();
    let mut scratch = String::new();
    for_each_token(text, &mut scratch, |term, position| {
        out.push(TokenAt {
            term: term.to_string(),
            position,
        });
    });
    out
}

/// Tokenizes a query string into terms (no positions).
pub fn query_terms(text: &str) -> Vec<String> {
    tokenize(text).into_iter().map(|t| t.term).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn terms(s: &str) -> Vec<String> {
        tokenize(s).into_iter().map(|t| t.term).collect()
    }

    #[test]
    fn basic_split_and_lowercase() {
        assert_eq!(
            terms("Morcheeba, Enjoy the RIDE!"),
            vec!["morcheeba", "enjoy", "the", "ride"]
        );
    }

    #[test]
    fn positions_are_sequential() {
        let toks = tokenize("a b  c");
        assert_eq!(toks[0].position, 0);
        assert_eq!(toks[1].position, 1);
        assert_eq!(toks[2].position, 2);
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(terms("page 2 of 11"), vec!["page", "2", "of", "11"]);
    }

    #[test]
    fn empty_and_punctuation_only() {
        assert!(terms("").is_empty());
        assert!(terms("... !!! ---").is_empty());
    }

    #[test]
    fn unicode_lowercasing() {
        assert_eq!(terms("Größe"), vec!["größe"]);
    }

    #[test]
    fn apostrophes_split() {
        assert_eq!(terms("can't stop"), vec!["can", "t", "stop"]);
    }
}
