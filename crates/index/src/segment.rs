//! On-disk segment layout **v4**: compressed, zero-copy, mmap-able.
//!
//! A v4 segment is the binary payload inside the usual durable frame
//! (`ajax_crawl::durable`): the frame supplies atomic commit, the CRC and the
//! end-of-file marker; this module defines what the payload bytes mean.
//!
//! ```text
//! header (32 B):  magic "AJAXSEG4" | n_terms u32 | n_postings u32
//!                 | n_pages u32 | dict_block u32 | total_states u64
//! section table:  8 × (offset u64, len u64)       — offsets from payload[0]
//! S0 term_offsets   (n_terms+1) × u32 LE  posting-index bounds per term
//! S1 run_offsets    (n_terms+1) × u32 LE  byte bounds of each run in S4
//! S2 dict_blocks    (blocks+1)  × u32 LE  byte bounds of each block in S3
//! S3 dict_data      front-coded term strings (blocks of `dict_block`)
//! S4 postings       per posting: varint page Δ, state, fused count/pos-len
//! S5 term_pos       (n_terms+1) × u32 LE  byte bounds per term run in S6
//! S6 pos_stream     per posting: varint first position, then varint deltas
//! S7 pages          url / pagerank / ajaxrank / state_lengths, binary
//! ```
//!
//! Design rules:
//!
//! * **Fixed-width columns stay addressable in place.** `term_offsets`,
//!   `run_offsets`, `term_pos` and the dict block table are plain
//!   little-endian `u32` arrays read per-element with [`u32_at`] — never
//!   sliced to `&[u32]`, because the payload follows a variable-length frame
//!   header and has no alignment guarantee.
//! * **Variable-width data is delta+varint (LEB128).** A posting record is
//!   `page_delta, state, g[, extra]` varints: the run's first record stores
//!   page and state absolute; later records store the page delta, and a zero
//!   page delta switches `state` to a (strictly positive) delta from the
//!   previous state. Splitting the doc key this way keeps a page change at
//!   1–2 bytes, where a delta of the packed `(page << 32) | state` key costs
//!   five or more. The fused tail `g = (count-1) << 1 | (extra > 0)` carries
//!   the term frequency and, with the optional `extra = pos_len - count`
//!   varint, the byte length of the posting's position slice in S6
//!   (`pos_len`, which is at least one byte per position). Decoding a run
//!   therefore yields per-posting position bounds for free (accumulate
//!   within the term's S5 window) without a 4-byte-per-posting offset
//!   column, and the common posting — one occurrence at a sub-128 position —
//!   pays a single byte for both fields. Positions are
//!   first-absolute-then-delta per posting.
//! * **The dictionary is front-coded** in blocks of [`DICT_BLOCK`] terms: the
//!   block head is stored whole (directly sliceable for the block binary
//!   search), followers store `varint lcp + varint suffix_len + suffix`.
//!   Lookups run against the mapped bytes — no `Vec<String>` is ever built.
//! * **Decoding is lazy.** Opening a segment decodes only S7 (page metadata)
//!   and validates the structural invariants; doc/count runs are decoded
//!   per-query into a caller scratch, and positions are decoded only inside
//!   the proximity scan via `PostingList::for_each_position`.
//!
//! Corruption safety: the durable frame's CRC32 covers the whole payload and
//! is verified before [`open`] runs, so query-time decoding trusts the bytes;
//! [`open`] itself re-checks every section bound and sentinel so a logically
//! malformed (but well-checksummed) file fails loudly at load, not at query.

use crate::dict::TermId;
use crate::invert::{DocKey, IndexBuildError, InvertedIndex, OwnedStore, PageEntry};
use ajax_crawl::durable::MappedFrame;
use ajax_crawl::model::StateId;
use std::ops::Range;
use std::sync::Arc;

/// First eight payload bytes of every v4 segment.
pub(crate) const SEGMENT_MAGIC: [u8; 8] = *b"AJAXSEG4";

/// Terms per front-coded dictionary block.
pub(crate) const DICT_BLOCK: usize = 16;

const HEADER_LEN: usize = 32;
const SECTION_COUNT: usize = 8;
const PREFIX_LEN: usize = HEADER_LEN + SECTION_COUNT * 16;

// ---------------------------------------------------------------- primitives

/// The `idx`-th little-endian `u32` of an (unaligned) byte column.
#[inline]
pub(crate) fn u32_at(bytes: &[u8], idx: usize) -> u32 {
    let o = idx * 4;
    u32::from_le_bytes([bytes[o], bytes[o + 1], bytes[o + 2], bytes[o + 3]])
}

/// Appends `v` as LEB128.
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 value at `*cursor`, advancing it. The caller guarantees
/// the bytes are well-formed (CRC-verified segment data).
#[inline]
pub(crate) fn read_varint(bytes: &[u8], cursor: &mut usize) -> u64 {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = bytes[*cursor];
        *cursor += 1;
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return v;
        }
        shift += 7;
    }
}

fn u32s_to_le(values: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn checked_u32(len: usize, column: &'static str) -> Result<u32, IndexBuildError> {
    u32::try_from(len).map_err(|_| IndexBuildError::OffsetOverflow {
        column,
        len: len as u64,
        max: u64::from(u32::MAX),
    })
}

fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

// ------------------------------------------------------------------- encoder

/// Encodes `index` into a v4 segment payload. Works on owned and mapped
/// indexes alike (a mapped index re-encodes to the identical canonical
/// bytes). Fails with a typed overflow error if any byte column outgrows the
/// `u32` offset space.
pub(crate) fn encode(index: &InvertedIndex) -> Result<Vec<u8>, IndexBuildError> {
    let store = index.owned_store();
    let store: &OwnedStore = &store;
    let n_terms = index.term_count();
    let n_postings = store.docs.len();
    let n_pages = checked_u32(index.pages.len(), "pages")?;
    checked_u32(n_postings, "postings")?;

    // S4 posting records + S6 position stream, one pass per term run; S1
    // tracks run byte bounds and S5 the per-term position-stream bounds.
    let mut postings_stream = Vec::new();
    let mut pos_stream = Vec::new();
    let mut run_offsets = Vec::with_capacity(n_terms + 1);
    let mut term_pos_offsets = Vec::with_capacity(n_terms + 1);
    run_offsets.push(0u32);
    term_pos_offsets.push(0u32);
    let mut pos_buf = Vec::new();
    for t in 0..n_terms {
        let start = store.term_offsets[t] as usize;
        let end = store.term_offsets[t + 1] as usize;
        let mut prev = DocKey {
            page: 0,
            state: StateId(0),
        };
        for i in start..end {
            // The posting's position slice, delta+varint, staged so its byte
            // length can go into the record.
            pos_buf.clear();
            let o = store.pos_offsets[i] as usize;
            let c = store.counts[i] as usize;
            let mut pp = 0u32;
            for (j, &p) in store.positions[o..o + c].iter().enumerate() {
                let delta = if j == 0 { p } else { p - pp };
                write_varint(&mut pos_buf, u64::from(delta));
                pp = p;
            }

            let d = store.docs[i];
            if i == start {
                write_varint(&mut postings_stream, u64::from(d.page));
                write_varint(&mut postings_stream, u64::from(d.state.0));
            } else {
                let page_delta = d.page - prev.page;
                write_varint(&mut postings_stream, u64::from(page_delta));
                if page_delta == 0 {
                    write_varint(&mut postings_stream, u64::from(d.state.0 - prev.state.0));
                } else {
                    write_varint(&mut postings_stream, u64::from(d.state.0));
                }
            }
            let extra = pos_buf.len() as u64 - u64::from(store.counts[i]);
            let g = (u64::from(store.counts[i]) - 1) << 1 | u64::from(extra > 0);
            write_varint(&mut postings_stream, g);
            if extra > 0 {
                write_varint(&mut postings_stream, extra);
            }
            pos_stream.extend_from_slice(&pos_buf);
            prev = d;
        }
        run_offsets.push(checked_u32(postings_stream.len(), "postings_stream")?);
        term_pos_offsets.push(checked_u32(pos_stream.len(), "position_stream")?);
    }

    // S3 front-coded dictionary + S2 block offsets.
    let mut dict_data = Vec::new();
    let mut block_offsets = vec![0u32];
    let mut prev_term: Vec<u8> = Vec::new();
    let mut term_buf = Vec::new();
    for t in 0..n_terms {
        let term = index.dict().decode_term(t as TermId, &mut term_buf);
        let bytes = term.as_bytes();
        if t % DICT_BLOCK == 0 {
            if t > 0 {
                block_offsets.push(checked_u32(dict_data.len(), "dict_data")?);
            }
            write_varint(&mut dict_data, bytes.len() as u64);
            dict_data.extend_from_slice(bytes);
        } else {
            let l = lcp(&prev_term, bytes);
            write_varint(&mut dict_data, l as u64);
            write_varint(&mut dict_data, (bytes.len() - l) as u64);
            dict_data.extend_from_slice(&bytes[l..]);
        }
        prev_term.clear();
        prev_term.extend_from_slice(bytes);
    }
    if n_terms > 0 {
        block_offsets.push(checked_u32(dict_data.len(), "dict_data")?);
    }

    // S7 page metadata.
    let mut pages_bytes = Vec::new();
    for p in &index.pages {
        write_varint(&mut pages_bytes, p.url.len() as u64);
        pages_bytes.extend_from_slice(p.url.as_bytes());
        pages_bytes.extend_from_slice(&p.pagerank.to_le_bytes());
        write_varint(&mut pages_bytes, p.ajaxrank.len() as u64);
        for &a in &p.ajaxrank {
            pages_bytes.extend_from_slice(&a.to_le_bytes());
        }
        write_varint(&mut pages_bytes, p.state_lengths.len() as u64);
        for &l in &p.state_lengths {
            write_varint(&mut pages_bytes, u64::from(l));
        }
    }

    let s0 = u32s_to_le(&store.term_offsets);
    let s1 = u32s_to_le(&run_offsets);
    let s2 = u32s_to_le(&block_offsets);
    let s5 = u32s_to_le(&term_pos_offsets);
    let sections: [&[u8]; SECTION_COUNT] = [
        &s0,
        &s1,
        &s2,
        &dict_data,
        &postings_stream,
        &s5,
        &pos_stream,
        &pages_bytes,
    ];

    let body: usize = sections.iter().map(|s| s.len()).sum();
    let mut out = Vec::with_capacity(PREFIX_LEN + body);
    out.extend_from_slice(&SEGMENT_MAGIC);
    out.extend_from_slice(&(n_terms as u32).to_le_bytes());
    out.extend_from_slice(&(n_postings as u32).to_le_bytes());
    out.extend_from_slice(&n_pages.to_le_bytes());
    out.extend_from_slice(&(DICT_BLOCK as u32).to_le_bytes());
    out.extend_from_slice(&index.total_states.to_le_bytes());
    let mut offset = PREFIX_LEN as u64;
    for s in &sections {
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        offset += s.len() as u64;
    }
    for s in &sections {
        out.extend_from_slice(s);
    }
    Ok(out)
}

// ------------------------------------------------------------------- decoder

/// The mapped posting store: `Arc`-shared frame plus byte ranges of the
/// posting-related sections within the payload. Cloning is cheap (one `Arc`
/// bump) and the decoded state lives entirely in caller scratch buffers.
#[derive(Debug, Clone)]
pub struct MappedPostings {
    frame: Arc<MappedFrame>,
    term_offsets: Range<usize>,
    run_offsets: Range<usize>,
    postings: Range<usize>,
    term_pos_offsets: Range<usize>,
    pos_stream: Range<usize>,
    n_terms: usize,
    n_postings: usize,
}

impl MappedPostings {
    fn payload(&self) -> &[u8] {
        self.frame.payload()
    }

    fn term_offsets_slice(&self) -> &[u8] {
        &self.payload()[self.term_offsets.clone()]
    }

    fn run_offsets_slice(&self) -> &[u8] {
        &self.payload()[self.run_offsets.clone()]
    }

    fn postings_slice(&self) -> &[u8] {
        &self.payload()[self.postings.clone()]
    }

    fn term_pos_offsets_slice(&self) -> &[u8] {
        &self.payload()[self.term_pos_offsets.clone()]
    }

    fn pos_stream_bytes(&self) -> &[u8] {
        &self.payload()[self.pos_stream.clone()]
    }

    /// Whole-payload length — what `mapped_bytes` reports for residency.
    pub(crate) fn payload_len(&self) -> usize {
        self.payload().len()
    }

    /// Posting-index bounds of term `id` (from the fixed-width S0 column —
    /// no stream decode needed, so `df` stays O(1) on mapped segments).
    pub(crate) fn run_range(&self, id: TermId) -> Range<usize> {
        let s = self.term_offsets_slice();
        u32_at(s, id as usize) as usize..u32_at(s, id as usize + 1) as usize
    }

    pub(crate) fn run_len(&self, id: TermId) -> usize {
        self.run_range(id).len()
    }

    /// Decodes term `id`'s doc and count columns into the scratch vectors,
    /// plus `pos_offs`: `run_len + 1` cumulative byte offsets into the
    /// term's position window ([`MappedPostings::term_pos_window`]), built
    /// from the per-record `pos_len` varints as a side effect of the same
    /// pass — position *bytes* stay untouched.
    pub(crate) fn decode_docs_counts(
        &self,
        id: TermId,
        docs: &mut Vec<DocKey>,
        counts: &mut Vec<u32>,
        pos_offs: &mut Vec<u32>,
    ) {
        let run = self.run_range(id);
        let n = run.len();
        docs.clear();
        counts.clear();
        pos_offs.clear();
        docs.reserve(n);
        counts.reserve(n);
        pos_offs.reserve(n + 1);
        pos_offs.push(0);
        let stream = self.postings_slice();
        let mut cur = u32_at(self.run_offsets_slice(), id as usize) as usize;
        let mut page = 0u32;
        let mut state = 0u32;
        let mut pos_at = 0u32;
        for i in 0..n {
            let page_delta = read_varint(stream, &mut cur) as u32;
            let s = read_varint(stream, &mut cur) as u32;
            if i == 0 {
                page = page_delta;
                state = s;
            } else if page_delta == 0 {
                state += s;
            } else {
                page += page_delta;
                state = s;
            }
            docs.push(DocKey {
                page,
                state: StateId(state),
            });
            let g = read_varint(stream, &mut cur);
            let count = (g >> 1) as u32 + 1;
            let extra = if g & 1 == 1 {
                read_varint(stream, &mut cur) as u32
            } else {
                0
            };
            counts.push(count);
            pos_at += count + extra;
            pos_offs.push(pos_at);
        }
        debug_assert_eq!(
            cur,
            u32_at(self.run_offsets_slice(), id as usize + 1) as usize,
            "posting run must decode to exactly its declared byte range"
        );
        debug_assert_eq!(
            pos_at as usize,
            self.term_pos_window(id).len(),
            "posting pos_len sum must cover exactly the term's position window"
        );
    }

    /// The S6 slice holding term `id`'s positions (bounds from the
    /// fixed-width S5 column).
    pub(crate) fn term_pos_window(&self, id: TermId) -> &[u8] {
        let s = self.term_pos_offsets_slice();
        let start = u32_at(s, id as usize) as usize;
        let end = u32_at(s, id as usize + 1) as usize;
        &self.pos_stream_bytes()[start..end]
    }

    /// Fully decodes the segment back into owned columns (merge and v3
    /// re-save paths; queries never need this).
    pub(crate) fn materialize(&self) -> OwnedStore {
        let mut term_offsets = Vec::with_capacity(self.n_terms + 1);
        let to = self.term_offsets_slice();
        for i in 0..=self.n_terms {
            term_offsets.push(u32_at(to, i));
        }

        let mut docs = Vec::with_capacity(self.n_postings);
        let mut counts = Vec::with_capacity(self.n_postings);
        let mut pos_offsets = Vec::with_capacity(self.n_postings);
        let mut positions = Vec::new();
        let stream = self.postings_slice();
        let pstream = self.pos_stream_bytes();
        let tpo = self.term_pos_offsets_slice();
        let ro = self.run_offsets_slice();
        for t in 0..self.n_terms {
            let n = (u32_at(to, t + 1) - u32_at(to, t)) as usize;
            let mut cur = u32_at(ro, t) as usize;
            let mut pcur = u32_at(tpo, t) as usize;
            let mut page = 0u32;
            let mut state = 0u32;
            for i in 0..n {
                let page_delta = read_varint(stream, &mut cur) as u32;
                let s = read_varint(stream, &mut cur) as u32;
                if i == 0 {
                    page = page_delta;
                    state = s;
                } else if page_delta == 0 {
                    state += s;
                } else {
                    page += page_delta;
                    state = s;
                }
                docs.push(DocKey {
                    page,
                    state: StateId(state),
                });
                let g = read_varint(stream, &mut cur);
                let count = (g >> 1) as u32 + 1;
                let extra = if g & 1 == 1 {
                    read_varint(stream, &mut cur) as usize
                } else {
                    0
                };
                counts.push(count);
                let pend = pcur + count as usize + extra;
                pos_offsets.push(positions.len() as u32);
                let mut p = 0u32;
                let mut first = true;
                while pcur < pend {
                    let d = read_varint(pstream, &mut pcur) as u32;
                    p = if first { d } else { p + d };
                    first = false;
                    positions.push(p);
                }
            }
        }

        OwnedStore {
            term_offsets,
            docs,
            counts,
            pos_offsets,
            positions,
        }
    }
}

/// The mapped dictionary: front-coded term bytes addressed through the block
/// table, looked up without materializing any `String`.
#[derive(Debug, Clone)]
pub struct MappedDict {
    frame: Arc<MappedFrame>,
    block_offsets: Range<usize>,
    data: Range<usize>,
    n_terms: usize,
    block: usize,
}

impl MappedDict {
    fn data_slice(&self) -> &[u8] {
        &self.frame.payload()[self.data.clone()]
    }

    fn block_offsets_slice(&self) -> &[u8] {
        &self.frame.payload()[self.block_offsets.clone()]
    }

    pub(crate) fn len(&self) -> usize {
        self.n_terms
    }

    /// The head term of block `b` — stored whole, directly sliceable.
    fn head_bytes(&self, b: usize) -> &[u8] {
        let data = self.data_slice();
        let mut cur = u32_at(self.block_offsets_slice(), b) as usize;
        let len = read_varint(data, &mut cur) as usize;
        &data[cur..cur + len]
    }

    /// Hash-free lookup against the mapped bytes: binary search over block
    /// heads, then a front-coded scan tracking `m = lcp(query, previous)`.
    /// Each follower entry is classified from its stored lcp alone —
    /// `lcp < m` proves the entry already sorts after the query (stop),
    /// `lcp > m` proves it still sorts before (skip without touching its
    /// bytes), and only `lcp == m` compares suffix bytes.
    pub(crate) fn lookup(&self, term: &str) -> Option<TermId> {
        if self.n_terms == 0 {
            return None;
        }
        let q = term.as_bytes();
        let blocks = self.n_terms.div_ceil(self.block);

        // Last block whose head is <= q.
        let mut lo = 0usize;
        let mut hi = blocks;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.head_bytes(mid) <= q {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo == 0 {
            return None; // query sorts before the first term
        }
        let b = lo - 1;

        let data = self.data_slice();
        let mut cur = u32_at(self.block_offsets_slice(), b) as usize;
        let head_len = read_varint(data, &mut cur) as usize;
        let head = &data[cur..cur + head_len];
        cur += head_len;
        if head == q {
            return Some((b * self.block) as TermId);
        }
        // Invariant below: the previously decoded term sorts before q and
        // shares exactly `m` leading bytes with it.
        let mut m = lcp(q, head);
        let in_block = (self.n_terms - b * self.block).min(self.block);
        for j in 1..in_block {
            let l = read_varint(data, &mut cur) as usize;
            let slen = read_varint(data, &mut cur) as usize;
            let suffix = &data[cur..cur + slen];
            cur += slen;
            if l < m {
                // entry diverges from its predecessor before `m`: its first
                // suffix byte exceeds q[l] (sorted order), so entry > q.
                return None;
            }
            if l > m {
                // entry[..m+1] == predecessor[..m+1] < q[..m+1]: entry < q.
                continue;
            }
            let rest = &q[m..];
            if suffix == rest {
                return Some((b * self.block + j) as TermId);
            }
            if suffix < rest {
                m += lcp(suffix, rest);
            } else {
                return None;
            }
        }
        None
    }

    /// Decodes term `id` into `buf`, returning it as `&str`. The scratch is
    /// a byte buffer (not `String`) because front-coded truncation points
    /// may split UTF-8 sequences mid-reconstruction.
    pub(crate) fn decode_term<'b>(&self, id: TermId, buf: &'b mut Vec<u8>) -> &'b str {
        let id = id as usize;
        let b = id / self.block;
        let data = self.data_slice();
        let mut cur = u32_at(self.block_offsets_slice(), b) as usize;
        let len = read_varint(data, &mut cur) as usize;
        buf.clear();
        buf.extend_from_slice(&data[cur..cur + len]);
        cur += len;
        for _ in 0..(id - b * self.block) {
            let l = read_varint(data, &mut cur) as usize;
            let slen = read_varint(data, &mut cur) as usize;
            buf.truncate(l);
            buf.extend_from_slice(&data[cur..cur + slen]);
            cur += slen;
        }
        std::str::from_utf8(buf).expect("segment terms are valid UTF-8 (checked at open)")
    }
}

// ---------------------------------------------------------------------- open

/// Bounds-checked reader for the one-time open-path decodes.
struct Reader<'a> {
    bytes: &'a [u8],
    cur: usize,
}

impl<'a> Reader<'a> {
    fn varint(&mut self) -> Result<u64, String> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let b = *self
                .bytes
                .get(self.cur)
                .ok_or("truncated varint in segment")?;
            self.cur += 1;
            if shift >= 64 {
                return Err("oversized varint in segment".to_string());
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .cur
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or("truncated byte run in segment")?;
        let s = &self.bytes[self.cur..end];
        self.cur = end;
        Ok(s)
    }

    fn f64(&mut self) -> Result<f64, String> {
        let b = self.take(8)?;
        Ok(f64::from_le_bytes(b.try_into().expect("8 bytes")))
    }
}

/// Opens a v4 segment over a validated durable frame: checks the header,
/// section table and structural sentinels, decodes page metadata eagerly,
/// and wires everything else up for lazy per-query decode. Errors are
/// human-readable details for `PersistError::Corrupt`.
pub(crate) fn open(frame: Arc<MappedFrame>) -> Result<InvertedIndex, String> {
    let payload = frame.payload();
    if payload.len() < PREFIX_LEN {
        return Err(format!(
            "segment too short: {} bytes, header+table need {PREFIX_LEN}",
            payload.len()
        ));
    }
    if payload[..8] != SEGMENT_MAGIC {
        return Err("bad segment magic".to_string());
    }
    let n_terms = u32::from_le_bytes(payload[8..12].try_into().expect("4 bytes")) as usize;
    let n_postings = u32::from_le_bytes(payload[12..16].try_into().expect("4 bytes")) as usize;
    let n_pages = u32::from_le_bytes(payload[16..20].try_into().expect("4 bytes")) as usize;
    let block = u32::from_le_bytes(payload[20..24].try_into().expect("4 bytes")) as usize;
    let total_states = u64::from_le_bytes(payload[24..32].try_into().expect("8 bytes"));
    if block == 0 {
        return Err("zero dictionary block size".to_string());
    }

    let mut secs: Vec<Range<usize>> = Vec::with_capacity(SECTION_COUNT);
    for i in 0..SECTION_COUNT {
        let at = HEADER_LEN + i * 16;
        let off = u64::from_le_bytes(payload[at..at + 8].try_into().expect("8 bytes"));
        let len = u64::from_le_bytes(payload[at + 8..at + 16].try_into().expect("8 bytes"));
        let end = off.checked_add(len).filter(|&e| e <= payload.len() as u64);
        let (Ok(off), Some(_)) = (usize::try_from(off), end) else {
            return Err(format!("section {i} out of bounds"));
        };
        if off < PREFIX_LEN {
            return Err(format!("section {i} overlaps the header"));
        }
        secs.push(off..off + len as usize);
    }

    let blocks = n_terms.div_ceil(block);
    let expect_len = |i: usize, want: usize, what: &str| -> Result<(), String> {
        if secs[i].len() != want {
            Err(format!(
                "{what} section: {} bytes, expected {want}",
                secs[i].len()
            ))
        } else {
            Ok(())
        }
    };
    expect_len(0, (n_terms + 1) * 4, "term_offsets")?;
    expect_len(1, (n_terms + 1) * 4, "run_offsets")?;
    expect_len(2, (blocks + 1) * 4, "dict_blocks")?;
    expect_len(5, (n_terms + 1) * 4, "term_pos")?;

    // Sentinels: last offset of each fixed column must equal the length of
    // the stream it indexes into.
    let sentinel = |col: usize, idx: usize, want: usize, what: &str| -> Result<(), String> {
        let got = u32_at(&payload[secs[col].clone()], idx) as usize;
        if got != want {
            Err(format!("{what} sentinel {got}, expected {want}"))
        } else {
            Ok(())
        }
    };
    sentinel(0, n_terms, n_postings, "term_offsets")?;
    sentinel(1, n_terms, secs[4].len(), "run_offsets")?;
    sentinel(2, blocks, secs[3].len(), "dict_blocks")?;
    sentinel(5, n_terms, secs[6].len(), "term_pos")?;

    // Monotone offsets: a decreasing bound would make a later slice panic at
    // query time; reject it here instead. One pass over small fixed columns.
    for (col, what) in [
        (0usize, "term_offsets"),
        (1, "run_offsets"),
        (2, "dict_blocks"),
        (5, "term_pos"),
    ] {
        let s = &payload[secs[col].clone()];
        let n = s.len() / 4;
        for i in 1..n {
            if u32_at(s, i) < u32_at(s, i - 1) {
                return Err(format!("{what} not monotone at {i}"));
            }
        }
    }

    // Walk every dictionary block once: bounds-check the front coding,
    // reconstruct each term incrementally and validate it is UTF-8, so the
    // query-time decoder and `decode_term` can trust the bytes.
    {
        let data = &payload[secs[3].clone()];
        let table = &payload[secs[2].clone()];
        let mut term = Vec::new();
        for b in 0..blocks {
            let mut r = Reader {
                bytes: data,
                cur: u32_at(table, b) as usize,
            };
            let head_len = r.varint()? as usize;
            term.clear();
            term.extend_from_slice(r.take(head_len)?);
            if std::str::from_utf8(&term).is_err() {
                return Err(format!("dictionary block {b} head is not valid UTF-8"));
            }
            let in_block = (n_terms - b * block).min(block);
            for _ in 1..in_block {
                let l = r.varint()? as usize;
                if l > term.len() {
                    return Err("front-coded lcp exceeds previous term".to_string());
                }
                let slen = r.varint()? as usize;
                term.truncate(l);
                term.extend_from_slice(r.take(slen)?);
                if std::str::from_utf8(&term).is_err() {
                    return Err(format!("dictionary block {b} term is not valid UTF-8"));
                }
            }
        }
    }

    // Page metadata decodes eagerly — it is small and every query touches it.
    let mut pages = Vec::with_capacity(n_pages);
    {
        let mut r = Reader {
            bytes: &payload[secs[7].clone()],
            cur: 0,
        };
        for p in 0..n_pages {
            let url_len = r.varint()? as usize;
            let url = std::str::from_utf8(r.take(url_len)?)
                .map_err(|_| format!("page {p} URL is not valid UTF-8"))?
                .to_string();
            let pagerank = r.f64()?;
            let n_ajax = r.varint()? as usize;
            let mut ajaxrank = Vec::with_capacity(n_ajax.min(1 << 20));
            for _ in 0..n_ajax {
                ajaxrank.push(r.f64()?);
            }
            let n_lens = r.varint()? as usize;
            let mut state_lengths = Vec::with_capacity(n_lens.min(1 << 20));
            for _ in 0..n_lens {
                state_lengths.push(
                    u32::try_from(r.varint()?)
                        .map_err(|_| format!("page {p} state length exceeds u32"))?,
                );
            }
            pages.push(PageEntry {
                url,
                pagerank,
                ajaxrank,
                state_lengths,
            });
        }
        if r.cur != r.bytes.len() {
            return Err(format!(
                "trailing bytes in page section: {} of {} consumed",
                r.cur,
                r.bytes.len()
            ));
        }
    }

    let dict = MappedDict {
        frame: frame.clone(),
        block_offsets: secs[2].clone(),
        data: secs[3].clone(),
        n_terms,
        block,
    };
    let postings = MappedPostings {
        frame,
        term_offsets: secs[0].clone(),
        run_offsets: secs[1].clone(),
        postings: secs[4].clone(),
        term_pos_offsets: secs[5].clone(),
        pos_stream: secs[6].clone(),
        n_terms,
        n_postings,
    };
    Ok(InvertedIndex::from_mapped(
        dict,
        postings,
        pages,
        total_states,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut cur = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut cur), v);
        }
        assert_eq!(cur, buf.len());
    }

    #[test]
    fn u32_at_reads_unaligned() {
        let mut bytes = vec![0xAAu8]; // misalign everything after
        bytes.extend_from_slice(&7u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        assert_eq!(u32_at(&bytes[1..], 0), 7);
        assert_eq!(u32_at(&bytes[1..], 1), 0xDEAD_BEEF);
    }
}
