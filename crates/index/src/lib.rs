//! # ajax-index
//!
//! The search-engine half of *AJAX Crawl* (thesis ch. 5 and the
//! query-processing parts of ch. 6): an inverted file whose postings point
//! to **application states**, not just URLs.
//!
//! * [`tokenize`] — lowercase word tokenizer with positions;
//! * [`invert`] — the enhanced inverted file of Table 5.1:
//!   `keyword → (URI, state, tf, positions)`, plus the per-state AJAXRank
//!   (stationary distribution of the page's transition graph) and the
//!   per-URL PageRank from the precrawl phase;
//! * [`query`] — boolean keyword and conjunction processing (posting-list
//!   merge on URL, then state — §5.3.2) and the ranking formula 5.3:
//!   `R = w1·PageRank + w2·AJAXRank + w3·Σ tf·idf + w4·proximity`;
//! * [`shard`] — query shipping over per-partition indexes with the global
//!   idf computed at merge time from per-shard `(N, df)` counts (§6.5.2).
//!
//! Result aggregation (state reconstruction) lives in `ajax_crawl::replay`,
//! since it re-drives the crawler's browser.

pub mod aggregate;
pub mod invert;
pub mod persist;
pub mod query;
pub mod shard;
pub mod tokenize;

pub use aggregate::{locate_terms, ElementHit};
pub use invert::{DocKey, IndexBuilder, InvertedIndex, Posting};
pub use persist::{load_index, load_models, save_index, save_models, PersistError};
pub use query::{search, search_top_k, Query, RankWeights, SearchResult};
pub use shard::{
    eval_shard, merge_shard_outputs, BrokerResult, QueryBroker, ShardResult, ShardTermStats,
};
pub use tokenize::tokenize;
