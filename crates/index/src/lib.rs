//! # ajax-index
//!
//! The search-engine half of *AJAX Crawl* (thesis ch. 5 and the
//! query-processing parts of ch. 6): an inverted file whose postings point
//! to **application states**, not just URLs.
//!
//! * [`tokenize`] — lowercase word tokenizer with positions (streaming
//!   [`tokenize::for_each_token`] for the allocation-light build path);
//! * [`dict`] — the sorted, hash-indexed term dictionary interning terms to
//!   dense `TermId`s;
//! * [`invert`] — the enhanced inverted file of Table 5.1 in compact
//!   columnar form: `keyword → (URI, state, tf, positions)` stored as
//!   per-term contiguous runs over a shared position arena, plus the
//!   per-state AJAXRank (stationary distribution of the page's transition
//!   graph) and the per-URL PageRank from the precrawl phase;
//! * [`kernel`] — the allocation-free query kernel: galloping intersection,
//!   reusable scoring scratch, bounded top-k;
//! * [`query`] — boolean keyword and conjunction processing (posting-list
//!   merge on URL, then state — §5.3.2) and the ranking formula 5.3:
//!   `R = w1·PageRank + w2·AJAXRank + w3·Σ tf·idf + w4·proximity`;
//! * [`segment`] — the compressed, mmap-able on-disk segment (format v4):
//!   delta+varint posting runs, front-coded dictionary, lazily-decoded
//!   position stream, all addressable in place behind the durable frame;
//! * [`shard`] — query shipping over per-partition indexes with the global
//!   idf computed at merge time from per-shard `(N, df)` counts (§6.5.2);
//! * [`reference`] — the frozen pre-columnar implementation, kept as the
//!   equivalence oracle and bench baseline.
//!
//! The layout, determinism contract, and on-disk format history are
//! documented in `docs/index-internals.md`.
//!
//! Result aggregation (state reconstruction) lives in `ajax_crawl::replay`,
//! since it re-drives the crawler's browser.

pub mod aggregate;
pub mod dict;
pub mod invert;
pub mod kernel;
pub mod persist;
pub mod probe;
pub mod query;
pub mod reference;
pub mod segment;
pub mod shard;
pub mod tokenize;

pub use aggregate::{locate_terms, ElementHit};
pub use dict::{TermDict, TermId};
pub use invert::{
    build_index_parallel, build_index_with_path, planned_build_path, try_build_index_parallel,
    BuildPath, DocKey, IndexBuildError, IndexBuilder, InvertedIndex, PostingList, PostingRef,
    TermScratch, PARALLEL_BUILD_MIN_STATES,
};
pub use kernel::ScoreScratch;
pub use persist::{
    load_index, load_models, save_index, save_index_v3, save_models, PersistError,
    INDEX_FORMAT_VERSION, INDEX_MAGIC, INDEX_V3_VERSION,
};
pub use query::{search, search_top_k, Query, RankWeights, SearchResult};
pub use shard::{
    eval_shard, eval_shard_with_scratch, merge_shard_outputs, BrokerResult, QueryBroker,
    ShardResult, ShardTermStats,
};
pub use tokenize::tokenize;
