//! Index and model persistence (thesis §8.3: "Saving an Index to disk for
//! later use" / "Loading an Index"; the crawler likewise serialized
//! application models per partition, §6.3.2).
//!
//! The original used Java serialization; we use JSON via serde — human
//! inspectable, versionable, and adequate for the corpus sizes at hand.
//!
//! ## Index format versioning
//!
//! Index files are wrapped in a versioned envelope so stale on-disk indexes
//! fail loudly instead of deserializing garbage:
//!
//! ```json
//! {"magic": "ajax-index", "version": 2, "index": { ...columns... }}
//! ```
//!
//! * **v1** (unversioned, pre-columnar): a bare object with a `postings`
//!   term→list map. Rejected with [`PersistError::Format`] naming the
//!   remedy (rebuild).
//! * **v2**: the columnar layout of `invert.rs` (dictionary + column arrays
//!   + position arena) inside the envelope above.
//!
//! Model files are unchanged (plain JSON array of models).

use crate::invert::InvertedIndex;
use ajax_crawl::model::AppModel;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::fs;
use std::path::Path;

/// The envelope magic for index files.
pub const INDEX_MAGIC: &str = "ajax-index";
/// The current index format version (v2 = columnar).
pub const INDEX_FORMAT_VERSION: u64 = 2;

/// Why a save/load failed.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Serde(serde_json::Error),
    /// The file parsed as JSON but is not a current-format index (wrong
    /// magic, old/unknown version, or malformed envelope).
    Format(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
            PersistError::Format(msg) => write!(f, "index format error: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Saves an inverted file to `path` (versioned JSON envelope).
pub fn save_index(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<(), PersistError> {
    let mut envelope = serde::Map::new();
    envelope.insert("magic".to_string(), Value::Str(INDEX_MAGIC.to_string()));
    envelope.insert("version".to_string(), Value::U64(INDEX_FORMAT_VERSION));
    envelope.insert("index".to_string(), index.serialize());
    let json = serde_json::to_string(&Value::Object(envelope))?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads an inverted file from `path`, verifying the format envelope.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, PersistError> {
    let json = fs::read_to_string(path)?;
    let value: Value = serde_json::from_str(&json)?;
    let obj = value.as_object().ok_or_else(|| {
        PersistError::Format(format!(
            "expected an index envelope object, got {}",
            value.kind()
        ))
    })?;
    match obj.get("magic").and_then(Value::as_str) {
        Some(INDEX_MAGIC) => {}
        Some(other) => {
            return Err(PersistError::Format(format!(
                "wrong magic {other:?} (expected {INDEX_MAGIC:?})"
            )))
        }
        None => {
            // Pre-envelope files (the v1 BTreeMap layout) have no magic at
            // all — the common stale-file case; name the remedy.
            return Err(PersistError::Format(
                "no format magic: this looks like a v1 (pre-columnar) or foreign \
                 file; rebuild the index with `ajax-search build`"
                    .to_string(),
            ));
        }
    }
    match obj.get("version") {
        Some(Value::U64(v)) if *v == INDEX_FORMAT_VERSION => {}
        Some(Value::U64(v)) => {
            return Err(PersistError::Format(format!(
                "unsupported index format version {v} (this build reads \
                 v{INDEX_FORMAT_VERSION}); rebuild the index with `ajax-search build`"
            )))
        }
        _ => {
            return Err(PersistError::Format(
                "missing or malformed format version".to_string(),
            ))
        }
    }
    let index = obj
        .get("index")
        .ok_or_else(|| PersistError::Format("envelope has no index payload".to_string()))?;
    InvertedIndex::deserialize(index)
        .map_err(|e| PersistError::Format(format!("index payload: {e}")))
}

/// Saves crawled application models to `path` — the per-partition
/// `*.bin` files of §6.3.2, unified into one JSON document.
pub fn save_models(path: impl AsRef<Path>, models: &[AppModel]) -> Result<(), PersistError> {
    let json = serde_json::to_string(models)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads application models from `path`.
pub fn load_models(path: impl AsRef<Path>) -> Result<Vec<AppModel>, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use crate::query::{search, Query, RankWeights};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_persist_{}_{name}", std::process::id()));
        p
    }

    fn sample_model() -> AppModel {
        let mut m = AppModel::new("http://x/watch?v=1");
        m.add_state(
            1,
            "morcheeba enjoy the ride".into(),
            Some("<p>x</p>".into()),
        );
        m.add_state(2, "the singer is daisy".into(), None);
        m
    }

    #[test]
    fn index_roundtrip_preserves_search_results() -> Result<(), PersistError> {
        let mut b = IndexBuilder::new();
        b.add_model(&sample_model(), Some(0.7));
        let index = b.build();

        let path = temp_path("index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        let q = Query::parse("singer");
        let w = RankWeights::default();
        assert_eq!(search(&index, &q, &w), search(&loaded, &q, &w));
        Ok(())
    }

    #[test]
    fn envelope_carries_magic_and_version() -> Result<(), PersistError> {
        let mut b = IndexBuilder::new();
        b.add_model(&sample_model(), Some(0.7));
        let index = b.build();
        let path = temp_path("envelope.json");
        save_index(&path, &index)?;
        let text = std::fs::read_to_string(&path)?;
        std::fs::remove_file(&path).ok();
        assert!(text.contains("\"magic\""));
        assert!(text.contains(INDEX_MAGIC));
        assert!(text.contains("\"version\""));
        Ok(())
    }

    #[test]
    fn empty_index_roundtrip() -> Result<(), PersistError> {
        // The degenerate case a fresh deployment starts from: zero pages,
        // zero states. Must survive persistence exactly and stay searchable.
        let index = IndexBuilder::new().build();
        assert_eq!(index.total_states, 0);

        let path = temp_path("empty_index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        assert_eq!(loaded.term_count(), 0);
        assert!(search(&loaded, &Query::parse("anything"), &RankWeights::default()).is_empty());
        Ok(())
    }

    #[test]
    fn models_roundtrip() -> Result<(), PersistError> {
        let models = vec![sample_model()];
        let path = temp_path("models.json");
        save_models(&path, &models)?;
        let loaded = load_models(&path)?;
        std::fs::remove_file(&path).ok();
        assert_eq!(models, loaded);
        assert_eq!(loaded[0].states[0].dom_html.as_deref(), Some("<p>x</p>"));
        Ok(())
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_index("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_errors() -> Result<(), std::io::Error> {
        let path = temp_path("garbage.json");
        std::fs::write(&path, "{not json")?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Serde(_)));
        Ok(())
    }

    #[test]
    fn load_v1_file_rejected_with_clear_error() -> Result<(), std::io::Error> {
        // What the pre-columnar code wrote: a bare index object, no envelope.
        let path = temp_path("v1_index.json");
        std::fs::write(
            &path,
            r#"{"postings":{"wow":[{"doc":{"page":0,"state":0},"count":1,"positions":[0]}]},"pages":[{"url":"http://x","pagerank":0.5,"ajaxrank":[1.0],"state_lengths":[1]}],"total_states":1}"#,
        )?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Format(msg) => {
                assert!(msg.contains("rebuild"), "unhelpful message: {msg}");
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn load_future_version_rejected() -> Result<(), std::io::Error> {
        let path = temp_path("v99_index.json");
        std::fs::write(&path, r#"{"magic":"ajax-index","version":99,"index":{}}"#)?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Format(msg) => assert!(msg.contains("99"), "message: {msg}"),
            other => panic!("expected Format error, got {other:?}"),
        }
        Ok(())
    }
}
