//! Index and model persistence (thesis §8.3: "Saving an Index to disk for
//! later use" / "Loading an Index"; the crawler likewise serialized
//! application models per partition, §6.3.2).
//!
//! The original used Java serialization; we use JSON via serde — human
//! inspectable, versionable, and adequate for the corpus sizes at hand.

use crate::invert::InvertedIndex;
use ajax_crawl::model::AppModel;
use std::fmt;
use std::fs;
use std::path::Path;

/// Why a save/load failed.
#[derive(Debug)]
pub enum PersistError {
    Io(std::io::Error),
    Serde(serde_json::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::Serde(e) => write!(f, "serialization error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<serde_json::Error> for PersistError {
    fn from(e: serde_json::Error) -> Self {
        PersistError::Serde(e)
    }
}

/// Saves an inverted file to `path` (JSON).
pub fn save_index(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<(), PersistError> {
    let json = serde_json::to_string(index)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads an inverted file from `path`.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

/// Saves crawled application models to `path` — the per-partition
/// `*.bin` files of §6.3.2, unified into one JSON document.
pub fn save_models(path: impl AsRef<Path>, models: &[AppModel]) -> Result<(), PersistError> {
    let json = serde_json::to_string(models)?;
    fs::write(path, json)?;
    Ok(())
}

/// Loads application models from `path`.
pub fn load_models(path: impl AsRef<Path>) -> Result<Vec<AppModel>, PersistError> {
    let json = fs::read_to_string(path)?;
    Ok(serde_json::from_str(&json)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use crate::query::{search, Query, RankWeights};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_persist_{}_{name}", std::process::id()));
        p
    }

    fn sample_model() -> AppModel {
        let mut m = AppModel::new("http://x/watch?v=1");
        m.add_state(
            1,
            "morcheeba enjoy the ride".into(),
            Some("<p>x</p>".into()),
        );
        m.add_state(2, "the singer is daisy".into(), None);
        m
    }

    #[test]
    fn index_roundtrip_preserves_search_results() -> Result<(), PersistError> {
        let mut b = IndexBuilder::new();
        b.add_model(&sample_model(), Some(0.7));
        let index = b.build();

        let path = temp_path("index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        let q = Query::parse("singer");
        let w = RankWeights::default();
        assert_eq!(search(&index, &q, &w), search(&loaded, &q, &w));
        Ok(())
    }

    #[test]
    fn empty_index_roundtrip() -> Result<(), PersistError> {
        // The degenerate case a fresh deployment starts from: zero pages,
        // zero states. Must survive persistence exactly and stay searchable.
        let index = IndexBuilder::new().build();
        assert_eq!(index.total_states, 0);

        let path = temp_path("empty_index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        assert_eq!(loaded.term_count(), 0);
        assert!(search(&loaded, &Query::parse("anything"), &RankWeights::default()).is_empty());
        Ok(())
    }

    #[test]
    fn models_roundtrip() -> Result<(), PersistError> {
        let models = vec![sample_model()];
        let path = temp_path("models.json");
        save_models(&path, &models)?;
        let loaded = load_models(&path)?;
        std::fs::remove_file(&path).ok();
        assert_eq!(models, loaded);
        assert_eq!(loaded[0].states[0].dom_html.as_deref(), Some("<p>x</p>"));
        Ok(())
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_index("/nonexistent/definitely/missing.json").unwrap_err();
        assert!(matches!(err, PersistError::Io(_)));
    }

    #[test]
    fn load_garbage_errors() -> Result<(), std::io::Error> {
        let path = temp_path("garbage.json");
        std::fs::write(&path, "{not json")?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Serde(_)));
        Ok(())
    }
}
