//! Index and model persistence (thesis §8.3: "Saving an Index to disk for
//! later use" / "Loading an Index"; the crawler likewise serialized
//! application models per partition, §6.3.2).
//!
//! The original used Java serialization; we use JSON via serde — human
//! inspectable, versionable, and adequate for the corpus sizes at hand.
//!
//! ## Durability
//!
//! All writes go through the crash-safe commit protocol in
//! [`ajax_crawl::durable`]: serialize to `<path>.tmp`, fsync, rename over
//! the destination, fsync the parent directory. A reader therefore sees
//! either the complete old file or the complete new file — never a torn
//! write.
//!
//! ## Index format versioning
//!
//! * **v1** (unversioned, pre-columnar): a bare object with a `postings`
//!   term→list map. Rejected with [`PersistError::Format`] naming the
//!   remedy (rebuild).
//! * **v2**: the columnar layout of `invert.rs` inside a single-document
//!   JSON envelope `{"magic","version","index"}`. Still loadable.
//! * **v3**: the same columnar payload as JSON inside the framed durable
//!   layout — a header line carrying the magic, version, payload length and
//!   a CRC32 of the payload, then the payload, then an end-of-file marker.
//!   Still loadable (and writable via [`save_index_v3`] for comparisons).
//! * **v4** (current): the compressed binary segment of `segment.rs` inside
//!   the same durable frame:
//!
//!   ```text
//!   {"magic":"ajax-index","version":4,"payload_crc32":C,"payload_len":L}
//!   AJAXSEG4 ...binary segment...
//!   #ajax-durable-eof
//!   ```
//!
//!   The CRC is computed over the raw payload bytes, so frame verification
//!   is format-agnostic. Loading a v4 file **maps** it ([`ajax_crawl::durable::map_framed`])
//!   instead of deserializing: the posting columns are addressed in place
//!   and decoded lazily per query.
//!
//!   Truncated, over-long or bit-flipped files fail the length/marker/CRC
//!   checks and surface as [`PersistError::Corrupt`] naming the file — they
//!   are never silently loaded as a partial index.
//!
//! Model files use the same frame with magic `ajax-models` (legacy bare
//! JSON arrays remain loadable).

use crate::invert::InvertedIndex;
use crate::segment;
use ajax_crawl::durable::{self, DurableError, FrameRead, MapRead};
use ajax_crawl::model::AppModel;
use serde::{Deserialize, Serialize, Value};
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The envelope magic for index files.
pub const INDEX_MAGIC: &str = "ajax-index";
/// The current index format version (v4 = compressed mmap-able segment +
/// durable frame).
pub const INDEX_FORMAT_VERSION: u64 = 4;
/// The previous (JSON columnar) index version, still read and writable via
/// [`save_index_v3`].
pub const INDEX_V3_VERSION: u64 = 3;
/// The envelope magic for model files.
pub const MODELS_MAGIC: &str = "ajax-models";
/// The current model file format version.
pub const MODELS_FORMAT_VERSION: u64 = 1;

/// Why a save/load failed. Every variant names the offending file so a
/// multi-shard operator can tell *which* artifact is damaged.
#[derive(Debug)]
pub enum PersistError {
    /// The file could not be read or written.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// The file contents (or payload) are not parseable JSON at all.
    Serde {
        path: PathBuf,
        source: serde_json::Error,
    },
    /// The file parsed but is not a current-format artifact (wrong magic,
    /// old/unknown version, or malformed envelope).
    Format { path: PathBuf, detail: String },
    /// The file is a recognized artifact but physically damaged: truncated,
    /// carrying trailing garbage, or failing its checksum.
    Corrupt { path: PathBuf, detail: String },
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "i/o error on {}: {source}", path.display())
            }
            PersistError::Serde { path, source } => {
                write!(f, "serialization error on {}: {source}", path.display())
            }
            PersistError::Format { path, detail } => {
                write!(f, "format error on {}: {detail}", path.display())
            }
            PersistError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<DurableError> for PersistError {
    fn from(e: DurableError) -> Self {
        match e {
            DurableError::Io { path, source } => PersistError::Io { path, source },
            DurableError::Corrupt { path, detail } => PersistError::Corrupt { path, detail },
        }
    }
}

fn serde_err(path: &Path, source: serde_json::Error) -> PersistError {
    PersistError::Serde {
        path: path.to_path_buf(),
        source,
    }
}

fn format_err(path: &Path, detail: impl Into<String>) -> PersistError {
    PersistError::Format {
        path: path.to_path_buf(),
        detail: detail.into(),
    }
}

/// Saves an inverted file to `path` in the current (v4) format: the
/// compressed binary segment inside the durable frame (magic + version +
/// CRC32 over the raw payload bytes + EOF marker), atomically committed.
pub fn save_index(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<(), PersistError> {
    let path = path.as_ref();
    let payload =
        segment::encode(index).map_err(|e| format_err(path, format!("segment encode: {e}")))?;
    durable::write_framed(path, INDEX_MAGIC, INDEX_FORMAT_VERSION, &payload)?;
    Ok(())
}

/// Saves an inverted file in the previous v3 (framed JSON) format — kept
/// for cross-version comparisons (the cold-start benchmark) and to exercise
/// the v3 load path.
pub fn save_index_v3(path: impl AsRef<Path>, index: &InvertedIndex) -> Result<(), PersistError> {
    let path = path.as_ref();
    let payload = serde_json::to_string(&index.serialize()).map_err(|e| serde_err(path, e))?;
    durable::write_framed(path, INDEX_MAGIC, INDEX_V3_VERSION, payload.as_bytes())?;
    Ok(())
}

/// Loads an inverted file from `path`, verifying frame integrity (length,
/// EOF marker, CRC32) and the format envelope.
///
/// A v4 file is **memory-mapped**: the call validates the segment's
/// structure (bounds, sentinels, dictionary coding, UTF-8) and returns an
/// index whose posting columns are decoded lazily from the mapping. v3/v2
/// files are deserialized into a fully resident index as before.
pub fn load_index(path: impl AsRef<Path>) -> Result<InvertedIndex, PersistError> {
    let path = path.as_ref();
    match durable::map_framed(path)? {
        MapRead::Framed(frame) => {
            if frame.magic != INDEX_MAGIC {
                return Err(format_err(
                    path,
                    format!("wrong magic {:?} (expected {INDEX_MAGIC:?})", frame.magic),
                ));
            }
            match frame.version {
                INDEX_FORMAT_VERSION => {
                    segment::open(Arc::new(frame)).map_err(|detail| PersistError::Corrupt {
                        path: path.to_path_buf(),
                        detail: format!("v4 segment: {detail}"),
                    })
                }
                INDEX_V3_VERSION => {
                    let text = std::str::from_utf8(frame.payload())
                        .map_err(|e| format_err(path, format!("payload is not UTF-8: {e}")))?;
                    let value: Value =
                        serde_json::from_str(text).map_err(|e| serde_err(path, e))?;
                    InvertedIndex::deserialize(&value)
                        .map_err(|e| format_err(path, format!("index payload: {e}")))
                }
                other => Err(format_err(
                    path,
                    format!(
                        "unsupported index format version {other} (this build reads \
                         v{INDEX_FORMAT_VERSION} and v{INDEX_V3_VERSION}); rebuild the \
                         index with `ajax-search build`"
                    ),
                )),
            }
        }
        MapRead::NotFramed(bytes) => load_index_legacy(path, bytes),
    }
}

/// Loads a pre-frame (v1/v2) index file: a single JSON document, possibly
/// wrapped in the v2 `{"magic","version","index"}` envelope.
fn load_index_legacy(path: &Path, bytes: Vec<u8>) -> Result<InvertedIndex, PersistError> {
    let text = String::from_utf8(bytes)
        .map_err(|e| format_err(path, format!("file is not UTF-8: {e}")))?;
    let value: Value = serde_json::from_str(&text).map_err(|e| serde_err(path, e))?;
    let obj = value.as_object().ok_or_else(|| {
        format_err(
            path,
            format!("expected an index envelope object, got {}", value.kind()),
        )
    })?;
    match obj.get("magic").and_then(Value::as_str) {
        Some(INDEX_MAGIC) => {}
        Some(other) => {
            return Err(format_err(
                path,
                format!("wrong magic {other:?} (expected {INDEX_MAGIC:?})"),
            ))
        }
        None => {
            // Pre-envelope files (the v1 BTreeMap layout) have no magic at
            // all — the common stale-file case; name the remedy.
            return Err(format_err(
                path,
                "no format magic: this looks like a v1 (pre-columnar) or foreign \
                 file; rebuild the index with `ajax-search build`",
            ));
        }
    }
    match obj.get("version") {
        // v2 wrote the same columnar payload, just without the durable
        // frame — keep old indexes loadable across the upgrade.
        Some(Value::U64(2)) => {}
        Some(Value::U64(v)) => {
            return Err(format_err(
                path,
                format!(
                    "unsupported index format version {v} (this build reads \
                     v{INDEX_FORMAT_VERSION}); rebuild the index with `ajax-search build`"
                ),
            ))
        }
        _ => return Err(format_err(path, "missing or malformed format version")),
    }
    let index = obj
        .get("index")
        .ok_or_else(|| format_err(path, "envelope has no index payload"))?;
    InvertedIndex::deserialize(index).map_err(|e| format_err(path, format!("index payload: {e}")))
}

/// Saves crawled application models to `path` — the per-partition
/// `*.bin` files of §6.3.2, unified into one framed, atomically committed
/// JSON document.
pub fn save_models(path: impl AsRef<Path>, models: &[AppModel]) -> Result<(), PersistError> {
    let path = path.as_ref();
    let payload = serde_json::to_string(models).map_err(|e| serde_err(path, e))?;
    durable::write_framed(
        path,
        MODELS_MAGIC,
        MODELS_FORMAT_VERSION,
        payload.as_bytes(),
    )?;
    Ok(())
}

/// Loads application models from `path` (framed current format, or a
/// legacy bare JSON array).
pub fn load_models(path: impl AsRef<Path>) -> Result<Vec<AppModel>, PersistError> {
    let path = path.as_ref();
    let bytes = match durable::read_framed(path)? {
        FrameRead::Framed {
            magic,
            version,
            payload,
        } => {
            if magic != MODELS_MAGIC {
                return Err(format_err(
                    path,
                    format!("wrong magic {magic:?} (expected {MODELS_MAGIC:?})"),
                ));
            }
            if version != MODELS_FORMAT_VERSION {
                return Err(format_err(
                    path,
                    format!(
                        "unsupported model file version {version} (this build reads \
                         v{MODELS_FORMAT_VERSION})"
                    ),
                ));
            }
            payload
        }
        FrameRead::NotFramed(bytes) => bytes,
    };
    let text = String::from_utf8(bytes)
        .map_err(|e| format_err(path, format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(&text).map_err(|e| serde_err(path, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use crate::query::{search, Query, RankWeights};

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ajax_persist_{}_{name}", std::process::id()));
        p
    }

    fn sample_model() -> AppModel {
        let mut m = AppModel::new("http://x/watch?v=1");
        m.add_state(
            1,
            "morcheeba enjoy the ride".into(),
            Some("<p>x</p>".into()),
        );
        m.add_state(2, "the singer is daisy".into(), None);
        m
    }

    fn sample_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        b.add_model(&sample_model(), Some(0.7));
        b.build()
    }

    #[test]
    fn index_roundtrip_preserves_search_results() -> Result<(), PersistError> {
        let index = sample_index();

        let path = temp_path("index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        let q = Query::parse("singer");
        let w = RankWeights::default();
        assert_eq!(search(&index, &q, &w), search(&loaded, &q, &w));
        Ok(())
    }

    #[test]
    fn envelope_carries_magic_and_version() -> Result<(), PersistError> {
        let index = sample_index();
        let path = temp_path("envelope.json");
        save_index(&path, &index)?;
        // The payload is binary — inspect the file as bytes, not a String.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).ok();
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let header = std::str::from_utf8(&bytes[..header_end]).unwrap();
        assert!(header.contains("\"magic\""));
        assert!(header.contains(INDEX_MAGIC));
        assert!(header.contains("\"version\":4"));
        assert!(header.contains("payload_crc32"));
        let tail = format!("\n{}\n", ajax_crawl::durable::EOF_MARKER);
        assert!(bytes.ends_with(tail.as_bytes()));
        // The segment magic leads the binary payload.
        assert_eq!(&bytes[header_end + 1..header_end + 9], b"AJAXSEG4");
        Ok(())
    }

    #[test]
    fn v4_load_is_mapped_and_searches_identically() -> Result<(), PersistError> {
        let index = sample_index();
        let path = temp_path("v4_index.bin");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();
        assert!(loaded.is_mapped(), "v4 load must map, not deserialize");
        assert!(loaded.mapped_bytes() > 0);
        assert_eq!(index, loaded, "logical equality across backings");
        let w = RankWeights::default();
        for q in ["morcheeba", "the singer", "enjoy ride", "absent", ""] {
            let query = Query::parse(q);
            assert_eq!(
                search(&index, &query, &w),
                search(&loaded, &query, &w),
                "query {q:?} must be bit-identical on the mapped index"
            );
        }
        // Materializing the mapped index reproduces the original exactly.
        assert_eq!(loaded.into_owned(), index);
        Ok(())
    }

    #[test]
    fn v3_file_still_loads() -> Result<(), PersistError> {
        let index = sample_index();
        let path = temp_path("v3_index.json");
        save_index_v3(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();
        assert!(!loaded.is_mapped(), "v3 loads resident");
        assert_eq!(index, loaded);
        Ok(())
    }

    #[test]
    fn empty_index_roundtrip() -> Result<(), PersistError> {
        // The degenerate case a fresh deployment starts from: zero pages,
        // zero states. Must survive persistence exactly and stay searchable.
        let index = IndexBuilder::new().build();
        assert_eq!(index.total_states, 0);

        let path = temp_path("empty_index.json");
        save_index(&path, &index)?;
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();

        assert_eq!(index, loaded);
        assert_eq!(loaded.term_count(), 0);
        assert!(search(&loaded, &Query::parse("anything"), &RankWeights::default()).is_empty());
        Ok(())
    }

    #[test]
    fn models_roundtrip() -> Result<(), PersistError> {
        let models = vec![sample_model()];
        let path = temp_path("models.json");
        save_models(&path, &models)?;
        let loaded = load_models(&path)?;
        std::fs::remove_file(&path).ok();
        assert_eq!(models, loaded);
        assert_eq!(loaded[0].states[0].dom_html.as_deref(), Some("<p>x</p>"));
        Ok(())
    }

    #[test]
    fn legacy_bare_model_array_still_loads() {
        let models = vec![sample_model()];
        let path = temp_path("legacy_models.json");
        std::fs::write(&path, serde_json::to_string(&models).unwrap()).unwrap();
        let loaded = load_models(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(models, loaded);
    }

    #[test]
    fn load_missing_file_errors() {
        let err = load_index("/nonexistent/definitely/missing.json").unwrap_err();
        match err {
            PersistError::Io { path, .. } => {
                assert!(path.to_string_lossy().contains("missing.json"));
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn load_garbage_errors() -> Result<(), std::io::Error> {
        let path = temp_path("garbage.json");
        std::fs::write(&path, "{not json")?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, PersistError::Serde { .. }));
        Ok(())
    }

    #[test]
    fn load_v1_file_rejected_with_clear_error() -> Result<(), std::io::Error> {
        // What the pre-columnar code wrote: a bare index object, no envelope.
        let path = temp_path("v1_index.json");
        std::fs::write(
            &path,
            r#"{"postings":{"wow":[{"doc":{"page":0,"state":0},"count":1,"positions":[0]}]},"pages":[{"url":"http://x","pagerank":0.5,"ajaxrank":[1.0],"state_lengths":[1]}],"total_states":1}"#,
        )?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Format { detail, .. } => {
                assert!(detail.contains("rebuild"), "unhelpful message: {detail}");
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn load_v2_envelope_still_loads() -> Result<(), PersistError> {
        // What the previous release wrote: a one-document envelope with the
        // same columnar payload, no frame. Must stay loadable.
        let index = sample_index();
        let mut envelope = serde::Map::new();
        envelope.insert("magic".to_string(), Value::Str(INDEX_MAGIC.to_string()));
        envelope.insert("version".to_string(), Value::U64(2));
        envelope.insert("index".to_string(), index.serialize());
        let json = serde_json::to_string(&Value::Object(envelope)).unwrap();
        let path = temp_path("v2_index.json");
        std::fs::write(&path, json).unwrap();
        let loaded = load_index(&path)?;
        std::fs::remove_file(&path).ok();
        assert_eq!(index, loaded);
        Ok(())
    }

    #[test]
    fn load_future_version_rejected() -> Result<(), std::io::Error> {
        let path = temp_path("v99_index.json");
        std::fs::write(&path, r#"{"magic":"ajax-index","version":99,"index":{}}"#)?;
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Format { detail, .. } => {
                assert!(detail.contains("99"), "message: {detail}")
            }
            other => panic!("expected Format error, got {other:?}"),
        }
        Ok(())
    }

    #[test]
    fn truncated_index_detected_as_corrupt() {
        let path = temp_path("truncated_index.json");
        save_index(&path, &sample_index()).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Corrupt { path, detail } => {
                assert!(path.to_string_lossy().contains("truncated_index"));
                assert!(detail.contains("truncat"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bitflipped_index_detected_as_corrupt() {
        let path = temp_path("bitflip_index.json");
        save_index(&path, &sample_index()).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a bit in the middle of the payload (after the header line).
        let header_end = bytes.iter().position(|&b| b == b'\n').unwrap();
        let mid = header_end + (bytes.len() - header_end) / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = load_index(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        match err {
            PersistError::Corrupt { detail, .. } => {
                assert!(detail.contains("checksum"), "detail: {detail}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn save_commits_atomically_leaving_no_tmp() {
        let path = temp_path("atomic_index.json");
        save_index(&path, &sample_index()).unwrap();
        assert!(path.exists());
        assert!(!ajax_crawl::durable::tmp_path(&path).exists());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn display_names_the_offending_file() {
        let err = load_index("/nonexistent/definitely/missing.json").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("missing.json"), "message: {msg}");
    }
}
