//! The enhanced inverted file (thesis §5.2, Table 5.1) in compact columnar
//! form.
//!
//! Every **state** of every crawled page is an indexable document; a posting
//! therefore carries `(page, state, tf, positions)`. The index also stores
//! what ranking needs: per-page PageRank (from the precrawl phase), per-state
//! AJAXRank (PageRank over the page's transition graph) and per-state token
//! counts for the thesis' normalized term frequency (formula 5.1).
//!
//! ## Layout
//!
//! Instead of `BTreeMap<String, Vec<Posting>>` with one heap `Vec<u32>` per
//! posting, the index is four parallel columns plus two arenas:
//!
//! ```text
//! dict:         sorted term strings, TermId = rank        (dict.rs)
//! term_offsets: TermId → [start, end) into the columns    (len = terms + 1)
//! docs:         DocKey per posting    ─┐ one contiguous
//! counts:       occurrences per posting│ run per term,
//! pos_offsets:  offset into positions ─┘ doc-sorted
//! positions:    shared u32 arena; posting i owns
//!               positions[pos_offsets[i] .. pos_offsets[i] + counts[i]]
//! ```
//!
//! Since format v4 the columns have two backings: **owned** (the `Vec`s
//! above — what builders and merges produce) and **mapped** (compressed
//! byte sections of an mmap-ed segment, `segment.rs`). A mapped index
//! decodes a term's doc/count run on demand into a caller-owned
//! [`TermScratch`] (`postings_in`), and positions are decoded only inside
//! the proximity scan ([`PostingList::for_each_position`]).
//!
//! The layout is **canonical**: terms sorted, each term's run doc-sorted,
//! and the position arena written in exactly that iteration order. Two
//! indexes over the same logical content are therefore structurally equal
//! (`PartialEq`) no matter how they were built, merged or persisted — the
//! foundation of the determinism contract (see `docs/index-internals.md`).

use crate::dict::{TermDict, TermId};
use crate::segment::{self, MappedPostings};
use crate::tokenize::for_each_token;
use ajax_crawl::model::{AppModel, StateId};
use ajax_crawl::pagerank::pagerank_default;
use serde::{DeError, Deserialize, Serialize, Value};
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;

/// Identifies one indexed document: a `(page, state)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocKey {
    /// Index into [`InvertedIndex::pages`].
    pub page: u32,
    pub state: StateId,
}

/// A build or merge outgrew the index's `u32` offset space. Before this
/// guard, `as u32` casts silently wrapped on multi-GB inputs and corrupted
/// postings without any error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IndexBuildError {
    OffsetOverflow {
        /// Which column overflowed (`"postings"`, `"positions"`, `"pages"`,
        /// or a v4 stream name).
        column: &'static str,
        /// The size that did not fit.
        len: u64,
        /// The largest representable size.
        max: u64,
    },
}

impl fmt::Display for IndexBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IndexBuildError::OffsetOverflow { column, len, max } => write!(
                f,
                "index {column} column needs {len} entries/bytes, exceeding the u32 offset \
                 space ({max}); split the corpus into shards"
            ),
        }
    }
}

impl std::error::Error for IndexBuildError {}

/// The production offset limit: every offset column is `u32`.
const U32_LIMIT: u64 = u32::MAX as u64;

fn check_fits(column: &'static str, len: u64, limit: u64) -> Result<(), IndexBuildError> {
    if len > limit {
        Err(IndexBuildError::OffsetOverflow {
            column,
            len,
            max: limit,
        })
    } else {
        Ok(())
    }
}

/// A borrowed view of one posting: where a term occurs and how often.
/// Replaces the old owned `Posting { doc, count, positions: Vec<u32> }` —
/// the positions now point into the index's shared arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingRef<'a> {
    pub doc: DocKey,
    /// Raw occurrence count of the term in the state.
    pub count: u32,
    /// Token positions of the occurrences (for term proximity).
    pub positions: &'a [u32],
}

/// Where a posting list's positions come from.
#[derive(Debug, Clone, Copy)]
enum PosSrc<'a> {
    /// Owned index: absolute offsets into the shared `u32` arena.
    Arena {
        pos_offsets: &'a [u32],
        arena: &'a [u32],
    },
    /// Mapped segment: per-posting byte bounds (recovered into scratch
    /// during the run decode) into the term's slice of the delta+varint
    /// position stream — position bytes themselves decode lazily, never
    /// resident.
    Stream {
        pos_offs: &'a [u32],
        stream: &'a [u8],
    },
}

/// A borrowed view of one term's posting run: parallel slices over the doc
/// and count columns (owned columns or a per-query scratch decode), plus a
/// lazily-decoded position source. `Copy`, allocation-free, doc-sorted.
#[derive(Debug, Clone, Copy)]
pub struct PostingList<'a> {
    docs: &'a [DocKey],
    counts: &'a [u32],
    pos: PosSrc<'a>,
}

impl<'a> PostingList<'a> {
    /// The empty list (unseen terms).
    pub const EMPTY: PostingList<'static> = PostingList {
        docs: &[],
        counts: &[],
        pos: PosSrc::Arena {
            pos_offsets: &[],
            arena: &[],
        },
    };

    pub fn len(&self) -> usize {
        self.docs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The doc column — what the intersection kernel gallops over.
    pub fn docs(&self) -> &'a [DocKey] {
        self.docs
    }

    pub fn doc(&self, i: usize) -> DocKey {
        self.docs[i]
    }

    pub fn count(&self, i: usize) -> u32 {
        self.counts[i]
    }

    /// The position slice of posting `i` in the shared arena. Only available
    /// when the positions are arena-backed (owned index); mapped posting
    /// lists decode positions lazily — use
    /// [`PostingList::for_each_position`].
    pub fn positions(&self, i: usize) -> &'a [u32] {
        match self.pos {
            PosSrc::Arena { pos_offsets, arena } => {
                let off = pos_offsets[i] as usize;
                &arena[off..off + self.counts[i] as usize]
            }
            PosSrc::Stream { .. } => {
                panic!("PostingList::positions on a mapped segment; use for_each_position")
            }
        }
    }

    /// Visits the positions of posting `i` in ascending order. Works on both
    /// backings; on a mapped segment this is where the delta+varint stream
    /// is decoded — the only place position bytes are ever touched.
    pub fn for_each_position(&self, i: usize, mut f: impl FnMut(u32)) {
        match self.pos {
            PosSrc::Arena { pos_offsets, arena } => {
                let off = pos_offsets[i] as usize;
                for &p in &arena[off..off + self.counts[i] as usize] {
                    f(p);
                }
            }
            PosSrc::Stream { pos_offs, stream } => {
                let mut cur = pos_offs[i] as usize;
                let end = pos_offs[i + 1] as usize;
                let mut pos = 0u32;
                let mut first = true;
                while cur < end {
                    let delta = segment::read_varint(stream, &mut cur) as u32;
                    pos = if first { delta } else { pos + delta };
                    first = false;
                    f(pos);
                }
            }
        }
    }

    /// Borrowed posting view — arena-backed lists only (see
    /// [`PostingList::positions`]).
    pub fn get(&self, i: usize) -> PostingRef<'a> {
        PostingRef {
            doc: self.docs[i],
            count: self.counts[i],
            positions: self.positions(i),
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = PostingRef<'a>> + '_ {
        (0..self.len()).map(|i| self.get(i))
    }
}

/// Reusable decode target for one term's posting run on a mapped index.
/// Owned indexes ignore it (their columns are borrowed directly); mapped
/// indexes decode the delta+varint run into these vectors, which grow once
/// and are reused across queries.
#[derive(Debug, Default)]
pub struct TermScratch {
    pub(crate) docs: Vec<DocKey>,
    pub(crate) counts: Vec<u32>,
    /// `docs.len() + 1` cumulative byte offsets into the term's position
    /// window — rebuilt from the run's `pos_len` varints, so
    /// `for_each_position` keeps O(1) access without a per-posting offset
    /// column on disk.
    pub(crate) pos_offs: Vec<u32>,
}

impl TermScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-page metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageEntry {
    pub url: String,
    /// PageRank of the URL (uniform if no precrawl data was supplied).
    pub pagerank: f64,
    /// AJAXRank per state (indexed by state id).
    pub ajaxrank: Vec<f64>,
    /// Token count per state (the denominator of formula 5.1).
    pub state_lengths: Vec<u32>,
}

/// The owned (resident) posting columns — see the module docs for the
/// layout.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct OwnedStore {
    /// `TermId t` owns postings `term_offsets[t] .. term_offsets[t+1]`.
    pub(crate) term_offsets: Vec<u32>,
    /// Doc column, one entry per posting, doc-sorted within each term run.
    pub(crate) docs: Vec<DocKey>,
    /// Occurrence-count column, parallel to `docs`.
    pub(crate) counts: Vec<u32>,
    /// Offset of each posting's position slice in `positions`.
    pub(crate) pos_offsets: Vec<u32>,
    /// Shared position arena; posting `i` owns `counts[i]` entries.
    pub(crate) positions: Vec<u32>,
}

impl Default for OwnedStore {
    fn default() -> Self {
        Self {
            term_offsets: vec![0],
            docs: Vec::new(),
            counts: Vec::new(),
            pos_offsets: Vec::new(),
            positions: Vec::new(),
        }
    }
}

/// The posting columns: resident vectors, or byte sections of an mmap-ed v4
/// segment decoded on demand.
#[derive(Debug, Clone)]
pub(crate) enum Store {
    Owned(OwnedStore),
    Mapped(MappedPostings),
}

/// The inverted file (columnar; see module docs for the layout).
#[derive(Debug, Clone)]
pub struct InvertedIndex {
    /// Sorted, interned term dictionary.
    pub(crate) dict: TermDict,
    /// The posting columns (owned or mapped).
    pub(crate) store: Store,
    /// Indexed pages.
    pub pages: Vec<PageEntry>,
    /// Total number of indexed states (the `|D|` of formula 5.2).
    pub total_states: u64,
}

impl Default for InvertedIndex {
    fn default() -> Self {
        Self {
            dict: TermDict::default(),
            store: Store::Owned(OwnedStore::default()),
            pages: Vec::new(),
            total_states: 0,
        }
    }
}

impl InvertedIndex {
    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.dict.len()
    }

    /// The term dictionary.
    pub fn dict(&self) -> &TermDict {
        &self.dict
    }

    /// The interned id of `term`, if indexed.
    pub fn term_id(&self, term: &str) -> Option<TermId> {
        self.dict.lookup(term)
    }

    /// True when the posting columns live in an mmap-ed segment.
    pub fn is_mapped(&self) -> bool {
        matches!(self.store, Store::Mapped(_))
    }

    /// Assembles a mapped index from an opened v4 segment.
    pub(crate) fn from_mapped(
        dict: crate::segment::MappedDict,
        postings: MappedPostings,
        pages: Vec<PageEntry>,
        total_states: u64,
    ) -> Self {
        Self {
            dict: TermDict::from_mapped(dict),
            store: Store::Mapped(postings),
            pages,
            total_states,
        }
    }

    /// The owned columns — borrowed in place for an owned index, fully
    /// decoded for a mapped one (merge, v3 re-save, equality).
    pub(crate) fn owned_store(&self) -> Cow<'_, OwnedStore> {
        match &self.store {
            Store::Owned(s) => Cow::Borrowed(s),
            Store::Mapped(m) => Cow::Owned(m.materialize()),
        }
    }

    /// The owned columns of an index known to be resident (post
    /// [`InvertedIndex::into_owned`]).
    fn store_owned(&self) -> &OwnedStore {
        match &self.store {
            Store::Owned(s) => s,
            Store::Mapped(_) => unreachable!("caller materialized the index first"),
        }
    }

    /// Converts into a fully resident index: decodes the mapped columns and
    /// dictionary if necessary, no-op otherwise.
    pub fn into_owned(self) -> InvertedIndex {
        let InvertedIndex {
            dict,
            store,
            pages,
            total_states,
        } = self;
        let store = match store {
            Store::Owned(s) => Store::Owned(s),
            Store::Mapped(m) => Store::Owned(m.materialize()),
        };
        InvertedIndex {
            dict: dict.into_owned(),
            store,
            pages,
            total_states,
        }
    }

    /// Length of term `id`'s posting run — O(1) on both backings (the v4
    /// `term_offsets` column is fixed-width and addressable in place).
    pub fn run_len(&self, id: TermId) -> usize {
        match &self.store {
            Store::Owned(s) => {
                (s.term_offsets[id as usize + 1] - s.term_offsets[id as usize]) as usize
            }
            Store::Mapped(m) => m.run_len(id),
        }
    }

    /// The posting run of a known `TermId`, borrowed from the owned columns.
    /// Mapped indexes need a decode scratch — use
    /// [`InvertedIndex::postings_by_id_in`].
    pub fn postings_by_id(&self, id: TermId) -> PostingList<'_> {
        match &self.store {
            Store::Owned(s) => {
                let start = s.term_offsets[id as usize] as usize;
                let end = s.term_offsets[id as usize + 1] as usize;
                PostingList {
                    docs: &s.docs[start..end],
                    counts: &s.counts[start..end],
                    pos: PosSrc::Arena {
                        pos_offsets: &s.pos_offsets[start..end],
                        arena: &s.positions,
                    },
                }
            }
            Store::Mapped(_) => {
                panic!("postings_by_id on a mapped segment; use postings_by_id_in with a scratch")
            }
        }
    }

    /// The posting list of `term` (empty if absent). Owned indexes only —
    /// see [`InvertedIndex::postings_in`].
    pub fn postings(&self, term: &str) -> PostingList<'_> {
        match self.dict.lookup(term) {
            Some(id) => self.postings_by_id(id),
            None => PostingList::EMPTY,
        }
    }

    /// The posting run of a known `TermId` on either backing: owned columns
    /// are borrowed in place (the scratch is untouched); mapped runs are
    /// delta+varint-decoded into `scratch` and borrowed from there.
    /// Positions stay undecoded in both cases until `for_each_position`.
    pub fn postings_by_id_in<'s>(
        &'s self,
        id: TermId,
        scratch: &'s mut TermScratch,
    ) -> PostingList<'s> {
        match &self.store {
            Store::Owned(_) => self.postings_by_id(id),
            Store::Mapped(m) => {
                m.decode_docs_counts(
                    id,
                    &mut scratch.docs,
                    &mut scratch.counts,
                    &mut scratch.pos_offs,
                );
                PostingList {
                    docs: &scratch.docs,
                    counts: &scratch.counts,
                    pos: PosSrc::Stream {
                        pos_offs: &scratch.pos_offs,
                        stream: m.term_pos_window(id),
                    },
                }
            }
        }
    }

    /// The posting list of `term` on either backing (empty if absent).
    pub fn postings_in<'s>(&'s self, term: &str, scratch: &'s mut TermScratch) -> PostingList<'s> {
        match self.dict.lookup(term) {
            Some(id) => self.postings_by_id_in(id, scratch),
            None => PostingList::EMPTY,
        }
    }

    /// Document frequency: number of states containing `term`.
    pub fn df(&self, term: &str) -> u64 {
        match self.dict.lookup(term) {
            Some(id) => self.run_len(id) as u64,
            None => 0,
        }
    }

    /// Inverse document frequency (formula 5.2): `log(|D| / df)`.
    /// Returns 0 for unseen terms.
    pub fn idf(&self, term: &str) -> f64 {
        self.idf_from_df(self.df(term))
    }

    /// The idf for a known document frequency (the query kernel computes df
    /// once per term from the posting run and reuses it).
    pub fn idf_from_df(&self, df: u64) -> f64 {
        if df == 0 || self.total_states == 0 {
            0.0
        } else {
            (self.total_states as f64 / df as f64).ln()
        }
    }

    /// Normalized term frequency of a posting in its state (formula 5.1).
    pub fn tf(&self, posting: &PostingRef<'_>) -> f64 {
        self.tf_parts(posting.doc, posting.count)
    }

    /// The same, from the raw columns (avoids forming a `PostingRef`).
    pub fn tf_parts(&self, doc: DocKey, count: u32) -> f64 {
        let page = &self.pages[doc.page as usize];
        let len = page.state_lengths[doc.state.index()].max(1);
        f64::from(count) / f64::from(len)
    }

    /// The URL of a document.
    pub fn url_of(&self, doc: DocKey) -> &str {
        &self.pages[doc.page as usize].url
    }

    /// PageRank + AJAXRank of a document.
    pub fn ranks_of(&self, doc: DocKey) -> (f64, f64) {
        let page = &self.pages[doc.page as usize];
        let ajax = page.ajaxrank.get(doc.state.index()).copied().unwrap_or(0.0);
        (page.pagerank, ajax)
    }

    /// Merges `other` into `self`: pages are appended (their indices are
    /// re-based), posting runs are concatenated. This is the
    /// incremental-indexing path (the thesis builds its index incrementally
    /// from application models and merges per-partition results, §6.4).
    ///
    /// Because re-based doc keys are strictly greater than everything
    /// already indexed, concatenation keeps every run sorted — the merge is
    /// a linear two-way dictionary join, O(postings + terms), no re-sort.
    pub fn merge(&mut self, other: InvertedIndex) {
        let merged = InvertedIndex::merge_segments(vec![std::mem::take(self), other]);
        *self = merged;
    }

    /// K-way merge of index segments into one canonical index — panicking
    /// wrapper over [`InvertedIndex::try_merge_segments`] for callers that
    /// treat overflow as fatal.
    pub fn merge_segments(segments: Vec<InvertedIndex>) -> InvertedIndex {
        InvertedIndex::try_merge_segments(segments)
            .expect("index merge overflowed the u32 offset space")
    }

    /// K-way merge of index segments into one canonical index — the
    /// parallel build's combine step. Pages are concatenated in segment
    /// order (doc keys re-based); the dictionaries are merge-joined (all
    /// sorted), and each output term's run is the concatenation of the
    /// segments' runs in segment order. Linear in total postings plus
    /// `terms × segments` for the join.
    ///
    /// Mapped segments are materialized first (the merge needs random
    /// access to whole runs). Fails with a typed error if the combined
    /// postings, positions or pages outgrow the `u32` offset space —
    /// previously those casts wrapped silently.
    pub fn try_merge_segments(
        segments: Vec<InvertedIndex>,
    ) -> Result<InvertedIndex, IndexBuildError> {
        InvertedIndex::try_merge_segments_with_limit(segments, U32_LIMIT)
    }

    /// [`InvertedIndex::try_merge_segments`] with an injectable offset limit
    /// so the guard is testable without allocating 4 GiB of postings.
    pub(crate) fn try_merge_segments_with_limit(
        segments: Vec<InvertedIndex>,
        limit: u64,
    ) -> Result<InvertedIndex, IndexBuildError> {
        if segments.is_empty() {
            return Ok(InvertedIndex::default());
        }
        let segments: Vec<InvertedIndex> = segments
            .into_iter()
            .map(InvertedIndex::into_owned)
            .collect();
        if segments.len() == 1 {
            return Ok(segments.into_iter().next().expect("one segment"));
        }

        // Totals first, in u64, so the overflow check happens before any
        // offset is narrowed to u32.
        let mut total_pages = 0u64;
        let mut total_states = 0u64;
        let mut n_postings = 0u64;
        let mut n_positions = 0u64;
        for seg in &segments {
            total_pages += seg.pages.len() as u64;
            total_states += seg.total_states;
            n_postings += seg.store_owned().docs.len() as u64;
            n_positions += seg.store_owned().positions.len() as u64;
        }
        check_fits("pages", total_pages, limit)?;
        check_fits("postings", n_postings, limit)?;
        check_fits("positions", n_positions, limit)?;

        // Page re-basing offsets, page concat.
        let mut page_offsets = Vec::with_capacity(segments.len());
        let mut next_page = 0u32;
        let mut pages = Vec::with_capacity(total_pages as usize);
        for seg in &segments {
            page_offsets.push(next_page);
            next_page += seg.pages.len() as u32;
            pages.extend(seg.pages.iter().cloned());
        }

        let mut terms: Vec<String> = Vec::new();
        let mut term_offsets: Vec<u32> = Vec::with_capacity(segments[0].dict.len() + 1);
        term_offsets.push(0);
        let mut docs: Vec<DocKey> = Vec::with_capacity(n_postings as usize);
        let mut counts: Vec<u32> = Vec::with_capacity(n_postings as usize);
        let mut pos_offsets: Vec<u32> = Vec::with_capacity(n_postings as usize);
        let mut positions: Vec<u32> = Vec::with_capacity(n_positions as usize);

        // K-way join over the (sorted) segment dictionaries.
        let mut heads = vec![0u32; segments.len()];
        loop {
            // Smallest term among the segment heads.
            let mut min_term: Option<&str> = None;
            for (seg, &head) in segments.iter().zip(heads.iter()) {
                if (head as usize) < seg.dict.len() {
                    let t = seg.dict.term(head);
                    if min_term.is_none_or(|m| t < m) {
                        min_term = Some(t);
                    }
                }
            }
            let Some(term) = min_term else { break };
            terms.push(term.to_string());

            // Concatenate the term's runs in segment order; re-base docs and
            // rewrite arena offsets. Segment order == ascending page offset,
            // so the output run stays doc-sorted.
            let run_start = docs.len();
            for (s, seg) in segments.iter().enumerate() {
                let head = heads[s];
                if (head as usize) >= seg.dict.len() || seg.dict.term(head) != terms.last().unwrap()
                {
                    continue;
                }
                let run = seg.postings_by_id(head);
                debug_assert!(
                    docs.len() == run_start
                        || match (docs.last(), run.docs.first()) {
                            (Some(last), Some(first)) =>
                                *last
                                    < DocKey {
                                        page: first.page + page_offsets[s],
                                        state: first.state,
                                    },
                            _ => true,
                        },
                    "re-based postings must sort strictly after existing ones"
                );
                for i in 0..run.len() {
                    let d = run.doc(i);
                    docs.push(DocKey {
                        page: d.page + page_offsets[s],
                        state: d.state,
                    });
                    counts.push(run.count(i));
                    pos_offsets.push(positions.len() as u32);
                    positions.extend_from_slice(run.positions(i));
                }
                heads[s] = head + 1;
            }
            term_offsets.push(docs.len() as u32);
        }

        Ok(InvertedIndex {
            dict: TermDict::from_sorted(terms),
            store: Store::Owned(OwnedStore {
                term_offsets,
                docs,
                counts,
                pos_offsets,
                positions,
            }),
            pages,
            total_states,
        })
    }

    /// Estimated **resident** size of the index in bytes. Content-derived —
    /// term dictionary (string bytes + hash table), every column and arena
    /// at its *length*, and per-page metadata — so structurally equal
    /// indexes report identical sizes no matter which build path produced
    /// them (capacity padding used to make serial and parallel builds
    /// disagree). A mapped index's columns live in the page cache, not on
    /// the heap: only pages and bookkeeping count; see
    /// [`InvertedIndex::mapped_bytes`].
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        let page_meta: usize = self
            .pages
            .iter()
            .map(|p| {
                p.url.len()
                    + p.ajaxrank.len() * size_of::<f64>()
                    + p.state_lengths.len() * size_of::<u32>()
            })
            .sum();
        let columns = match &self.store {
            Store::Owned(s) => {
                s.term_offsets.len() * size_of::<u32>()
                    + s.docs.len() * size_of::<DocKey>()
                    + s.counts.len() * size_of::<u32>()
                    + s.pos_offsets.len() * size_of::<u32>()
                    + s.positions.len() * size_of::<u32>()
            }
            Store::Mapped(_) => 0,
        };
        self.dict.approx_bytes() + columns + self.pages.len() * size_of::<PageEntry>() + page_meta
    }

    /// Bytes served from the mmap-ed segment (0 for a resident index) —
    /// the counterpart of [`InvertedIndex::approx_bytes`] for capacity
    /// planning: mapped bytes share the page cache and are reclaimable.
    pub fn mapped_bytes(&self) -> usize {
        match &self.store {
            Store::Owned(_) => 0,
            Store::Mapped(m) => m.payload_len(),
        }
    }
}

/// Logical equality across backings: a mapped index equals the owned index
/// it was encoded from.
impl PartialEq for InvertedIndex {
    fn eq(&self, other: &Self) -> bool {
        self.total_states == other.total_states
            && self.pages == other.pages
            && self.dict == other.dict
            && *self.owned_store() == *other.owned_store()
    }
}

/// The v3 JSON shape (kept for `save_index_v3` and the v3 load path): one
/// object with the dictionary and each column as a field.
impl Serialize for InvertedIndex {
    fn serialize(&self) -> Value {
        let store = self.owned_store();
        let mut map = serde::Map::new();
        map.insert("dict".to_string(), self.dict.serialize());
        map.insert("term_offsets".to_string(), store.term_offsets.serialize());
        map.insert("docs".to_string(), store.docs.serialize());
        map.insert("counts".to_string(), store.counts.serialize());
        map.insert("pos_offsets".to_string(), store.pos_offsets.serialize());
        map.insert("positions".to_string(), store.positions.serialize());
        map.insert("pages".to_string(), self.pages.serialize());
        map.insert("total_states".to_string(), self.total_states.serialize());
        Value::Object(map)
    }
}

impl Deserialize for InvertedIndex {
    fn deserialize(value: &Value) -> Result<Self, DeError> {
        Ok(InvertedIndex {
            dict: serde::__field(value, "dict")?,
            store: Store::Owned(OwnedStore {
                term_offsets: serde::__field(value, "term_offsets")?,
                docs: serde::__field(value, "docs")?,
                counts: serde::__field(value, "counts")?,
                pos_offsets: serde::__field(value, "pos_offsets")?,
                positions: serde::__field(value, "positions")?,
            }),
            pages: serde::__field(value, "pages")?,
            total_states: serde::__field(value, "total_states")?,
        })
    }
}

/// Per-term accumulator inside [`IndexBuilder`]: a miniature of the final
/// columns. Docs arrive in increasing order (states are processed in page,
/// then state order), so each accumulator is born sorted.
#[derive(Debug, Default)]
struct TermAcc {
    docs: Vec<DocKey>,
    counts: Vec<u32>,
    positions: Vec<u32>,
}

/// Builds an [`InvertedIndex`] from crawled application models — the
/// "Build New Index" operation of thesis §8.3.1.
///
/// Terms are interned into the builder's dictionary **as they stream out of
/// the tokenizer** — one `String` allocation per *distinct* term, not one
/// per occurrence — and per-state grouping runs over reusable scratch
/// buffers instead of a fresh `HashMap` per state.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    /// term → local id, first-seen order (re-ranked at `build`).
    interner: HashMap<String, u32>,
    /// local id → term.
    terms: Vec<String>,
    accs: Vec<TermAcc>,
    pages: Vec<PageEntry>,
    total_states: u64,
    /// Cap on states indexed per page ("Max. State ID" in the thesis UI):
    /// `None` = all crawled states.
    max_states: Option<usize>,
    // --- reusable scratch (cleared, never shrunk, between states) ---
    token_scratch: String,
    /// Per local id: positions seen in the current state.
    state_positions: Vec<Vec<u32>>,
    /// Local ids with at least one occurrence in the current state.
    touched: Vec<u32>,
}

impl IndexBuilder {
    /// A builder indexing every crawled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts indexing to the first `max_states` states of each page
    /// (`max_states = 1` reproduces the *traditional* index, §7.7).
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = Some(max_states.max(1));
        self
    }

    /// Adds one page model. `pagerank` is the URL's rank from the precrawl
    /// phase (pass `None` for a single-page or unranked corpus).
    pub fn add_model(&mut self, model: &AppModel, pagerank: Option<f64>) {
        // Explicit, not a silent `as u32` wrap: a corpus cannot exceed the
        // doc key's u32 page space.
        let page_idx =
            u32::try_from(self.pages.len()).expect("page count exceeds u32 doc-key space");
        let limit = self
            .max_states
            .unwrap_or(usize::MAX)
            .min(model.state_count());

        // AJAXRank over the *full* transition graph (structure is known even
        // if we only index a prefix of the states).
        let ajaxrank = pagerank_default(&model.state_adjacency());

        let mut entry = PageEntry {
            url: model.url.clone(),
            pagerank: pagerank.unwrap_or(0.0),
            ajaxrank,
            state_lengths: Vec::with_capacity(limit),
        };

        for state in model.states.iter().take(limit) {
            let doc = DocKey {
                page: page_idx,
                state: state.id,
            };
            let mut token_count = 0u32;

            // Stream tokens straight into the interner; group positions per
            // term in the reusable scratch columns.
            let interner = &mut self.interner;
            let terms = &mut self.terms;
            let accs = &mut self.accs;
            let state_positions = &mut self.state_positions;
            let touched = &mut self.touched;
            for_each_token(&state.text, &mut self.token_scratch, |term, position| {
                token_count += 1;
                let id = match interner.get(term) {
                    Some(&id) => id,
                    None => {
                        let id = terms.len() as u32;
                        interner.insert(term.to_string(), id);
                        terms.push(term.to_string());
                        accs.push(TermAcc::default());
                        state_positions.push(Vec::new());
                        id
                    }
                };
                let slot = &mut state_positions[id as usize];
                if slot.is_empty() {
                    touched.push(id);
                }
                slot.push(position);
            });

            entry.state_lengths.push(token_count);
            self.total_states += 1;

            // Flush the state's groups into the per-term accumulators.
            // `touched` order is first-occurrence order, which is irrelevant:
            // each term gains exactly one posting for this doc, and docs
            // arrive in increasing order per term.
            for &id in self.touched.iter() {
                let slot = &mut self.state_positions[id as usize];
                let acc = &mut self.accs[id as usize];
                acc.docs.push(doc);
                acc.counts.push(slot.len() as u32);
                acc.positions.extend_from_slice(slot);
                slot.clear();
            }
            self.touched.clear();
        }
        self.pages.push(entry);
    }

    /// Finalizes the index — panicking wrapper over
    /// [`IndexBuilder::try_build`] for callers that treat overflow as fatal.
    pub fn build(self) -> InvertedIndex {
        self.try_build()
            .expect("index build overflowed the u32 offset space")
    }

    /// Finalizes the index: re-ranks local term ids into sorted dictionary
    /// order and lays the accumulators out as the canonical columns. Linear
    /// in total postings plus `T log T` for the dictionary sort. Fails with
    /// a typed error if the posting or position totals outgrow the `u32`
    /// offset space — previously those casts wrapped silently.
    pub fn try_build(self) -> Result<InvertedIndex, IndexBuildError> {
        self.try_build_with_limit(U32_LIMIT)
    }

    /// [`IndexBuilder::try_build`] with an injectable offset limit so the
    /// guard is testable without allocating 4 GiB of postings.
    pub(crate) fn try_build_with_limit(self, limit: u64) -> Result<InvertedIndex, IndexBuildError> {
        let mut order: Vec<u32> = (0..self.terms.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| self.terms[a as usize].cmp(&self.terms[b as usize]));

        let n_postings: u64 = self.accs.iter().map(|a| a.docs.len() as u64).sum();
        let n_positions: u64 = self.accs.iter().map(|a| a.positions.len() as u64).sum();
        check_fits("postings", n_postings, limit)?;
        check_fits("positions", n_positions, limit)?;
        check_fits("pages", self.pages.len() as u64, limit)?;

        let mut terms = Vec::with_capacity(order.len());
        let mut term_offsets = Vec::with_capacity(order.len() + 1);
        term_offsets.push(0u32);
        let mut docs = Vec::with_capacity(n_postings as usize);
        let mut counts = Vec::with_capacity(n_postings as usize);
        let mut pos_offsets = Vec::with_capacity(n_postings as usize);
        let mut positions = Vec::with_capacity(n_positions as usize);

        for &local in &order {
            let acc = &self.accs[local as usize];
            terms.push(self.terms[local as usize].clone());
            debug_assert!(acc.docs.windows(2).all(|w| w[0] < w[1]));
            let mut local_off = 0usize;
            for (i, &doc) in acc.docs.iter().enumerate() {
                let count = acc.counts[i] as usize;
                docs.push(doc);
                counts.push(acc.counts[i]);
                pos_offsets.push(positions.len() as u32);
                positions.extend_from_slice(&acc.positions[local_off..local_off + count]);
                local_off += count;
            }
            term_offsets.push(docs.len() as u32);
        }

        Ok(InvertedIndex {
            dict: TermDict::from_sorted(terms),
            store: Store::Owned(OwnedStore {
                term_offsets,
                docs,
                counts,
                pos_offsets,
                positions,
            }),
            pages: self.pages,
            total_states: self.total_states,
        })
    }
}

/// Minimum prospective state count for the parallel segment build to pay
/// off. Below this, thread spawn plus the k-way merge pass costs more than
/// the inversion it parallelizes — measured on both synthetic sites (68.3 ms
/// parallel vs 62.2 ms serial on vidshare, 94.7 vs 80.9 on news, both well
/// under this many states), so small corpora take the serial path.
pub const PARALLEL_BUILD_MIN_STATES: usize = 8192;

/// Which build strategy [`build_index_parallel`] will actually run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuildPath {
    /// Single [`IndexBuilder`] over the whole model sequence.
    Serial,
    /// Per-thread segment builds merged with
    /// [`InvertedIndex::merge_segments`].
    Parallel,
}

impl BuildPath {
    pub fn as_str(self) -> &'static str {
        match self {
            BuildPath::Serial => "serial",
            BuildPath::Parallel => "parallel",
        }
    }
}

/// The path [`build_index_parallel`] will take for this input: parallel only
/// when there is more than one chunk to hand out **and** the prospective
/// state count (post state-cap) clears [`PARALLEL_BUILD_MIN_STATES`].
pub fn planned_build_path(
    models: &[(&AppModel, Option<f64>)],
    max_states: Option<usize>,
    threads: usize,
) -> BuildPath {
    if threads.max(1).min(models.len().max(1)) <= 1 {
        return BuildPath::Serial;
    }
    let cap = max_states.unwrap_or(usize::MAX);
    let prospective: usize = models.iter().map(|(m, _)| m.states.len().min(cap)).sum();
    if prospective < PARALLEL_BUILD_MIN_STATES {
        BuildPath::Serial
    } else {
        BuildPath::Parallel
    }
}

/// Builds an index over `models` with a **parallel segment build**: the
/// model list is split into `threads` contiguous chunks, each chunk is
/// inverted independently on its own thread ([`IndexBuilder`] per segment),
/// and the sorted segments are k-way merged ([`InvertedIndex::merge_segments`])
/// into one canonical index.
///
/// Small inputs ([`planned_build_path`] → [`BuildPath::Serial`]) fall back
/// to a single sequential builder: under [`PARALLEL_BUILD_MIN_STATES`]
/// prospective states the segment-merge overhead exceeds the parallel win.
///
/// Deterministic by construction: chunking depends only on `models.len()`
/// and `threads`, the merge concatenates runs in chunk order, and the serial
/// fallback produces the same canonical layout — the result is
/// `PartialEq`-identical to a sequential build over the same model sequence
/// regardless of which path runs.
pub fn build_index_parallel(
    models: &[(&AppModel, Option<f64>)],
    max_states: Option<usize>,
    threads: usize,
) -> InvertedIndex {
    try_build_index_parallel(models, max_states, threads)
        .expect("index build overflowed the u32 offset space")
}

/// [`build_index_parallel`] returning the typed overflow error instead of
/// panicking.
pub fn try_build_index_parallel(
    models: &[(&AppModel, Option<f64>)],
    max_states: Option<usize>,
    threads: usize,
) -> Result<InvertedIndex, IndexBuildError> {
    let path = planned_build_path(models, max_states, threads);
    try_build_index_with_path(models, max_states, threads, path)
}

/// [`build_index_parallel`] with the path decision made by the caller —
/// tests force [`BuildPath::Parallel`] on tiny corpora to keep the
/// segment-merge machinery covered.
pub fn build_index_with_path(
    models: &[(&AppModel, Option<f64>)],
    max_states: Option<usize>,
    threads: usize,
    path: BuildPath,
) -> InvertedIndex {
    try_build_index_with_path(models, max_states, threads, path)
        .expect("index build overflowed the u32 offset space")
}

fn try_build_index_with_path(
    models: &[(&AppModel, Option<f64>)],
    max_states: Option<usize>,
    threads: usize,
    path: BuildPath,
) -> Result<InvertedIndex, IndexBuildError> {
    let new_builder = || match max_states {
        Some(m) => IndexBuilder::new().with_max_states(m),
        None => IndexBuilder::new(),
    };
    let threads = threads.max(1).min(models.len().max(1));
    if threads <= 1 || path == BuildPath::Serial {
        let mut b = new_builder();
        for (model, pr) in models {
            b.add_model(model, *pr);
        }
        return b.try_build();
    }

    let chunk = models.len().div_ceil(threads);
    let segments: Result<Vec<InvertedIndex>, IndexBuildError> = std::thread::scope(|scope| {
        let handles: Vec<_> = models
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut b = new_builder();
                    for (model, pr) in slice {
                        b.add_model(model, *pr);
                    }
                    b.try_build()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("segment build panicked"))
            .collect()
    });
    InvertedIndex::try_merge_segments(segments?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_crawl::model::Transition;
    use ajax_dom::EventType;

    fn toy_model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        for i in 1..states.len() {
            m.add_transition(Transition {
                from: StateId(i as u32 - 1),
                to: StateId(i as u32),
                source: "span#next".into(),
                event: EventType::Click,
                action: "next()".into(),
                targets: Vec::new(),
            });
        }
        m
    }

    fn build(models: &[AppModel]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for m in models {
            b.add_model(m, Some(1.0 / models.len() as f64));
        }
        b.build()
    }

    #[test]
    fn postings_carry_state_granularity() {
        let idx = build(&[toy_model(
            "http://x/watch?v=1",
            &["morcheeba video", "morcheeba singer daisy"],
        )]);
        let postings = idx.postings("morcheeba");
        assert_eq!(postings.len(), 2, "term in both states");
        assert_eq!(postings.doc(0).state, StateId(0));
        assert_eq!(postings.doc(1).state, StateId(1));
        assert_eq!(idx.postings("singer").len(), 1);
        assert_eq!(idx.postings("singer").doc(0).state, StateId(1));
    }

    #[test]
    fn tf_normalized_by_state_length() {
        let idx = build(&[toy_model("u", &["wow wow wow bad"])]);
        let posting = idx.postings("wow").get(0);
        assert_eq!(posting.count, 3);
        assert!((idx.tf(&posting) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idf_definition() {
        let idx = build(&[toy_model("u", &["a b", "a c", "a d", "b d"])]);
        assert_eq!(idx.total_states, 4);
        assert!((idx.idf("a") - (4.0f64 / 3.0).ln()).abs() < 1e-9);
        assert!((idx.idf("c") - 4.0f64.ln()).abs() < 1e-9);
        assert_eq!(idx.idf("zzz"), 0.0);
    }

    #[test]
    fn max_states_restricts_to_traditional_view() {
        let model = toy_model("u", &["first page", "second page", "third page"]);
        let mut b = IndexBuilder::new().with_max_states(1);
        b.add_model(&model, None);
        let idx = b.build();
        assert_eq!(idx.total_states, 1);
        assert!(idx.postings("second").is_empty());
        assert_eq!(idx.postings("first").len(), 1);
    }

    #[test]
    fn positions_recorded_in_order() {
        let idx = build(&[toy_model("u", &["alpha beta alpha"])]);
        let postings = idx.postings("alpha");
        assert_eq!(postings.positions(0), &[0, 2]);
        let mut seen = Vec::new();
        postings.for_each_position(0, |p| seen.push(p));
        assert_eq!(seen, vec![0, 2]);
    }

    #[test]
    fn dictionary_ids_are_sorted_ranks() {
        let idx = build(&[toy_model("u", &["zebra alpha kiwi"])]);
        assert_eq!(idx.term_count(), 3);
        assert_eq!(idx.dict().term(0), "alpha");
        assert_eq!(idx.dict().term(2), "zebra");
        assert_eq!(idx.term_id("kiwi"), Some(1));
        assert_eq!(idx.term_id("absent"), None);
    }

    #[test]
    fn ajaxrank_favours_initial_state() {
        let model = toy_model("u", &["one", "two", "three", "four"]);
        let idx = build(&[model]);
        let (_, a0) = idx.ranks_of(DocKey {
            page: 0,
            state: StateId(0),
        });
        let (_, a3) = idx.ranks_of(DocKey {
            page: 0,
            state: StateId(3),
        });
        // A forward chain pushes mass to the end; AJAXRank only needs to be a
        // well-defined distribution here — check it is one.
        let page = &idx.pages[0];
        let sum: f64 = page.ajaxrank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(a0 > 0.0 && a3 > 0.0);
    }

    #[test]
    fn multi_page_postings_sorted() {
        let idx = build(&[
            toy_model("http://x/1", &["shared word"]),
            toy_model("http://x/2", &["shared again", "shared deeper"]),
        ]);
        let postings = idx.postings("shared");
        assert_eq!(postings.len(), 3);
        assert!(postings.docs().windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(idx.url_of(postings.doc(2)), "http://x/2");
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.term_count(), 0);
        assert_eq!(idx.df("x"), 0);
        assert_eq!(idx.idf("x"), 0.0);
        assert_eq!(idx, InvertedIndex::default());
    }

    #[test]
    fn approx_bytes_counts_all_columns() {
        let idx = build(&[toy_model("http://x/1", &["alpha beta alpha gamma"])]);
        let b = idx.approx_bytes();
        // Lower bound: position arena (4 entries × 4B) + doc column
        // (3 postings × 8B) + dictionary strings ("alpha beta gamma").
        assert!(b > 4 * 4 + 3 * 8 + 14, "approx_bytes = {b}");
        assert!(
            idx.approx_bytes() > IndexBuilder::new().build().approx_bytes(),
            "non-empty index must report more bytes than empty"
        );
    }

    #[test]
    fn approx_bytes_identical_across_build_paths() {
        // Structurally equal indexes must report identical sizes: capacity
        // padding differs between serial and parallel builds, content does
        // not.
        let models: Vec<AppModel> = (0..9)
            .map(|i| toy_model(&format!("http://x/{i}"), &["alpha beta", "gamma delta"]))
            .collect();
        let refs: Vec<(&AppModel, Option<f64>)> = models.iter().map(|m| (m, Some(0.1))).collect();
        let serial = build_index_parallel(&refs, None, 1);
        let parallel = build_index_with_path(&refs, None, 4, BuildPath::Parallel);
        assert_eq!(serial, parallel);
        assert_eq!(serial.approx_bytes(), parallel.approx_bytes());
    }

    #[test]
    fn build_overflow_is_typed_error() {
        let model = toy_model("u", &["alpha beta gamma delta", "alpha again"]);
        let mut b = IndexBuilder::new();
        b.add_model(&model, None);
        // 6 positions total; a limit of 4 must trip the positions guard.
        let err = b.try_build_with_limit(4).unwrap_err();
        match err {
            IndexBuildError::OffsetOverflow { column, len, max } => {
                assert_eq!(max, 4);
                assert!(len > 4);
                assert!(column == "postings" || column == "positions", "{column}");
            }
        }
        assert!(err.to_string().contains("u32 offset space"));
    }

    #[test]
    fn merge_overflow_is_typed_error() {
        let a = build(&[toy_model("http://a", &["one two three"])]);
        let b = build(&[toy_model("http://b", &["four five six"])]);
        let err = InvertedIndex::try_merge_segments_with_limit(vec![a.clone(), b.clone()], 3)
            .unwrap_err();
        assert!(matches!(err, IndexBuildError::OffsetOverflow { .. }));
        // A generous limit merges fine.
        assert!(InvertedIndex::try_merge_segments_with_limit(vec![a, b], 1 << 20).is_ok());
    }

    #[test]
    fn parallel_build_equals_sequential() {
        let models: Vec<AppModel> = (0..13)
            .map(|i| {
                toy_model(
                    &format!("http://x/{i}"),
                    &[
                        &format!("shared word{} alpha", i % 3) as &str,
                        &format!("deeper state {i}") as &str,
                    ],
                )
            })
            .collect();
        let refs: Vec<(&AppModel, Option<f64>)> =
            models.iter().map(|m| (m, Some(1.0 / 13.0))).collect();
        let sequential = build_index_parallel(&refs, None, 1);
        for threads in [2, 3, 4, 13, 64] {
            // Force the parallel path: this corpus is far below the
            // min-states threshold, but the segment merge must stay
            // equivalence-covered.
            let parallel = build_index_with_path(&refs, None, threads, BuildPath::Parallel);
            assert_eq!(sequential, parallel, "threads={threads}");
            // The public entry point picks serial here and must agree too.
            assert_eq!(sequential, build_index_parallel(&refs, None, threads));
        }
    }

    #[test]
    fn small_corpora_plan_serial_builds() {
        let models: Vec<AppModel> = (0..4)
            .map(|i| toy_model(&format!("http://x/{i}"), &["a b", "c d"]))
            .collect();
        let refs: Vec<(&AppModel, Option<f64>)> = models.iter().map(|m| (m, None)).collect();
        assert_eq!(planned_build_path(&refs, None, 4), BuildPath::Serial);
        assert_eq!(planned_build_path(&refs, None, 1), BuildPath::Serial);
        // A single model can never be chunked, whatever its size.
        assert_eq!(planned_build_path(&refs[..1], None, 8), BuildPath::Serial);
    }

    #[test]
    fn large_corpora_plan_parallel_builds() {
        let texts: Vec<String> = (0..PARALLEL_BUILD_MIN_STATES / 2)
            .map(|i| format!("state text {i}"))
            .collect();
        let text_refs: Vec<&str> = texts.iter().map(String::as_str).collect();
        let big = [
            toy_model("http://x/0", &text_refs),
            toy_model("http://x/1", &text_refs),
        ];
        let refs: Vec<(&AppModel, Option<f64>)> = big.iter().map(|m| (m, None)).collect();
        assert_eq!(planned_build_path(&refs, None, 4), BuildPath::Parallel);
        // The state cap shrinks the prospective count back under the
        // threshold: the plan must honour post-cap sizes, not raw ones.
        assert_eq!(planned_build_path(&refs, Some(16), 4), BuildPath::Serial);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use ajax_crawl::model::AppModel;

    fn model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        m
    }

    fn build(models: &[AppModel]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for m in models {
            b.add_model(m, Some(0.5));
        }
        b.build()
    }

    #[test]
    fn merged_equals_jointly_built() {
        let m1 = model("http://a", &["wow video", "more wow"]);
        let m2 = model("http://b", &["dance wow"]);
        let m3 = model("http://c", &["silence here"]);

        let mut merged = build(std::slice::from_ref(&m1));
        merged.merge(build(&[m2.clone(), m3.clone()]));
        let joint = build(&[m1, m2, m3]);

        // Canonical layout ⇒ structural equality, not just logical.
        assert_eq!(merged, joint);
    }

    #[test]
    fn merge_into_empty() {
        let mut empty = IndexBuilder::new().build();
        let other = build(&[model("http://a", &["x y"])]);
        empty.merge(other.clone());
        assert_eq!(empty, other);
    }

    #[test]
    fn merge_segments_many() {
        let models: Vec<AppModel> = (0..7)
            .map(|i| {
                model(
                    &format!("http://m/{i}"),
                    &[&format!("common word{i}") as &str],
                )
            })
            .collect();
        let joint = build(&models);
        let segments: Vec<InvertedIndex> = models.chunks(2).map(build).collect();
        let merged = InvertedIndex::merge_segments(segments);
        assert_eq!(merged, joint);
    }
}
