//! The enhanced inverted file (thesis §5.2, Table 5.1).
//!
//! Every **state** of every crawled page is an indexable document; a posting
//! therefore carries `(page, state, tf, positions)`. The index also stores
//! what ranking needs: per-page PageRank (from the precrawl phase), per-state
//! AJAXRank (PageRank over the page's transition graph) and per-state token
//! counts for the thesis' normalized term frequency (formula 5.1).

use crate::tokenize::tokenize;
use ajax_crawl::model::{AppModel, StateId};
use ajax_crawl::pagerank::pagerank_default;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Identifies one indexed document: a `(page, state)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocKey {
    /// Index into [`InvertedIndex::pages`].
    pub page: u32,
    pub state: StateId,
}

/// One posting: where a term occurs and how often.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Posting {
    pub doc: DocKey,
    /// Raw occurrence count of the term in the state.
    pub count: u32,
    /// Token positions of the occurrences (for term proximity).
    pub positions: Vec<u32>,
}

/// Per-page metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageEntry {
    pub url: String,
    /// PageRank of the URL (uniform if no precrawl data was supplied).
    pub pagerank: f64,
    /// AJAXRank per state (indexed by state id).
    pub ajaxrank: Vec<f64>,
    /// Token count per state (the denominator of formula 5.1).
    pub state_lengths: Vec<u32>,
}

/// The inverted file.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct InvertedIndex {
    /// Term → postings sorted by `(page, state)`.
    postings: BTreeMap<String, Vec<Posting>>,
    /// Indexed pages.
    pub pages: Vec<PageEntry>,
    /// Total number of indexed states (the `|D|` of formula 5.2).
    pub total_states: u64,
}

impl InvertedIndex {
    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.postings.len()
    }

    /// The posting list of `term` (empty slice if absent).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.postings.get(term).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Document frequency: number of states containing `term`.
    pub fn df(&self, term: &str) -> u64 {
        self.postings(term).len() as u64
    }

    /// Inverse document frequency (formula 5.2): `log(|D| / df)`.
    /// Returns 0 for unseen terms.
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.df(term);
        if df == 0 || self.total_states == 0 {
            0.0
        } else {
            (self.total_states as f64 / df as f64).ln()
        }
    }

    /// Normalized term frequency of a posting in its state (formula 5.1).
    pub fn tf(&self, posting: &Posting) -> f64 {
        let page = &self.pages[posting.doc.page as usize];
        let len = page.state_lengths[posting.doc.state.index()].max(1);
        f64::from(posting.count) / f64::from(len)
    }

    /// The URL of a document.
    pub fn url_of(&self, doc: DocKey) -> &str {
        &self.pages[doc.page as usize].url
    }

    /// PageRank + AJAXRank of a document.
    pub fn ranks_of(&self, doc: DocKey) -> (f64, f64) {
        let page = &self.pages[doc.page as usize];
        let ajax = page.ajaxrank.get(doc.state.index()).copied().unwrap_or(0.0);
        (page.pagerank, ajax)
    }

    /// Merges `other` into `self`: pages are appended (their indices are
    /// re-based), posting lists are concatenated. This is the
    /// incremental-indexing path (the thesis builds its index incrementally
    /// from application models and merges per-partition results, §6.4).
    ///
    /// Because every incoming posting's page index is re-based past
    /// `self.pages`, re-based doc keys are strictly greater than everything
    /// already in the list — a plain O(n) append keeps each list sorted,
    /// no re-sort needed.
    pub fn merge(&mut self, other: InvertedIndex) {
        let offset = self.pages.len() as u32;
        self.pages.extend(other.pages);
        self.total_states += other.total_states;
        for (term, postings) in other.postings {
            let list = self.postings.entry(term).or_default();
            debug_assert!(
                match (list.last(), postings.first()) {
                    (Some(last), Some(first)) => {
                        last.doc
                            < DocKey {
                                page: first.doc.page + offset,
                                state: first.doc.state,
                            }
                    }
                    _ => true,
                },
                "re-based postings must sort strictly after existing ones"
            );
            list.extend(postings.into_iter().map(|mut p| {
                p.doc.page += offset;
                p
            }));
        }
    }

    /// Estimated heap size of the index in bytes (diagnostics).
    pub fn approx_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|(term, postings)| {
                term.len()
                    + postings.len() * std::mem::size_of::<Posting>()
                    + postings
                        .iter()
                        .map(|p| p.positions.len() * 4)
                        .sum::<usize>()
            })
            .sum()
    }
}

/// Builds an [`InvertedIndex`] from crawled application models — the
/// "Build New Index" operation of thesis §8.3.1.
#[derive(Debug, Default)]
pub struct IndexBuilder {
    index: InvertedIndex,
    /// Cap on states indexed per page ("Max. State ID" in the thesis UI):
    /// `None` = all crawled states.
    max_states: Option<usize>,
}

impl IndexBuilder {
    /// A builder indexing every crawled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Restricts indexing to the first `max_states` states of each page
    /// (`max_states = 1` reproduces the *traditional* index, §7.7).
    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = Some(max_states.max(1));
        self
    }

    /// Adds one page model. `pagerank` is the URL's rank from the precrawl
    /// phase (pass `None` for a single-page or unranked corpus).
    pub fn add_model(&mut self, model: &AppModel, pagerank: Option<f64>) {
        let page_idx = self.index.pages.len() as u32;
        let limit = self
            .max_states
            .unwrap_or(usize::MAX)
            .min(model.state_count());

        // AJAXRank over the *full* transition graph (structure is known even
        // if we only index a prefix of the states).
        let ajaxrank = pagerank_default(&model.state_adjacency());

        let mut entry = PageEntry {
            url: model.url.clone(),
            pagerank: pagerank.unwrap_or(0.0),
            ajaxrank,
            state_lengths: Vec::with_capacity(limit),
        };

        for state in model.states.iter().take(limit) {
            let tokens = tokenize(&state.text);
            entry.state_lengths.push(tokens.len() as u32);
            self.index.total_states += 1;

            // Group positions per term.
            let mut grouped: HashMap<&str, Vec<u32>> = HashMap::new();
            for token in &tokens {
                grouped
                    .entry(token.term.as_str())
                    .or_default()
                    .push(token.position);
            }
            for (term, positions) in grouped {
                let posting = Posting {
                    doc: DocKey {
                        page: page_idx,
                        state: state.id,
                    },
                    count: positions.len() as u32,
                    positions,
                };
                self.index
                    .postings
                    .entry(term.to_string())
                    .or_default()
                    .push(posting);
            }
        }
        self.index.pages.push(entry);
    }

    /// Finalizes the index (sorts posting lists by `(page, state)`).
    pub fn build(mut self) -> InvertedIndex {
        for postings in self.index.postings.values_mut() {
            postings.sort_by_key(|p| p.doc);
        }
        self.index
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_crawl::model::Transition;
    use ajax_dom::EventType;

    fn toy_model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        for i in 1..states.len() {
            m.add_transition(Transition {
                from: StateId(i as u32 - 1),
                to: StateId(i as u32),
                source: "span#next".into(),
                event: EventType::Click,
                action: "next()".into(),
                targets: Vec::new(),
            });
        }
        m
    }

    fn build(models: &[AppModel]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for m in models {
            b.add_model(m, Some(1.0 / models.len() as f64));
        }
        b.build()
    }

    #[test]
    fn postings_carry_state_granularity() {
        let idx = build(&[toy_model(
            "http://x/watch?v=1",
            &["morcheeba video", "morcheeba singer daisy"],
        )]);
        let postings = idx.postings("morcheeba");
        assert_eq!(postings.len(), 2, "term in both states");
        assert_eq!(postings[0].doc.state, StateId(0));
        assert_eq!(postings[1].doc.state, StateId(1));
        assert_eq!(idx.postings("singer").len(), 1);
        assert_eq!(idx.postings("singer")[0].doc.state, StateId(1));
    }

    #[test]
    fn tf_normalized_by_state_length() {
        let idx = build(&[toy_model("u", &["wow wow wow bad"])]);
        let posting = &idx.postings("wow")[0];
        assert_eq!(posting.count, 3);
        assert!((idx.tf(posting) - 0.75).abs() < 1e-9);
    }

    #[test]
    fn idf_definition() {
        let idx = build(&[toy_model("u", &["a b", "a c", "a d", "b d"])]);
        assert_eq!(idx.total_states, 4);
        assert!((idx.idf("a") - (4.0f64 / 3.0).ln()).abs() < 1e-9);
        assert!((idx.idf("c") - 4.0f64.ln()).abs() < 1e-9);
        assert_eq!(idx.idf("zzz"), 0.0);
    }

    #[test]
    fn max_states_restricts_to_traditional_view() {
        let model = toy_model("u", &["first page", "second page", "third page"]);
        let mut b = IndexBuilder::new().with_max_states(1);
        b.add_model(&model, None);
        let idx = b.build();
        assert_eq!(idx.total_states, 1);
        assert!(idx.postings("second").is_empty());
        assert_eq!(idx.postings("first").len(), 1);
    }

    #[test]
    fn positions_recorded_in_order() {
        let idx = build(&[toy_model("u", &["alpha beta alpha"])]);
        let posting = &idx.postings("alpha")[0];
        assert_eq!(posting.positions, vec![0, 2]);
    }

    #[test]
    fn ajaxrank_favours_initial_state() {
        let model = toy_model("u", &["one", "two", "three", "four"]);
        let idx = build(&[model]);
        let (_, a0) = idx.ranks_of(DocKey {
            page: 0,
            state: StateId(0),
        });
        let (_, a3) = idx.ranks_of(DocKey {
            page: 0,
            state: StateId(3),
        });
        // A forward chain pushes mass to the end; AJAXRank only needs to be a
        // well-defined distribution here — check it is one.
        let page = &idx.pages[0];
        let sum: f64 = page.ajaxrank.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(a0 > 0.0 && a3 > 0.0);
    }

    #[test]
    fn multi_page_postings_sorted() {
        let idx = build(&[
            toy_model("http://x/1", &["shared word"]),
            toy_model("http://x/2", &["shared again", "shared deeper"]),
        ]);
        let postings = idx.postings("shared");
        assert_eq!(postings.len(), 3);
        assert!(postings.windows(2).all(|w| w[0].doc <= w[1].doc));
        assert_eq!(idx.url_of(postings[2].doc), "http://x/2");
    }

    #[test]
    fn empty_index() {
        let idx = IndexBuilder::new().build();
        assert_eq!(idx.term_count(), 0);
        assert_eq!(idx.df("x"), 0);
        assert_eq!(idx.idf("x"), 0.0);
    }
}

#[cfg(test)]
mod merge_tests {
    use super::*;
    use ajax_crawl::model::AppModel;

    fn model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        m
    }

    fn build(models: &[AppModel]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for m in models {
            b.add_model(m, Some(0.5));
        }
        b.build()
    }

    #[test]
    fn merged_equals_jointly_built() {
        let m1 = model("http://a", &["wow video", "more wow"]);
        let m2 = model("http://b", &["dance wow"]);
        let m3 = model("http://c", &["silence here"]);

        let mut merged = build(std::slice::from_ref(&m1));
        merged.merge(build(&[m2.clone(), m3.clone()]));
        let joint = build(&[m1, m2, m3]);

        assert_eq!(merged.total_states, joint.total_states);
        assert_eq!(merged.pages.len(), joint.pages.len());
        for term in ["wow", "dance", "video", "silence"] {
            let a: Vec<_> = merged
                .postings(term)
                .iter()
                .map(|p| (merged.url_of(p.doc).to_string(), p.doc.state, p.count))
                .collect();
            let b: Vec<_> = joint
                .postings(term)
                .iter()
                .map(|p| (joint.url_of(p.doc).to_string(), p.doc.state, p.count))
                .collect();
            assert_eq!(a, b, "term {term}");
        }
        assert!((merged.idf("wow") - joint.idf("wow")).abs() < 1e-12);
    }

    #[test]
    fn merge_into_empty() {
        let mut empty = IndexBuilder::new().build();
        let other = build(&[model("http://a", &["x y"])]);
        empty.merge(other.clone());
        assert_eq!(empty, other);
    }
}
