//! Query processing (thesis §5.3): boolean keyword queries and conjunctions
//! over the state-granular inverted file, ranked by formula 5.3.
//!
//! Evaluation runs on the allocation-free kernel (`kernel.rs`): galloping
//! intersection over the columnar posting runs, scoring over raw `DocKey`s,
//! and URL strings materialized only for the results that are actually
//! returned — for [`search_top_k`] that is at most `k` strings however many
//! candidates matched.

use crate::invert::{DocKey, InvertedIndex, PostingList, TermScratch};
use crate::kernel::{self, ScoreScratch, TopK};
use crate::probe;
use crate::tokenize::query_terms;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A parsed query: a conjunction of terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    pub terms: Vec<String>,
}

impl Query {
    /// Parses a query string (`"Morcheeba Enjoy the Ride"` ⇒ 4 terms).
    pub fn parse(text: &str) -> Self {
        Self {
            terms: query_terms(text),
        }
    }

    /// True when the query has no terms (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The weights `w1..w4` of ranking formula 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankWeights {
    /// `w1` — PageRank of the URL.
    pub pagerank: f64,
    /// `w2` — AJAXRank of the state within its page.
    pub ajaxrank: f64,
    /// `w3` — Σ tf·idf over the query terms.
    pub tfidf: f64,
    /// `w4` — term proximity.
    pub proximity: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        Self {
            pagerank: 0.15,
            ajaxrank: 0.15,
            tfidf: 0.55,
            proximity: 0.15,
        }
    }
}

/// One ranked search result: a `(URL, state)` pair with its score — exactly
/// the 3-tuple `(u, s, r)` of §6.5.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    pub url: String,
    pub doc: DocKey,
    pub score: f64,
}

/// Materializes a scored doc into an owned result (the only place the
/// sequential paths mint URL strings).
fn materialize(index: &InvertedIndex, doc: DocKey, score: f64) -> SearchResult {
    probe::note_url_materialized();
    SearchResult {
        url: index.url_of(doc).to_string(),
        doc,
        score,
    }
}

/// Rank order on raw `(doc, score)` pairs: score descending (by
/// [`f64::total_cmp`] — a *total* order, which the top-k heap contract
/// requires; `partial_cmp(..).unwrap_or(Equal)` made NaN compare equal to
/// everything, a non-transitive relation that let top-k and full-sort
/// disagree), then URL (compared in place — no allocation), then state. The
/// same total order [`sort_results`] applies to materialized results, so
/// selecting with one and sorting with the other is consistent.
fn rank_cmp(index: &InvertedIndex, a: &(DocKey, f64), b: &(DocKey, f64)) -> Ordering {
    b.1.total_cmp(&a.1)
        .then_with(|| index.url_of(a.0).cmp(index.url_of(b.0)))
        .then_with(|| a.0.state.cmp(&b.0.state))
}

/// Evaluates `query` against `index`: conjunction semantics (every term must
/// occur in the state), results ranked by formula 5.3, descending.
pub fn search(index: &InvertedIndex, query: &Query, weights: &RankWeights) -> Vec<SearchResult> {
    search_with_scratch(index, query, weights, &mut ScoreScratch::new())
}

/// [`search`] with a caller-owned scratch (reused across queries by serving
/// threads).
pub fn search_with_scratch(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
    scratch: &mut ScoreScratch,
) -> Vec<SearchResult> {
    let mut scored: Vec<(DocKey, f64)> = Vec::new();
    score_matches(index, query, weights, scratch, |doc, score| {
        scored.push((doc, score));
    });
    scored.sort_by(|a, b| rank_cmp(index, a, b));
    scored
        .into_iter()
        .map(|(doc, score)| materialize(index, doc, score))
        .collect()
}

/// Evaluates `query` and returns only the `k` best results — the top-k
/// path (cf. the thesis' pointer to threshold-algorithm style optimized
/// ranking, ch. 9). Scoring work is identical to [`search`], but candidates
/// stream through a bounded heap of `(doc, score)` pairs: the full result
/// set is never materialized and at most `k` URL strings are allocated.
pub fn search_top_k(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
    k: usize,
) -> Vec<SearchResult> {
    search_top_k_with_scratch(index, query, weights, k, &mut ScoreScratch::new())
}

/// [`search_top_k`] with a caller-owned scratch.
pub fn search_top_k_with_scratch(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
    k: usize,
    scratch: &mut ScoreScratch,
) -> Vec<SearchResult> {
    if k == 0 {
        return Vec::new();
    }
    let cmp = |a: &(DocKey, f64), b: &(DocKey, f64)| rank_cmp(index, a, b);
    let mut heap = TopK::new(k);
    score_matches(index, query, weights, scratch, |doc, score| {
        heap.offer((doc, score), &cmp);
    });
    heap.into_sorted(&cmp)
        .into_iter()
        .map(|(doc, score)| materialize(index, doc, score))
        .collect()
}

/// The scoring pass shared by the sequential paths: intersects the posting
/// runs and hands each matching doc's formula-5.3 score to `sink`, with the
/// exact arithmetic shape of the pre-columnar implementation (term-order
/// tf·idf sum starting from 0.0; `w1·pr + w2·ar + w3·tfidf + w4·prox`
/// evaluated left to right) so scores stay bit-identical.
fn score_matches(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
    scratch: &mut ScoreScratch,
    mut sink: impl FnMut(DocKey, f64),
) {
    if query.is_empty() {
        return;
    }
    let ScoreScratch {
        cursors,
        idf,
        events,
        term_counts,
        term_bufs,
    } = scratch;
    if term_bufs.len() < query.terms.len() {
        term_bufs.resize_with(query.terms.len(), TermScratch::default);
    }
    let lists: Vec<PostingList<'_>> = query
        .terms
        .iter()
        .zip(term_bufs.iter_mut())
        .map(|(t, buf)| index.postings_in(t, buf))
        .collect();
    idf.clear();
    idf.extend(lists.iter().map(|l| index.idf_from_df(l.len() as u64)));
    kernel::for_each_match(&lists, cursors, |doc, rows| {
        let (pagerank, ajaxrank) = index.ranks_of(doc);
        let mut tfidf = 0.0f64;
        for (t, list) in lists.iter().enumerate() {
            tfidf += index.tf_parts(doc, list.count(rows[t])) * idf[t];
        }
        let proximity = kernel::proximity_of_rows(&lists, rows, events, term_counts);
        let score = weights.pagerank * pagerank
            + weights.ajaxrank * ajaxrank
            + weights.tfidf * tfidf
            + weights.proximity * proximity;
        sink(doc, score);
    });
}

/// Intersects the query's posting runs and returns the matching docs in
/// ascending order — the posting-list merge of §5.3.2 without scoring
/// (diagnostics and tests).
pub fn conjunction_docs(index: &InvertedIndex, terms: &[String]) -> Vec<DocKey> {
    let mut bufs: Vec<TermScratch> = Vec::new();
    bufs.resize_with(terms.len(), TermScratch::default);
    let lists: Vec<PostingList<'_>> = terms
        .iter()
        .zip(bufs.iter_mut())
        .map(|(t, buf)| index.postings_in(t, buf))
        .collect();
    let mut cursors = Vec::new();
    let mut out = Vec::new();
    kernel::for_each_match(&lists, &mut cursors, |doc, _| out.push(doc));
    out
}

/// Sorts materialized results by descending score with a deterministic
/// tiebreak (URL, then state) — the same total order the kernel paths use.
pub fn sort_results(results: &mut [SearchResult]) {
    results.sort_by(compare_results);
}

pub(crate) fn compare_results(a: &SearchResult, b: &SearchResult) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.url.cmp(&b.url))
        .then_with(|| a.doc.state.cmp(&b.doc.state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use ajax_crawl::model::AppModel;

    fn index_of(states_per_page: &[(&str, &[&str])]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for (url, states) in states_per_page {
            let mut m = AppModel::new(*url);
            for (i, text) in states.iter().enumerate() {
                m.add_state(i as u64 + 1, (*text).to_string(), None);
            }
            b.add_model(&m, Some(0.5));
        }
        b.build()
    }

    /// The thesis' running example (Tables 5.1/5.2, Fig 5.2).
    fn morcheeba_index() -> InvertedIndex {
        index_of(&[
            (
                "http://www.youtube.com/watch?v=w16JlLSySWQ",
                &[
                    "morcheeba enjoy the ride mysterious video",
                    "morcheeba the new singer sounds great",
                ],
            ),
            (
                "http://www.youtube.com/watch?v=Iv5JXxME0js",
                &["morcheeba morcheeba live in concert"],
            ),
        ])
    }

    #[test]
    fn single_keyword_returns_states() {
        let idx = morcheeba_index();
        let results = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(results.len(), 3, "three states contain 'morcheeba'");
    }

    #[test]
    fn double_occurrence_ranks_higher() {
        // Table 5.2: the state where the keyword appears twice ranks first
        // (tf dominates with default weights on equal-length-ish states).
        let idx = morcheeba_index();
        let results = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(
            results[0].url, "http://www.youtube.com/watch?v=Iv5JXxME0js",
            "state with two occurrences must rank first: {results:#?}"
        );
    }

    #[test]
    fn conjunction_requires_same_state() {
        // Q3 of the thesis: "morcheeba singer" must return exactly
        // (URL1, s2) — Fig 5.2.
        let idx = morcheeba_index();
        let results = search(
            &idx,
            &Query::parse("morcheeba singer"),
            &RankWeights::default(),
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].doc.state.0, 1);
        assert!(results[0].url.ends_with("w16JlLSySWQ"));
    }

    #[test]
    fn conjunction_with_unseen_term_is_empty() {
        let idx = morcheeba_index();
        assert!(search(
            &idx,
            &Query::parse("morcheeba zebra"),
            &RankWeights::default()
        )
        .is_empty());
        assert!(search(&idx, &Query::parse(""), &RankWeights::default()).is_empty());
    }

    #[test]
    fn conjunction_equals_naive_intersection() {
        let idx = index_of(&[("u1", &["a b c", "a c", "b c"]), ("u2", &["c a b a", "b"])]);
        let merged_docs = conjunction_docs(&idx, &["a".into(), "b".into()]);
        // Naive: docs containing a ∩ docs containing b.
        let a_docs: std::collections::BTreeSet<DocKey> =
            idx.postings("a").iter().map(|p| p.doc).collect();
        let b_docs: std::collections::BTreeSet<DocKey> =
            idx.postings("b").iter().map(|p| p.doc).collect();
        let naive: Vec<DocKey> = a_docs.intersection(&b_docs).copied().collect();
        assert_eq!(merged_docs, naive);
    }

    #[test]
    fn proximity_rewards_adjacency() {
        let idx = index_of(&[(
            "u",
            &[
                "enjoy the ride is here",                    // adjacent, in order
                "enjoy something long the filler word ride", // spread
            ],
        )]);
        let q = Query::parse("enjoy ride");
        let results = search(
            &idx,
            &q,
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].doc.state.0, 0, "adjacent phrase wins");
        assert!(results[0].score > results[1].score);
        assert!(
            (results[0].score - 2.0 / 3.0).abs() < 1e-9,
            "window 'enjoy the ride' = 3"
        );
    }

    #[test]
    fn proximity_single_term_is_one() {
        let idx = index_of(&[("u", &["hello world"])]);
        let q = Query::parse("hello");
        let results = search(
            &idx,
            &q,
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_phrase_scores_full_proximity() {
        let idx = index_of(&[("u", &["x sexy can i y"])]);
        let results = search(
            &idx,
            &Query::parse("sexy can i"),
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn results_sorted_desc_deterministic() {
        let idx = morcheeba_index();
        let a = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        let b = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn pagerank_breaks_content_ties() {
        let mut builder = IndexBuilder::new();
        let mut m1 = AppModel::new("http://low");
        m1.add_state(1, "identical words".into(), None);
        let mut m2 = AppModel::new("http://high");
        m2.add_state(2, "identical words".into(), None);
        builder.add_model(&m1, Some(0.1));
        builder.add_model(&m2, Some(0.9));
        let idx = builder.build();
        let results = search(&idx, &Query::parse("identical"), &RankWeights::default());
        assert_eq!(results[0].url, "http://high");
    }

    #[test]
    fn duplicate_query_terms_handled() {
        let idx = index_of(&[("u", &["wow wow great", "wow only"])]);
        let results = search(&idx, &Query::parse("wow wow"), &RankWeights::default());
        // Both states contain "wow"; the conjunction of a term with itself
        // degenerates to the single-term query (set semantics).
        assert_eq!(results.len(), 2);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let idx = morcheeba_index();
        let w = RankWeights::default();
        let mut scratch = ScoreScratch::new();
        for q in ["morcheeba", "morcheeba singer", "", "live concert", "zebra"] {
            let query = Query::parse(q);
            let fresh = search(&idx, &query, &w);
            let reused = search_with_scratch(&idx, &query, &w, &mut scratch);
            assert_eq!(fresh, reused, "query {q:?}");
        }
    }
}

#[cfg(test)]
mod top_k_tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use ajax_crawl::model::AppModel;

    fn big_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for page in 0..40 {
            let mut m = AppModel::new(format!("http://x/{page:02}"));
            for s in 0..3 {
                // Vary tf so scores differ.
                let mut text = "common ".repeat((page % 7 + 1) as usize);
                text.push_str(&"filler ".repeat((s + 1) * 2));
                m.add_state(u64::from(page * 10 + s as u32 + 1), text, None);
            }
            b.add_model(&m, Some(1.0 / 40.0));
        }
        b.build()
    }

    #[test]
    fn top_k_matches_full_sort_prefix() {
        let idx = big_index();
        let q = Query::parse("common");
        let w = RankWeights::default();
        let full = search(&idx, &q, &w);
        for k in [0usize, 1, 5, 17, 120, 1000] {
            let top = search_top_k(&idx, &q, &w, k);
            assert_eq!(top.len(), full.len().min(k));
            assert_eq!(&full[..top.len()], &top[..], "k={k}");
        }
    }

    #[test]
    fn top_k_matches_full_sort_under_degenerate_weights() {
        // Degenerate weights force NaN and ±inf scores (inf·0 = NaN with
        // zero pageranks). The rank comparator must stay a *total* order —
        // with the old `partial_cmp(..).unwrap_or(Equal)`, NaN compared
        // equal to everything (non-transitive) and the bounded heap's
        // selection diverged from the full sort's prefix.
        let mut b = IndexBuilder::new();
        for page in 0..25 {
            let mut m = AppModel::new(format!("http://x/{page:02}"));
            m.add_state(1, format!("common filler{}", page % 5), None);
            b.add_model(&m, if page % 2 == 0 { None } else { Some(0.0) });
        }
        let idx = b.build();
        let q = Query::parse("common");
        let degenerate = [
            RankWeights {
                pagerank: f64::INFINITY, // inf · 0.0 = NaN
                ajaxrank: 0.0,
                tfidf: 1.0,
                proximity: 0.0,
            },
            RankWeights {
                pagerank: f64::NAN,
                ajaxrank: 1.0,
                tfidf: 1.0,
                proximity: 1.0,
            },
            RankWeights {
                pagerank: f64::NEG_INFINITY,
                ajaxrank: f64::INFINITY,
                tfidf: 0.0,
                proximity: 0.0,
            },
        ];
        // NaN != NaN under `==`, so compare results by score *bits*.
        let fingerprint = |rs: &[SearchResult]| -> Vec<(String, DocKey, u64)> {
            rs.iter()
                .map(|r| (r.url.clone(), r.doc, r.score.to_bits()))
                .collect()
        };
        for (wi, w) in degenerate.iter().enumerate() {
            let full = search(&idx, &q, w);
            assert_eq!(full.len(), 25);
            for k in [1usize, 3, 10, 25, 40] {
                let top = search_top_k(&idx, &q, w, k);
                assert_eq!(top.len(), full.len().min(k));
                assert_eq!(
                    fingerprint(&full[..top.len()]),
                    fingerprint(&top),
                    "weights[{wi}] k={k}"
                );
            }
        }
    }

    #[test]
    fn top_k_on_empty_results() {
        let idx = big_index();
        let q = Query::parse("absent");
        assert!(search_top_k(&idx, &q, &RankWeights::default(), 10).is_empty());
    }

    #[test]
    fn top_k_materializes_at_most_k_urls() {
        let idx = big_index();
        let q = Query::parse("common");
        let w = RankWeights::default();
        let full = search(&idx, &q, &w);
        assert!(full.len() > 10, "need a large result set");
        crate::probe::reset_url_materializations();
        let top = search_top_k(&idx, &q, &w, 10);
        assert_eq!(top.len(), 10);
        assert!(
            crate::probe::url_materializations() <= 10,
            "top-k minted {} URL strings for k=10",
            crate::probe::url_materializations()
        );
    }
}
