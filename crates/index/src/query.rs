//! Query processing (thesis §5.3): boolean keyword queries and conjunctions
//! over the state-granular inverted file, ranked by formula 5.3.

use crate::invert::{DocKey, InvertedIndex, Posting};
use crate::tokenize::query_terms;
use serde::{Deserialize, Serialize};

/// A parsed query: a conjunction of terms.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Query {
    pub terms: Vec<String>,
}

impl Query {
    /// Parses a query string (`"Morcheeba Enjoy the Ride"` ⇒ 4 terms).
    pub fn parse(text: &str) -> Self {
        Self {
            terms: query_terms(text),
        }
    }

    /// True when the query has no terms (matches nothing).
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// The weights `w1..w4` of ranking formula 5.3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RankWeights {
    /// `w1` — PageRank of the URL.
    pub pagerank: f64,
    /// `w2` — AJAXRank of the state within its page.
    pub ajaxrank: f64,
    /// `w3` — Σ tf·idf over the query terms.
    pub tfidf: f64,
    /// `w4` — term proximity.
    pub proximity: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        Self {
            pagerank: 0.15,
            ajaxrank: 0.15,
            tfidf: 0.55,
            proximity: 0.15,
        }
    }
}

/// One ranked search result: a `(URL, state)` pair with its score — exactly
/// the 3-tuple `(u, s, r)` of §6.5.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchResult {
    pub url: String,
    pub doc: DocKey,
    pub score: f64,
}

/// Evaluates `query` against `index`: conjunction semantics (every term must
/// occur in the state), results ranked by formula 5.3, descending.
pub fn search(index: &InvertedIndex, query: &Query, weights: &RankWeights) -> Vec<SearchResult> {
    let mut results = search_unsorted(index, query, weights);
    sort_results(&mut results);
    results
}

/// Evaluates `query` and returns only the `k` best results — the top-k
/// path (cf. the thesis' pointer to threshold-algorithm style optimized
/// ranking, ch. 9). Scoring work is identical to [`search`], but only a
/// bounded selection is fully sorted, so large result sets avoid the
/// O(n log n) total sort.
pub fn search_top_k(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
    k: usize,
) -> Vec<SearchResult> {
    let mut results = search_unsorted(index, query, weights);
    if k == 0 || results.is_empty() {
        return Vec::new();
    }
    if results.len() > k {
        // Partition so the k best (by the same ordering as sort_results)
        // land in front, then sort just that prefix.
        results.select_nth_unstable_by(k - 1, compare_results);
        results.truncate(k);
    }
    results.sort_by(compare_results);
    results
}

fn compare_results(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then_with(|| a.url.cmp(&b.url))
        .then_with(|| a.doc.state.cmp(&b.doc.state))
}

/// The scoring pass shared by [`search`] and [`search_top_k`].
fn search_unsorted(
    index: &InvertedIndex,
    query: &Query,
    weights: &RankWeights,
) -> Vec<SearchResult> {
    conjunction_postings(index, &query.terms)
        .into_iter()
        .map(|(doc, postings)| {
            let (pagerank, ajaxrank) = index.ranks_of(doc);
            let tfidf: f64 = postings
                .iter()
                .zip(query.terms.iter())
                .map(|(p, term)| index.tf(p) * index.idf(term))
                .sum();
            let proximity = proximity_score(&postings, query.terms.len());
            let score = weights.pagerank * pagerank
                + weights.ajaxrank * ajaxrank
                + weights.tfidf * tfidf
                + weights.proximity * proximity;
            SearchResult {
                url: index.url_of(doc).to_string(),
                doc,
                score,
            }
        })
        .collect()
}

/// Sorts results by descending score with a deterministic tiebreak.
pub fn sort_results(results: &mut [SearchResult]) {
    results.sort_by(compare_results);
}

/// The posting-list merge of §5.3.2: intersects the per-term posting lists
/// on `(URL, state)` identity. Returns, per matching document, the postings
/// of each query term *in term order*. Duplicate query terms are allowed.
pub fn conjunction_postings<'a>(
    index: &'a InvertedIndex,
    terms: &[String],
) -> Vec<(DocKey, Vec<&'a Posting>)> {
    let lists: Vec<&[Posting]> = terms.iter().map(|t| index.postings(t)).collect();
    conjunction_of_lists(&lists)
}

/// The same merge over pre-fetched posting lists, one per query term in term
/// order. Callers that also need per-term statistics (the shard-evaluation
/// path) fetch each list once and reuse it for both, instead of paying two
/// term lookups per shard.
pub fn conjunction_of_lists<'a>(lists: &[&'a [Posting]]) -> Vec<(DocKey, Vec<&'a Posting>)> {
    if lists.is_empty() {
        return Vec::new();
    }
    if lists.iter().any(|l| l.is_empty()) {
        return Vec::new(); // Conjunction with an unseen term is empty.
    }
    // Drive the merge from the rarest list; binary-search the others.
    let (driver_idx, driver) = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .expect("non-empty terms");

    let mut out = Vec::new();
    'candidates: for candidate in driver.iter() {
        let doc = candidate.doc;
        let mut row: Vec<&Posting> = Vec::with_capacity(lists.len());
        for (i, list) in lists.iter().enumerate() {
            if i == driver_idx {
                row.push(candidate);
                continue;
            }
            match list.binary_search_by_key(&doc, |p| p.doc) {
                Ok(pos) => row.push(&list[pos]),
                Err(_) => continue 'candidates,
            }
        }
        out.push((doc, row));
    }
    out
}

/// Term-proximity measure `T(q, s)` (§5.3.3 item 4): the highest value goes
/// to states containing the query terms adjacently in order; spread-out
/// occurrences score lower. Computed as `k / window`, where `window` is the
/// length of the smallest token window containing all `k` terms, with a
/// small in-order bonus folded in by construction (an in-order adjacent run
/// has window == k ⇒ score 1.0).
pub fn proximity_score(postings: &[&Posting], k: usize) -> f64 {
    if k <= 1 {
        return 1.0;
    }
    // Gather (position, term_index) pairs, sorted by position.
    let mut events: Vec<(u32, usize)> = Vec::new();
    for (term_idx, posting) in postings.iter().enumerate() {
        for &pos in &posting.positions {
            events.push((pos, term_idx));
        }
    }
    events.sort_unstable();

    // Minimal covering window (two pointers with per-term counts).
    let mut counts = vec![0u32; k];
    let mut covered = 0usize;
    let mut best = u32::MAX;
    let mut left = 0usize;
    for right in 0..events.len() {
        let (_, term) = events[right];
        if counts[term] == 0 {
            covered += 1;
        }
        counts[term] += 1;
        while covered == k {
            let window = events[right].0 - events[left].0 + 1;
            best = best.min(window);
            let (_, lterm) = events[left];
            counts[lterm] -= 1;
            if counts[lterm] == 0 {
                covered -= 1;
            }
            left += 1;
        }
    }
    if best == u32::MAX {
        // A duplicated term with a single occurrence can never cover k slots;
        // fall back to the spread of distinct terms.
        return 0.0;
    }
    (k as f64 / f64::from(best)).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use ajax_crawl::model::AppModel;

    fn index_of(states_per_page: &[(&str, &[&str])]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for (url, states) in states_per_page {
            let mut m = AppModel::new(*url);
            for (i, text) in states.iter().enumerate() {
                m.add_state(i as u64 + 1, (*text).to_string(), None);
            }
            b.add_model(&m, Some(0.5));
        }
        b.build()
    }

    /// The thesis' running example (Tables 5.1/5.2, Fig 5.2).
    fn morcheeba_index() -> InvertedIndex {
        index_of(&[
            (
                "http://www.youtube.com/watch?v=w16JlLSySWQ",
                &[
                    "morcheeba enjoy the ride mysterious video",
                    "morcheeba the new singer sounds great",
                ],
            ),
            (
                "http://www.youtube.com/watch?v=Iv5JXxME0js",
                &["morcheeba morcheeba live in concert"],
            ),
        ])
    }

    #[test]
    fn single_keyword_returns_states() {
        let idx = morcheeba_index();
        let results = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(results.len(), 3, "three states contain 'morcheeba'");
    }

    #[test]
    fn double_occurrence_ranks_higher() {
        // Table 5.2: the state where the keyword appears twice ranks first
        // (tf dominates with default weights on equal-length-ish states).
        let idx = morcheeba_index();
        let results = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(
            results[0].url, "http://www.youtube.com/watch?v=Iv5JXxME0js",
            "state with two occurrences must rank first: {results:#?}"
        );
    }

    #[test]
    fn conjunction_requires_same_state() {
        // Q3 of the thesis: "morcheeba singer" must return exactly
        // (URL1, s2) — Fig 5.2.
        let idx = morcheeba_index();
        let results = search(
            &idx,
            &Query::parse("morcheeba singer"),
            &RankWeights::default(),
        );
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].doc.state.0, 1);
        assert!(results[0].url.ends_with("w16JlLSySWQ"));
    }

    #[test]
    fn conjunction_with_unseen_term_is_empty() {
        let idx = morcheeba_index();
        assert!(search(
            &idx,
            &Query::parse("morcheeba zebra"),
            &RankWeights::default()
        )
        .is_empty());
        assert!(search(&idx, &Query::parse(""), &RankWeights::default()).is_empty());
    }

    #[test]
    fn conjunction_equals_naive_intersection() {
        let idx = index_of(&[("u1", &["a b c", "a c", "b c"]), ("u2", &["c a b a", "b"])]);
        let merged = conjunction_postings(&idx, &["a".into(), "b".into()]);
        let merged_docs: Vec<DocKey> = merged.iter().map(|(d, _)| *d).collect();
        // Naive: docs containing a ∩ docs containing b.
        let a_docs: std::collections::BTreeSet<DocKey> =
            idx.postings("a").iter().map(|p| p.doc).collect();
        let b_docs: std::collections::BTreeSet<DocKey> =
            idx.postings("b").iter().map(|p| p.doc).collect();
        let naive: Vec<DocKey> = a_docs.intersection(&b_docs).copied().collect();
        assert_eq!(merged_docs, naive);
    }

    #[test]
    fn proximity_rewards_adjacency() {
        let idx = index_of(&[(
            "u",
            &[
                "enjoy the ride is here",                    // adjacent, in order
                "enjoy something long the filler word ride", // spread
            ],
        )]);
        let q = Query::parse("enjoy ride");
        let results = search(
            &idx,
            &q,
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].doc.state.0, 0, "adjacent phrase wins");
        assert!(results[0].score > results[1].score);
        assert!(
            (results[0].score - 2.0 / 3.0).abs() < 1e-9,
            "window 'enjoy the ride' = 3"
        );
    }

    #[test]
    fn proximity_single_term_is_one() {
        let idx = index_of(&[("u", &["hello world"])]);
        let q = Query::parse("hello");
        let results = search(
            &idx,
            &q,
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exact_phrase_scores_full_proximity() {
        let idx = index_of(&[("u", &["x sexy can i y"])]);
        let results = search(
            &idx,
            &Query::parse("sexy can i"),
            &RankWeights {
                pagerank: 0.0,
                ajaxrank: 0.0,
                tfidf: 0.0,
                proximity: 1.0,
            },
        );
        assert!((results[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn results_sorted_desc_deterministic() {
        let idx = morcheeba_index();
        let a = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        let b = search(&idx, &Query::parse("morcheeba"), &RankWeights::default());
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn pagerank_breaks_content_ties() {
        let mut builder = IndexBuilder::new();
        let mut m1 = AppModel::new("http://low");
        m1.add_state(1, "identical words".into(), None);
        let mut m2 = AppModel::new("http://high");
        m2.add_state(2, "identical words".into(), None);
        builder.add_model(&m1, Some(0.1));
        builder.add_model(&m2, Some(0.9));
        let idx = builder.build();
        let results = search(&idx, &Query::parse("identical"), &RankWeights::default());
        assert_eq!(results[0].url, "http://high");
    }

    #[test]
    fn duplicate_query_terms_handled() {
        let idx = index_of(&[("u", &["wow wow great", "wow only"])]);
        let results = search(&idx, &Query::parse("wow wow"), &RankWeights::default());
        // Both states contain "wow"; the conjunction of a term with itself
        // degenerates to the single-term query (set semantics).
        assert_eq!(results.len(), 2);
    }
}

#[cfg(test)]
mod top_k_tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use ajax_crawl::model::AppModel;

    fn big_index() -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for page in 0..40 {
            let mut m = AppModel::new(format!("http://x/{page:02}"));
            for s in 0..3 {
                // Vary tf so scores differ.
                let mut text = "common ".repeat((page % 7 + 1) as usize);
                text.push_str(&"filler ".repeat((s + 1) * 2));
                m.add_state(u64::from(page * 10 + s as u32 + 1), text, None);
            }
            b.add_model(&m, Some(1.0 / 40.0));
        }
        b.build()
    }

    #[test]
    fn top_k_matches_full_sort_prefix() {
        let idx = big_index();
        let q = Query::parse("common");
        let w = RankWeights::default();
        let full = search(&idx, &q, &w);
        for k in [0usize, 1, 5, 17, 120, 1000] {
            let top = search_top_k(&idx, &q, &w, k);
            assert_eq!(top.len(), full.len().min(k));
            assert_eq!(&full[..top.len()], &top[..], "k={k}");
        }
    }

    #[test]
    fn top_k_on_empty_results() {
        let idx = big_index();
        let q = Query::parse("absent");
        assert!(search_top_k(&idx, &q, &RankWeights::default(), 10).is_empty());
    }
}
