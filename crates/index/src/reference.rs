//! The **frozen pre-columnar implementation**: `BTreeMap<String,
//! Vec<Posting>>` with per-posting position vectors, per-candidate binary
//! search and per-candidate allocation — kept verbatim as (a) the oracle the
//! equivalence suite pins the columnar engine against (results must match
//! bit-for-bit, same summation order), and (b) the baseline `exp_index_perf`
//! measures the kernel speedup over.
//!
//! Not a public API: nothing outside tests and the bench harness should
//! build a [`RefIndex`].

use crate::invert::{DocKey, PageEntry};
use crate::query::{Query, RankWeights, SearchResult};
use crate::shard::{BrokerResult, QueryBroker, ShardTermStats};
use crate::tokenize::tokenize;
use ajax_crawl::model::AppModel;
use ajax_crawl::pagerank::pagerank_default;
use std::collections::{BTreeMap, HashMap};

/// One owned posting: where a term occurs and how often.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefPosting {
    pub doc: DocKey,
    pub count: u32,
    pub positions: Vec<u32>,
}

/// The pre-columnar inverted file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RefIndex {
    postings: BTreeMap<String, Vec<RefPosting>>,
    pub pages: Vec<PageEntry>,
    pub total_states: u64,
}

impl RefIndex {
    pub fn postings(&self, term: &str) -> &[RefPosting] {
        self.postings.get(term).map(Vec::as_slice).unwrap_or(&[])
    }

    pub fn df(&self, term: &str) -> u64 {
        self.postings(term).len() as u64
    }

    pub fn idf(&self, term: &str) -> f64 {
        let df = self.df(term);
        if df == 0 || self.total_states == 0 {
            0.0
        } else {
            (self.total_states as f64 / df as f64).ln()
        }
    }

    pub fn tf(&self, posting: &RefPosting) -> f64 {
        let page = &self.pages[posting.doc.page as usize];
        let len = page.state_lengths[posting.doc.state.index()].max(1);
        f64::from(posting.count) / f64::from(len)
    }

    pub fn url_of(&self, doc: DocKey) -> &str {
        &self.pages[doc.page as usize].url
    }

    pub fn ranks_of(&self, doc: DocKey) -> (f64, f64) {
        let page = &self.pages[doc.page as usize];
        let ajax = page.ajaxrank.get(doc.state.index()).copied().unwrap_or(0.0);
        (page.pagerank, ajax)
    }
}

/// The pre-columnar builder: per-state `HashMap` grouping and one
/// `term.to_string()` per term per state.
#[derive(Debug, Default)]
pub struct RefIndexBuilder {
    index: RefIndex,
    max_states: Option<usize>,
}

impl RefIndexBuilder {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_max_states(mut self, max_states: usize) -> Self {
        self.max_states = Some(max_states.max(1));
        self
    }

    pub fn add_model(&mut self, model: &AppModel, pagerank: Option<f64>) {
        let page_idx = self.index.pages.len() as u32;
        let limit = self
            .max_states
            .unwrap_or(usize::MAX)
            .min(model.state_count());

        let ajaxrank = pagerank_default(&model.state_adjacency());

        let mut entry = PageEntry {
            url: model.url.clone(),
            pagerank: pagerank.unwrap_or(0.0),
            ajaxrank,
            state_lengths: Vec::with_capacity(limit),
        };

        for state in model.states.iter().take(limit) {
            let tokens = tokenize(&state.text);
            entry.state_lengths.push(tokens.len() as u32);
            self.index.total_states += 1;

            let mut grouped: HashMap<&str, Vec<u32>> = HashMap::new();
            for token in &tokens {
                grouped
                    .entry(token.term.as_str())
                    .or_default()
                    .push(token.position);
            }
            for (term, positions) in grouped {
                let posting = RefPosting {
                    doc: DocKey {
                        page: page_idx,
                        state: state.id,
                    },
                    count: positions.len() as u32,
                    positions,
                };
                self.index
                    .postings
                    .entry(term.to_string())
                    .or_default()
                    .push(posting);
            }
        }
        self.index.pages.push(entry);
    }

    pub fn build(mut self) -> RefIndex {
        for postings in self.index.postings.values_mut() {
            postings.sort_by_key(|p| p.doc);
        }
        self.index
    }
}

// The one deliberate deviation from the frozen code: the rank comparator
// moved to `f64::total_cmp` in lockstep with the engine (`query::rank_cmp`,
// `shard::compare_broker_results`). Both sides must use the same total
// order or NaN-scored ties (degenerate weights) would order differently
// and break the bit-identity contract.
fn compare_results(a: &SearchResult, b: &SearchResult) -> std::cmp::Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.url.cmp(&b.url))
        .then_with(|| a.doc.state.cmp(&b.doc.state))
}

/// Pre-columnar [`crate::search`]: full scoring, URL clone per candidate,
/// total sort.
pub fn ref_search(index: &RefIndex, query: &Query, weights: &RankWeights) -> Vec<SearchResult> {
    let mut results = search_unsorted(index, query, weights);
    results.sort_by(compare_results);
    results
}

/// Pre-columnar [`crate::search_top_k`]: scores and materializes every
/// candidate, then `select_nth` + truncate.
pub fn ref_search_top_k(
    index: &RefIndex,
    query: &Query,
    weights: &RankWeights,
    k: usize,
) -> Vec<SearchResult> {
    let mut results = search_unsorted(index, query, weights);
    if k == 0 || results.is_empty() {
        return Vec::new();
    }
    if results.len() > k {
        results.select_nth_unstable_by(k - 1, compare_results);
        results.truncate(k);
    }
    results.sort_by(compare_results);
    results
}

fn search_unsorted(index: &RefIndex, query: &Query, weights: &RankWeights) -> Vec<SearchResult> {
    conjunction_postings(index, &query.terms)
        .into_iter()
        .map(|(doc, postings)| {
            let (pagerank, ajaxrank) = index.ranks_of(doc);
            let tfidf: f64 = postings
                .iter()
                .zip(query.terms.iter())
                .map(|(p, term)| index.tf(p) * index.idf(term))
                .sum();
            let proximity = proximity_score(&postings, query.terms.len());
            let score = weights.pagerank * pagerank
                + weights.ajaxrank * ajaxrank
                + weights.tfidf * tfidf
                + weights.proximity * proximity;
            SearchResult {
                url: index.url_of(doc).to_string(),
                doc,
                score,
            }
        })
        .collect()
}

fn conjunction_postings<'a>(
    index: &'a RefIndex,
    terms: &[String],
) -> Vec<(DocKey, Vec<&'a RefPosting>)> {
    let lists: Vec<&[RefPosting]> = terms.iter().map(|t| index.postings(t)).collect();
    conjunction_of_lists(&lists)
}

fn conjunction_of_lists<'a>(lists: &[&'a [RefPosting]]) -> Vec<(DocKey, Vec<&'a RefPosting>)> {
    if lists.is_empty() {
        return Vec::new();
    }
    if lists.iter().any(|l| l.is_empty()) {
        return Vec::new();
    }
    // Drive the merge from the rarest list; binary-search the others — from
    // scratch, for every candidate.
    let (driver_idx, driver) = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .expect("non-empty terms");

    let mut out = Vec::new();
    'candidates: for candidate in driver.iter() {
        let doc = candidate.doc;
        let mut row: Vec<&RefPosting> = Vec::with_capacity(lists.len());
        for (i, list) in lists.iter().enumerate() {
            if i == driver_idx {
                row.push(candidate);
                continue;
            }
            match list.binary_search_by_key(&doc, |p| p.doc) {
                Ok(pos) => row.push(&list[pos]),
                Err(_) => continue 'candidates,
            }
        }
        out.push((doc, row));
    }
    out
}

fn proximity_score(postings: &[&RefPosting], k: usize) -> f64 {
    if k <= 1 {
        return 1.0;
    }
    let mut events: Vec<(u32, usize)> = Vec::new();
    for (term_idx, posting) in postings.iter().enumerate() {
        for &pos in &posting.positions {
            events.push((pos, term_idx));
        }
    }
    events.sort_unstable();

    let mut counts = vec![0u32; k];
    let mut covered = 0usize;
    let mut best = u32::MAX;
    let mut left = 0usize;
    for right in 0..events.len() {
        let (_, term) = events[right];
        if counts[term] == 0 {
            covered += 1;
        }
        counts[term] += 1;
        while covered == k {
            let window = events[right].0 - events[left].0 + 1;
            best = best.min(window);
            let (_, lterm) = events[left];
            counts[lterm] -= 1;
            if counts[lterm] == 0 {
                covered -= 1;
            }
            left += 1;
        }
    }
    if best == u32::MAX {
        return 0.0;
    }
    (k as f64 / f64::from(best)).min(1.0)
}

/// Pre-columnar distributed evaluation: the old `eval_shard` +
/// `merge_shard_outputs` pair, including the per-query provenance
/// `HashMap` rebuild the new path eliminated.
pub fn ref_broker_search(
    shards: &[RefIndex],
    query: &Query,
    weights: &RankWeights,
) -> Vec<BrokerResult> {
    if query.is_empty() {
        return Vec::new();
    }

    struct RefShardResult {
        shard: usize,
        url: String,
        doc: DocKey,
        base_score: f64,
        tfs: Vec<f64>,
    }

    let mut all_results: Vec<RefShardResult> = Vec::new();
    let mut all_stats: Vec<ShardTermStats> = Vec::with_capacity(shards.len());
    for (shard_idx, shard) in shards.iter().enumerate() {
        let lists: Vec<&[RefPosting]> = query.terms.iter().map(|t| shard.postings(t)).collect();
        all_stats.push(ShardTermStats {
            total_states: shard.total_states,
            df: lists.iter().map(|l| l.len() as u64).collect(),
        });
        for (doc, postings) in conjunction_of_lists(&lists) {
            let (pagerank, ajaxrank) = shard.ranks_of(doc);
            let proximity = proximity_score(&postings, query.terms.len());
            all_results.push(RefShardResult {
                shard: shard_idx,
                url: shard.url_of(doc).to_string(),
                doc,
                base_score: weights.pagerank * pagerank
                    + weights.ajaxrank * ajaxrank
                    + weights.proximity * proximity,
                tfs: postings.iter().map(|p| shard.tf(p)).collect(),
            });
        }
    }

    let idf = QueryBroker::global_idf(query, &all_stats);
    let mut merged: Vec<SearchResult> = all_results
        .iter()
        .map(|r| {
            let tfidf: f64 = r.tfs.iter().zip(idf.iter()).map(|(tf, idf)| tf * idf).sum();
            SearchResult {
                url: r.url.clone(),
                doc: r.doc,
                score: r.base_score + weights.tfidf * tfidf,
            }
        })
        .collect();
    merged.sort_by(compare_results);

    let provenance: HashMap<(&str, DocKey), usize> = all_results
        .iter()
        .map(|s| ((s.url.as_str(), s.doc), s.shard))
        .collect();
    merged
        .into_iter()
        .map(|r| {
            let shard = provenance
                .get(&(r.url.as_str(), r.doc))
                .copied()
                .unwrap_or(0);
            BrokerResult {
                shard,
                url: r.url,
                doc: r.doc,
                score: r.score,
            }
        })
        .collect()
}
