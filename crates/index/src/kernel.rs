//! The allocation-free query kernel: galloping intersection, reusable
//! scoring scratch, and a bounded top-k heap.
//!
//! The pre-columnar engine re-binary-searched every posting list from
//! scratch for every candidate and allocated a row `Vec` (plus a proximity
//! event `Vec` and counter `Vec`) per candidate. This kernel keeps one
//! **cursor per list** and advances it monotonically with exponential-probe
//! ("galloping") seeks, and every per-candidate buffer lives in a
//! [`ScoreScratch`] that is reused across candidates *and* queries — the
//! intersection + scoring loop performs **zero heap allocation** per
//! candidate.
//!
//! Determinism: the kernel visits matching documents in ascending `DocKey`
//! order (the same order the old driver-list merge produced) and callers
//! accumulate scores in the same term order and with the same arithmetic
//! expression shapes as the old implementation, so scores are bit-identical
//! (see `docs/index-internals.md` and `reference.rs`).

use crate::invert::{DocKey, PostingList, TermScratch};
use std::cmp::Ordering;

/// Reusable per-query scratch buffers. One per caller thread; cleared (but
/// never shrunk) between queries, so steady-state query evaluation touches
/// the allocator only to emit final results.
#[derive(Debug, Default)]
pub struct ScoreScratch {
    /// One cursor per posting list (the intersection state).
    pub(crate) cursors: Vec<usize>,
    /// Precomputed idf per query term.
    pub(crate) idf: Vec<f64>,
    /// `(position, term_index)` events for the proximity window scan.
    pub(crate) events: Vec<(u32, usize)>,
    /// Per-term occurrence counters for the proximity window scan.
    pub(crate) term_counts: Vec<u32>,
    /// One decode buffer per query term for mapped (v4) posting runs; owned
    /// indexes leave them untouched.
    pub(crate) term_bufs: Vec<TermScratch>,
}

impl ScoreScratch {
    pub fn new() -> Self {
        Self::default()
    }
}

/// First index `>= from` whose doc is `>= target`, by exponential probe and
/// then binary search within the bracketed window. `docs` is sorted.
#[inline]
fn seek(docs: &[DocKey], from: usize, target: DocKey) -> usize {
    if from >= docs.len() {
        return docs.len();
    }
    if docs[from] >= target {
        return from;
    }
    // Invariant: docs[lo] < target. Double the step until we overshoot.
    let mut lo = from;
    let mut step = 1usize;
    let hi = loop {
        let probe = lo + step;
        if probe >= docs.len() {
            break docs.len();
        }
        if docs[probe] < target {
            lo = probe;
            step <<= 1;
        } else {
            break probe;
        }
    };
    // Binary search in (lo, hi): partition_point over the subslice.
    lo + 1 + docs[lo + 1..hi].partition_point(|d| *d < target)
}

/// Intersects `lists` (all doc-sorted) and calls `f(doc, rows)` for every
/// document present in **all** of them, in ascending doc order. `rows[i]` is
/// the index of the matching posting within `lists[i]`.
///
/// The merge is driven by the shortest list; the other cursors only ever
/// move forward, galloping to each candidate. When a non-driver list skips
/// past the candidate, the driver gallops forward to that doc instead of
/// stepping one-by-one (the classic adaptive intersection).
pub(crate) fn for_each_match<'a, F>(lists: &[PostingList<'a>], cursors: &mut Vec<usize>, mut f: F)
where
    F: FnMut(DocKey, &[usize]),
{
    if lists.is_empty() || lists.iter().any(|l| l.is_empty()) {
        return; // Conjunction with an unseen term is empty.
    }
    let k = lists.len();
    cursors.clear();
    cursors.resize(k, 0);
    let driver = lists
        .iter()
        .enumerate()
        .min_by_key(|(_, l)| l.len())
        .map(|(i, _)| i)
        .expect("non-empty lists");

    'outer: loop {
        let dcur = cursors[driver];
        if dcur >= lists[driver].len() {
            break;
        }
        let candidate = lists[driver].doc(dcur);
        for i in 0..k {
            if i == driver {
                continue;
            }
            let pos = seek(lists[i].docs(), cursors[i], candidate);
            cursors[i] = pos;
            if pos >= lists[i].len() {
                break 'outer; // Some list is exhausted: no more matches.
            }
            let found = lists[i].doc(pos);
            if found > candidate {
                // Candidate missing from list i — gallop the driver to the
                // doc list i is sitting on and restart the alignment.
                cursors[driver] = seek(lists[driver].docs(), dcur + 1, found);
                continue 'outer;
            }
        }
        f(candidate, cursors);
        cursors[driver] = dcur + 1;
    }
}

/// Term-proximity measure `T(q, s)` (§5.3.3 item 4) over the matched rows,
/// using caller-provided scratch. The highest value goes to states
/// containing the query terms adjacently in order; spread-out occurrences
/// score lower. Computed as `k / window`, where `window` is the length of
/// the smallest token window containing all `k` terms (an in-order adjacent
/// run has window == k ⇒ score 1.0). Identical arithmetic to the
/// pre-columnar `proximity_score`.
pub(crate) fn proximity_of_rows(
    lists: &[PostingList<'_>],
    rows: &[usize],
    events: &mut Vec<(u32, usize)>,
    term_counts: &mut Vec<u32>,
) -> f64 {
    let k = lists.len();
    if k <= 1 {
        return 1.0;
    }
    // Gather (position, term_index) pairs, sorted by position. Positions
    // are decoded here and only here — on a mapped segment this walks the
    // delta+varint stream of exactly the matched postings.
    events.clear();
    for (term_idx, list) in lists.iter().enumerate() {
        list.for_each_position(rows[term_idx], |pos| events.push((pos, term_idx)));
    }
    events.sort_unstable();

    // Minimal covering window (two pointers with per-term counts).
    term_counts.clear();
    term_counts.resize(k, 0);
    let mut covered = 0usize;
    let mut best = u32::MAX;
    let mut left = 0usize;
    for right in 0..events.len() {
        let (_, term) = events[right];
        if term_counts[term] == 0 {
            covered += 1;
        }
        term_counts[term] += 1;
        while covered == k {
            let window = events[right].0 - events[left].0 + 1;
            best = best.min(window);
            let (_, lterm) = events[left];
            term_counts[lterm] -= 1;
            if term_counts[lterm] == 0 {
                covered -= 1;
            }
            left += 1;
        }
    }
    if best == u32::MAX {
        // A duplicated term with a single occurrence can never cover k slots.
        return 0.0;
    }
    (k as f64 / f64::from(best)).min(1.0)
}

/// A bounded top-k selector over `(doc, score)` pairs: a binary max-heap
/// ordered by "ranks last" whose root is the **worst kept entry**, so a
/// stream of n candidates costs O(n log k) and k entries of memory — large
/// result sets never fully materialize. The comparator must be a total
/// order on distinct candidates (rank order: score desc, then URL, then
/// state — see `query::search_top_k`).
pub(crate) struct TopK {
    buf: Vec<(DocKey, f64)>,
    k: usize,
}

impl TopK {
    pub fn new(k: usize) -> Self {
        Self {
            buf: Vec::with_capacity(k.min(1024)),
            k,
        }
    }

    /// Offers a candidate; keeps it only if it ranks within the best k.
    pub fn offer<C>(&mut self, item: (DocKey, f64), cmp: &C)
    where
        C: Fn(&(DocKey, f64), &(DocKey, f64)) -> Ordering,
    {
        if self.k == 0 {
            return;
        }
        if self.buf.len() < self.k {
            self.buf.push(item);
            self.sift_up(self.buf.len() - 1, cmp);
        } else if cmp(&item, &self.buf[0]) == Ordering::Less {
            self.buf[0] = item;
            self.sift_down(0, cmp);
        }
    }

    /// The kept entries, best-first.
    pub fn into_sorted<C>(mut self, cmp: &C) -> Vec<(DocKey, f64)>
    where
        C: Fn(&(DocKey, f64), &(DocKey, f64)) -> Ordering,
    {
        self.buf.sort_by(cmp);
        self.buf
    }

    fn sift_up<C>(&mut self, mut i: usize, cmp: &C)
    where
        C: Fn(&(DocKey, f64), &(DocKey, f64)) -> Ordering,
    {
        while i > 0 {
            let parent = (i - 1) / 2;
            if cmp(&self.buf[i], &self.buf[parent]) == Ordering::Greater {
                self.buf.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down<C>(&mut self, mut i: usize, cmp: &C)
    where
        C: Fn(&(DocKey, f64), &(DocKey, f64)) -> Ordering,
    {
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut largest = i;
            if l < self.buf.len() && cmp(&self.buf[l], &self.buf[largest]) == Ordering::Greater {
                largest = l;
            }
            if r < self.buf.len() && cmp(&self.buf[r], &self.buf[largest]) == Ordering::Greater {
                largest = r;
            }
            if largest == i {
                break;
            }
            self.buf.swap(i, largest);
            i = largest;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_crawl::model::StateId;

    fn key(page: u32, state: u32) -> DocKey {
        DocKey {
            page,
            state: StateId(state),
        }
    }

    #[test]
    fn seek_finds_first_geq() {
        let docs: Vec<DocKey> = [0u32, 2, 5, 9, 40, 41, 80]
            .iter()
            .map(|&p| key(p, 0))
            .collect();
        for (from, target, want) in [
            (0, 0, 0usize),
            (0, 1, 1),
            (0, 5, 2),
            (2, 5, 2),
            (3, 41, 5),
            (0, 100, 7),
            (7, 0, 7),
        ] {
            assert_eq!(
                seek(&docs, from, key(target, 0)),
                want,
                "from={from} target={target}"
            );
        }
    }

    #[test]
    fn topk_selects_smallest_under_order() {
        let cmp = |a: &(DocKey, f64), b: &(DocKey, f64)| {
            b.1.partial_cmp(&a.1).unwrap().then_with(|| a.0.cmp(&b.0))
        };
        let mut heap = TopK::new(3);
        for (i, s) in [0.5, 0.9, 0.1, 0.7, 0.3, 0.8].iter().enumerate() {
            heap.offer((key(i as u32, 0), *s), &cmp);
        }
        let kept = heap.into_sorted(&cmp);
        let scores: Vec<f64> = kept.iter().map(|e| e.1).collect();
        assert_eq!(scores, vec![0.9, 0.8, 0.7]);
    }

    #[test]
    fn topk_zero_keeps_nothing() {
        let cmp = |a: &(DocKey, f64), b: &(DocKey, f64)| a.0.cmp(&b.0);
        let mut heap = TopK::new(0);
        heap.offer((key(0, 0), 1.0), &cmp);
        assert!(heap.into_sorted(&cmp).is_empty());
    }
}
