//! Query shipping over partitioned indexes (thesis §6.4–6.5).
//!
//! The parallel architecture builds **one inverted file per partition**.
//! A query is shipped to every shard; each shard evaluates the conjunction
//! locally and returns results scored with its *local* components (PageRank,
//! AJAXRank, proximity) plus the raw per-term `tf` values and its
//! `(state count, df)` statistics. The broker computes the **global idf**
//! from the summed counts (the formula worked in §6.5.2), completes each
//! result's score with `w3·Σ tf·idf`, merges and re-sorts — Steps 1 and 2 of
//! Fig 6.4.
//!
//! Shard provenance travels **inside** [`ShardResult`] from evaluation to
//! the merged [`BrokerResult`]; the merge no longer rebuilds a
//! `(url, doc) → shard` hash map per query.

use crate::invert::{DocKey, InvertedIndex, PostingList, TermScratch};
use crate::kernel::{self, ScoreScratch};
use crate::probe;
use crate::query::{Query, RankWeights};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// A shard-local result before the global tf·idf completion.
///
/// Carries the owned `url` because shard evaluation runs on worker threads
/// that cannot hand out borrows of their index snapshot — the URL string is
/// part of the wire format between worker and merger. This is the one
/// per-result allocation the distributed path keeps.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardResult {
    pub shard: usize,
    pub url: String,
    pub doc: DocKey,
    /// `w1·PageRank + w2·AJAXRank + w4·proximity` — everything computable
    /// locally.
    pub base_score: f64,
    /// Raw normalized `tf` per query term.
    pub tfs: Vec<f64>,
}

/// Per-shard term statistics returned alongside results.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardTermStats {
    /// `|{s | s ∈ Idx}|` — states in the shard.
    pub total_states: u64,
    /// `|{s | s ∈ Idx ∧ k ∈ s}|` per query term.
    pub df: Vec<u64>,
}

/// A fully merged, globally scored result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerResult {
    pub shard: usize,
    pub url: String,
    pub doc: DocKey,
    pub score: f64,
}

/// The central "Search Application" that ships queries to every shard and
/// merges the result sets.
#[derive(Debug, Default)]
pub struct QueryBroker {
    shards: Vec<InvertedIndex>,
    pub weights: RankWeights,
}

impl QueryBroker {
    /// Builds a broker over per-partition indexes.
    pub fn new(shards: Vec<InvertedIndex>) -> Self {
        Self {
            shards,
            weights: RankWeights::default(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Access to a shard (diagnostics).
    pub fn shard(&self, i: usize) -> Option<&InvertedIndex> {
        self.shards.get(i)
    }

    /// Total states across shards (the global `|D|`).
    pub fn total_states(&self) -> u64 {
        self.shards.iter().map(|s| s.total_states).sum()
    }

    /// Estimated heap footprint of all shards (diagnostics, BuildReport).
    pub fn approx_bytes(&self) -> usize {
        self.shards.iter().map(InvertedIndex::approx_bytes).sum()
    }

    /// Bytes served from mmap-ed v4 segments across shards (0 when every
    /// shard is resident).
    pub fn mapped_bytes(&self) -> usize {
        self.shards.iter().map(InvertedIndex::mapped_bytes).sum()
    }

    /// Decomposes the broker into its shards and weights — the handoff a
    /// serving layer uses to distribute shards across worker threads.
    pub fn into_parts(self) -> (Vec<InvertedIndex>, RankWeights) {
        (self.shards, self.weights)
    }

    /// Computes the global idf of each query term from per-shard stats:
    /// `idf(k) = ln( Σ_i |Idx_i| / Σ_i df_i(k) )` — the §6.5.2 formula.
    pub fn global_idf(query: &Query, stats: &[ShardTermStats]) -> Vec<f64> {
        let total: u64 = stats.iter().map(|s| s.total_states).sum();
        (0..query.terms.len())
            .map(|t| {
                let df: u64 = stats.iter().map(|s| s.df[t]).sum();
                if df == 0 || total == 0 {
                    0.0
                } else {
                    (total as f64 / df as f64).ln()
                }
            })
            .collect()
    }

    /// Full distributed evaluation: ship, collect, complete scores with the
    /// global tf·idf (Step 1 of Fig 6.4), merge and sort (Step 2).
    ///
    /// `ajax_serve` runs the same two halves — [`eval_shard`] on worker
    /// threads and [`merge_shard_outputs`] on the caller — so the parallel
    /// path is result-identical (bit-for-bit scores) to this sequential one.
    pub fn search(&self, query: &Query) -> Vec<BrokerResult> {
        if query.is_empty() {
            return Vec::new();
        }
        let mut scratch = ScoreScratch::new();
        let mut all_results = Vec::new();
        let mut all_stats = Vec::with_capacity(self.shards.len());
        for (shard_idx, shard) in self.shards.iter().enumerate() {
            let (results, stats) =
                eval_shard_with_scratch(shard, shard_idx, query, &self.weights, &mut scratch);
            all_results.extend(results);
            all_stats.push(stats);
        }
        merge_shard_outputs(query, &self.weights, all_results, &all_stats)
    }
}

/// Evaluates a query on one shard — the "query shipping" leg, exposed as a
/// free function so a serving layer can run it on worker threads without
/// borrowing the whole broker. The query arrives already parsed and
/// normalized (tokenization happens once per query, not once per shard), and
/// each term's posting run is fetched exactly once, serving both the df
/// statistic and the conjunction merge.
pub fn eval_shard(
    shard: &InvertedIndex,
    shard_idx: usize,
    query: &Query,
    weights: &RankWeights,
) -> (Vec<ShardResult>, ShardTermStats) {
    eval_shard_with_scratch(shard, shard_idx, query, weights, &mut ScoreScratch::new())
}

/// [`eval_shard`] with a caller-owned [`ScoreScratch`] — serving workers
/// keep one per thread so steady-state evaluation reuses every buffer.
pub fn eval_shard_with_scratch(
    shard: &InvertedIndex,
    shard_idx: usize,
    query: &Query,
    weights: &RankWeights,
    scratch: &mut ScoreScratch,
) -> (Vec<ShardResult>, ShardTermStats) {
    let ScoreScratch {
        cursors,
        events,
        term_counts,
        term_bufs,
        ..
    } = scratch;
    if term_bufs.len() < query.terms.len() {
        term_bufs.resize_with(query.terms.len(), TermScratch::default);
    }
    let lists: Vec<PostingList<'_>> = query
        .terms
        .iter()
        .zip(term_bufs.iter_mut())
        .map(|(t, buf)| shard.postings_in(t, buf))
        .collect();
    let stats = ShardTermStats {
        total_states: shard.total_states,
        df: lists.iter().map(|l| l.len() as u64).collect(),
    };
    let mut results = Vec::new();
    kernel::for_each_match(&lists, cursors, |doc, rows| {
        let (pagerank, ajaxrank) = shard.ranks_of(doc);
        let proximity = kernel::proximity_of_rows(&lists, rows, events, term_counts);
        probe::note_url_materialized();
        results.push(ShardResult {
            shard: shard_idx,
            url: shard.url_of(doc).to_string(),
            doc,
            base_score: weights.pagerank * pagerank
                + weights.ajaxrank * ajaxrank
                + weights.proximity * proximity,
            tfs: lists
                .iter()
                .enumerate()
                .map(|(t, list)| shard.tf_parts(doc, list.count(rows[t])))
                .collect(),
        });
    });
    (results, stats)
}

/// Rank order on broker results: score descending (by [`f64::total_cmp`],
/// in lockstep with `query::rank_cmp` — both must stay total orders or the
/// sequential and distributed paths can order NaN-scored ties differently),
/// then URL, then state.
fn compare_broker_results(a: &BrokerResult, b: &BrokerResult) -> Ordering {
    b.score
        .total_cmp(&a.score)
        .then_with(|| a.url.cmp(&b.url))
        .then_with(|| a.doc.state.cmp(&b.doc.state))
}

/// The broker-side half of Fig 6.4: completes per-shard base scores with the
/// global tf·idf, merges and sorts. Shared by [`QueryBroker::search`] and
/// the `ajax-serve` worker-pool path so both produce identical
/// floating-point results (same summation order).
///
/// Shard provenance rides along inside each [`ShardResult`] — no per-query
/// `(url, doc) → shard` map is rebuilt here.
///
/// `all_results` must be ordered by shard index (shard 0's results first) for
/// the ordering guarantee to hold.
pub fn merge_shard_outputs(
    query: &Query,
    weights: &RankWeights,
    all_results: Vec<ShardResult>,
    all_stats: &[ShardTermStats],
) -> Vec<BrokerResult> {
    let idf = QueryBroker::global_idf(query, all_stats);

    let mut merged: Vec<BrokerResult> = all_results
        .into_iter()
        .map(|r| {
            let tfidf: f64 = r.tfs.iter().zip(idf.iter()).map(|(tf, idf)| tf * idf).sum();
            BrokerResult {
                shard: r.shard,
                url: r.url,
                doc: r.doc,
                score: r.base_score + weights.tfidf * tfidf,
            }
        })
        .collect();
    merged.sort_by(compare_broker_results);
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invert::IndexBuilder;
    use crate::query::search;
    use ajax_crawl::model::AppModel;

    fn model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        m
    }

    fn corpus() -> Vec<AppModel> {
        vec![
            model("http://x/1", &["wow great video", "more wow content here"]),
            model("http://x/2", &["dance dance dance", "wow dance"]),
            model("http://x/3", &["nothing relevant at all"]),
            model("http://x/4", &["wow", "dance wow", "silence"]),
        ]
    }

    fn build_single(models: &[AppModel]) -> InvertedIndex {
        let mut b = IndexBuilder::new();
        for m in models {
            b.add_model(m, Some(0.25));
        }
        b.build()
    }

    fn build_sharded(models: &[AppModel], per_shard: usize) -> QueryBroker {
        let shards = models
            .chunks(per_shard)
            .map(|chunk| {
                let mut b = IndexBuilder::new();
                for m in chunk {
                    b.add_model(m, Some(0.25));
                }
                b.build()
            })
            .collect();
        QueryBroker::new(shards)
    }

    #[test]
    fn worked_example_of_section_652() {
        // Idx1: 10 states, 4 with k; Idx2: 13 states, 6 with k
        // ⇒ idf = log(23/10).
        let stats = vec![
            ShardTermStats {
                total_states: 10,
                df: vec![4],
            },
            ShardTermStats {
                total_states: 13,
                df: vec![6],
            },
        ];
        let q = Query::parse("k1");
        let idf = QueryBroker::global_idf(&q, &stats);
        assert!((idf[0] - (23.0f64 / 10.0).ln()).abs() < 1e-12);
    }

    #[test]
    fn sharded_equals_single_index() {
        let models = corpus();
        let single = build_single(&models);
        for per_shard in [1, 2, 3] {
            let broker = build_sharded(&models, per_shard);
            for q in ["wow", "dance", "wow dance", "nothing", "absent"] {
                let query = Query::parse(q);
                let merged = broker.search(&query);
                let reference = search(&single, &query, &RankWeights::default());
                assert_eq!(
                    merged.len(),
                    reference.len(),
                    "query {q:?}, per_shard {per_shard}"
                );
                for (m, r) in merged.iter().zip(reference.iter()) {
                    assert_eq!(m.url, r.url, "query {q:?}");
                    assert_eq!(m.doc.state, r.doc.state);
                    assert!(
                        (m.score - r.score).abs() < 1e-9,
                        "score mismatch for {q:?}: {} vs {}",
                        m.score,
                        r.score
                    );
                }
            }
        }
    }

    #[test]
    fn total_states_sums_shards() {
        let broker = build_sharded(&corpus(), 2);
        assert_eq!(broker.total_states(), 8);
        assert_eq!(broker.shard_count(), 2);
        assert!(broker.approx_bytes() > 0);
    }

    #[test]
    fn empty_query_empty_results() {
        let broker = build_sharded(&corpus(), 2);
        assert!(broker.search(&Query::parse("")).is_empty());
        assert!(broker.search(&Query::parse("absentterm")).is_empty());
    }

    #[test]
    fn shard_provenance_attached() {
        let broker = build_sharded(&corpus(), 1);
        let results = broker.search(&Query::parse("dance"));
        for r in &results {
            let shard = broker.shard(r.shard).unwrap();
            assert_eq!(shard.url_of(r.doc), r.url, "provenance must be consistent");
        }
        // "dance" occurs on pages 2 and 4, which live in shards 1 and 3.
        let shards: std::collections::BTreeSet<_> = results.iter().map(|r| r.shard).collect();
        assert_eq!(shards, [1usize, 3].into_iter().collect());
    }
}
