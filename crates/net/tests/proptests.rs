//! Property tests for the network substrate, chiefly the discrete-event
//! scheduler's invariants.

use ajax_net::sched::{simulate, Segment, Task};
use ajax_net::{LatencyModel, Micros};
use proptest::prelude::*;

fn task_strategy() -> impl Strategy<Value = Task> {
    proptest::collection::vec(
        prop_oneof![
            (0u64..5_000).prop_map(Segment::Cpu),
            (0u64..5_000).prop_map(Segment::Net),
        ],
        0..6,
    )
    .prop_map(Task::new)
}

proptest! {
    /// Core scheduler bounds: serial-work / perfect-speedup ≤ makespan ≤
    /// serial-work, and makespan ≥ the longest single task (a task never
    /// splits across lines).
    #[test]
    fn makespan_bounds(
        tasks in proptest::collection::vec(task_strategy(), 0..20),
        lines in 1usize..8,
        cores in 1usize..4,
    ) {
        let report = simulate(&tasks, lines, cores);
        let serial: Micros = tasks.iter().map(Task::duration).sum();
        let longest: Micros = tasks.iter().map(Task::duration).max().unwrap_or(0);
        prop_assert!(report.makespan <= serial + 1);
        prop_assert!(report.makespan + 1 >= longest);
        // Work conservation: at least serial/lines, and at least total CPU
        // divided by the cores.
        let cpu_total: Micros = tasks.iter().map(Task::cpu_total).sum();
        prop_assert!(report.makespan + 1 >= serial / lines as u64);
        prop_assert!(report.makespan + 1 >= cpu_total / cores as u64);
        prop_assert_eq!(report.serial_time, serial);
        prop_assert_eq!(report.completion.len(), tasks.len());
    }

    /// One line means strictly serial execution with prefix-sum completions.
    #[test]
    fn single_line_serial(tasks in proptest::collection::vec(task_strategy(), 0..12)) {
        let report = simulate(&tasks, 1, 2);
        let mut elapsed = 0u64;
        for (task, completion) in tasks.iter().zip(report.completion.iter()) {
            elapsed += task.duration();
            prop_assert!(completion.abs_diff(elapsed) <= 1, "{completion} vs {elapsed}");
        }
    }

    /// For purely network-bound tasks (no CPU contention), adding lines is
    /// strictly monotone: waits overlap perfectly.
    #[test]
    fn monotone_in_lines_for_network_tasks(
        durations in proptest::collection::vec(0u64..5_000, 0..16)
    ) {
        let tasks: Vec<Task> = durations
            .iter()
            .map(|&d| Task::new(vec![Segment::Net(d)]))
            .collect();
        let mut last = u64::MAX;
        for lines in [1usize, 2, 4, 8] {
            let m = simulate(&tasks, lines, 2).makespan;
            prop_assert!(m <= last.saturating_add(1), "lines={lines}: {m} > {last}");
            last = m;
        }
    }

    /// For mixed workloads, adding lines or cores may *reorder* FIFO
    /// assignment and slightly extend the makespan (Graham's scheduling
    /// anomalies) — but never beyond the classic 2x list-scheduling bound.
    #[test]
    fn anomalies_bounded(tasks in proptest::collection::vec(task_strategy(), 0..16)) {
        let baseline = simulate(&tasks, 1, 2).makespan;
        for lines in [2usize, 4, 8] {
            for cores in [1usize, 2, 4] {
                let m = simulate(&tasks, lines, cores).makespan;
                prop_assert!(
                    m <= baseline.saturating_mul(2).saturating_add(1),
                    "lines={lines} cores={cores}: {m} vs serial {baseline}"
                );
            }
        }
    }

    /// Latency models are deterministic and non-negative.
    #[test]
    fn latency_deterministic(seed in any::<u64>(), seq in 0u64..1000, bytes in 0usize..100_000) {
        let model = LatencyModel::thesis_default(seed);
        let a = model.cost("/some/url", seq, bytes);
        let b = model.cost("/some/url", seq, bytes);
        prop_assert_eq!(a, b);
    }

    /// Jitter stays within its configured spread.
    #[test]
    fn jitter_bounded(seed in any::<u64>(), seq in 0u64..500) {
        let model = LatencyModel::Jittered {
            base: Box::new(LatencyModel::Fixed(10_000)),
            spread: 0.4,
            seed,
        };
        let cost = model.cost("/u", seq, 0);
        prop_assert!((6_000..=14_000).contains(&cost), "{cost}");
    }
}
