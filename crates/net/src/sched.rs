//! Discrete-event executor for the parallel crawler's virtual time.
//!
//! The thesis parallelizes crawling with *process lines* (ch. 6): `k`
//! concurrent `SimpleAjaxCrawler` processes, each serially working through
//! URL partitions, all on one machine. Crawling is network-bound, so lines
//! overlap each other's network waits almost perfectly, while CPU work
//! contends for the machine's cores.
//!
//! This module replays per-page *traces* — alternating CPU and network
//! segments recorded by a (serial) crawl — under that execution model:
//!
//! * network segments always progress at rate 1 (the server and pipe are not
//!   the bottleneck at this scale),
//! * CPU segments progress at rate `min(1, cores / active_cpu_lines)`
//!   (egalitarian processor sharing).
//!
//! The result is the virtual makespan of the parallel crawl (Table 7.3 /
//! Fig 7.8) without needing wall-clock parallelism — though the real
//! crawler *also* runs truly in parallel via crossbeam; this model is what
//! maps its work onto the thesis' timing axis deterministically.

use crate::clock::Micros;

/// One phase of a task: either pure CPU work or a network wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Segment {
    Cpu(Micros),
    Net(Micros),
}

impl Segment {
    fn amount(self) -> Micros {
        match self {
            Segment::Cpu(a) | Segment::Net(a) => a,
        }
    }
}

/// A unit of schedulable work (one page crawl): its segments run in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Task {
    pub segments: Vec<Segment>,
}

impl Task {
    /// Builds a task from segments.
    pub fn new(segments: Vec<Segment>) -> Self {
        Self { segments }
    }

    /// Total CPU work in the task.
    pub fn cpu_total(&self) -> Micros {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Cpu(a) => Some(*a),
                Segment::Net(_) => None,
            })
            .sum()
    }

    /// Total network wait in the task.
    pub fn net_total(&self) -> Micros {
        self.segments
            .iter()
            .filter_map(|s| match s {
                Segment::Net(a) => Some(*a),
                Segment::Cpu(_) => None,
            })
            .sum()
    }

    /// Serial duration of the task (sum of all segments).
    pub fn duration(&self) -> Micros {
        self.cpu_total() + self.net_total()
    }
}

/// Result of a simulated parallel execution.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Virtual wall-clock time until the last line finished.
    pub makespan: Micros,
    /// Sum of all task durations (== serial execution time).
    pub serial_time: Micros,
    /// Completion time of every task, in submission order.
    pub completion: Vec<Micros>,
    /// Start time of every task (when a line pulled it), in submission
    /// order. Lets trace consumers place each task's serial-local events
    /// on the virtual timeline deterministically.
    pub start: Vec<Micros>,
    /// Which line executed each task, in submission order.
    pub line_of_task: Vec<usize>,
    /// Busy time per line.
    pub line_busy: Vec<Micros>,
}

impl SimReport {
    /// Parallel speedup over serial execution.
    pub fn speedup(&self) -> f64 {
        if self.makespan == 0 {
            1.0
        } else {
            self.serial_time as f64 / self.makespan as f64
        }
    }
}

/// State of one process line during simulation.
struct Line {
    /// Index of the task being executed.
    task: usize,
    /// Index of the current segment within the task.
    segment: usize,
    /// Remaining work in the current segment (micros of work).
    remaining: f64,
    /// Whether the current segment is CPU.
    is_cpu: bool,
    busy: f64,
}

/// Simulates `tasks` over `lines` process lines sharing `cores` CPU cores.
/// Tasks are assigned to lines in FIFO order, matching the thesis'
/// `MPAjaxCrawler::getPartitionID()` dispatch.
pub fn simulate(tasks: &[Task], lines: usize, cores: usize) -> SimReport {
    let lines = lines.max(1);
    let cores = cores.max(1);
    let serial_time: Micros = tasks.iter().map(Task::duration).sum();
    let mut completion = vec![0u64; tasks.len()];
    let mut start = vec![0u64; tasks.len()];
    let mut line_of_task = vec![0usize; tasks.len()];

    let mut next_task = 0usize;
    let mut active: Vec<Line> = Vec::with_capacity(lines);
    let mut line_busy = vec![0.0f64; lines];
    let mut line_of: Vec<usize> = Vec::new(); // active[i] runs on line line_of[i]
    let mut idle_lines: Vec<usize> = (0..lines).rev().collect();
    let mut now = 0.0f64;

    // Pulls the next task onto an idle line, skipping empty tasks.
    #[allow(clippy::too_many_arguments)]
    fn start_task(
        tasks: &[Task],
        next_task: &mut usize,
        completion: &mut [Micros],
        start: &mut [Micros],
        line_of_task: &mut [usize],
        line_id: usize,
        now: f64,
    ) -> Option<(usize, Line)> {
        while *next_task < tasks.len() {
            let idx = *next_task;
            *next_task += 1;
            let task = &tasks[idx];
            start[idx] = now.round() as Micros;
            line_of_task[idx] = line_id;
            if let Some(seg) = task.segments.iter().position(|s| s.amount() > 0) {
                return Some((
                    idx,
                    Line {
                        task: idx,
                        segment: seg,
                        remaining: task.segments[seg].amount() as f64,
                        is_cpu: matches!(task.segments[seg], Segment::Cpu(_)),
                        busy: 0.0,
                    },
                ));
            }
            // Task with no work completes instantly.
            completion[idx] = now.round() as Micros;
        }
        None
    }

    loop {
        // Fill idle lines.
        while let Some(&line_id) = idle_lines.last() {
            match start_task(
                tasks,
                &mut next_task,
                &mut completion,
                &mut start,
                &mut line_of_task,
                line_id,
                now,
            ) {
                Some((_, line)) => {
                    idle_lines.pop();
                    active.push(line);
                    line_of.push(line_id);
                }
                None => break,
            }
        }
        if active.is_empty() {
            break;
        }

        // Rates under processor sharing.
        let cpu_count = active.iter().filter(|l| l.is_cpu).count();
        let cpu_rate = if cpu_count == 0 {
            1.0
        } else {
            (cores as f64 / cpu_count as f64).min(1.0)
        };

        // Time until the first segment completes.
        let mut dt = f64::INFINITY;
        for line in &active {
            let rate = if line.is_cpu { cpu_rate } else { 1.0 };
            dt = dt.min(line.remaining / rate);
        }
        debug_assert!(dt.is_finite() && dt >= 0.0);
        now += dt;

        // Progress everyone; collect finishers.
        let mut i = 0;
        while i < active.len() {
            let rate = if active[i].is_cpu { cpu_rate } else { 1.0 };
            active[i].remaining -= dt * rate;
            active[i].busy += dt;
            if active[i].remaining <= 1e-9 {
                // Advance to the next non-empty segment.
                let task_idx = active[i].task;
                let task = &tasks[task_idx];
                let mut seg = active[i].segment + 1;
                while seg < task.segments.len() && task.segments[seg].amount() == 0 {
                    seg += 1;
                }
                if seg < task.segments.len() {
                    active[i].segment = seg;
                    active[i].remaining = task.segments[seg].amount() as f64;
                    active[i].is_cpu = matches!(task.segments[seg], Segment::Cpu(_));
                    i += 1;
                } else {
                    // Task done; free the line.
                    completion[task_idx] = now.round() as Micros;
                    let line_id = line_of[i];
                    line_busy[line_id] += active[i].busy;
                    active.swap_remove(i);
                    line_of.swap_remove(i);
                    idle_lines.push(line_id);
                }
            } else {
                i += 1;
            }
        }
    }

    SimReport {
        makespan: now.round() as Micros,
        serial_time,
        completion,
        start,
        line_of_task,
        line_busy: line_busy.into_iter().map(|b| b.round() as Micros).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net_task(us: Micros) -> Task {
        Task::new(vec![Segment::Net(us)])
    }
    fn cpu_task(us: Micros) -> Task {
        Task::new(vec![Segment::Cpu(us)])
    }

    #[test]
    fn single_line_is_serial() {
        let tasks = vec![net_task(100), cpu_task(50), net_task(25)];
        let report = simulate(&tasks, 1, 4);
        assert_eq!(report.makespan, 175);
        assert_eq!(report.serial_time, 175);
        assert_eq!(report.completion, vec![100, 150, 175]);
        assert!((report.speedup() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn network_overlaps_perfectly() {
        let tasks: Vec<_> = (0..4).map(|_| net_task(1_000)).collect();
        let report = simulate(&tasks, 4, 1);
        assert_eq!(report.makespan, 1_000, "net waits overlap fully");
        assert!((report.speedup() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn cpu_contends_for_cores() {
        let tasks: Vec<_> = (0..4).map(|_| cpu_task(1_000)).collect();
        // 4 lines, 2 cores: processor sharing halves each line's rate.
        let report = simulate(&tasks, 4, 2);
        assert_eq!(report.makespan, 2_000);
        // 4 lines, 4 cores: full speed.
        let report = simulate(&tasks, 4, 4);
        assert_eq!(report.makespan, 1_000);
    }

    #[test]
    fn mixed_workload_between_bounds() {
        // Each task: 200µs CPU + 800µs net. 4 lines, 2 cores.
        let tasks: Vec<_> = (0..8)
            .map(|_| Task::new(vec![Segment::Cpu(200), Segment::Net(800)]))
            .collect();
        let report = simulate(&tasks, 4, 2);
        let serial = report.serial_time;
        assert_eq!(serial, 8 * 1_000);
        // Better than 2x (CPU bound would cap at cores=2), worse than 8x.
        let speedup = report.speedup();
        assert!(
            speedup > 2.0 && speedup <= 4.0 + 1e-9,
            "speedup = {speedup}"
        );
    }

    #[test]
    fn fifo_assignment() {
        // Two lines, three tasks: third task starts when the *first* line
        // frees up (after 100), finishing at 100 + 300 = 400.
        let tasks = vec![net_task(100), net_task(500), net_task(300)];
        let report = simulate(&tasks, 2, 4);
        assert_eq!(report.completion, vec![100, 500, 400]);
        assert_eq!(report.makespan, 500);
        assert_eq!(report.start, vec![0, 0, 100]);
        // Task 2 reuses the line task 0 ran on.
        assert_eq!(report.line_of_task[2], report.line_of_task[0]);
        assert_ne!(report.line_of_task[0], report.line_of_task[1]);
    }

    #[test]
    fn start_times_and_lines_are_deterministic() {
        let tasks: Vec<_> = (0..6)
            .map(|i| Task::new(vec![Segment::Cpu(50 + i * 13), Segment::Net(200)]))
            .collect();
        let a = simulate(&tasks, 3, 2);
        let b = simulate(&tasks, 3, 2);
        assert_eq!(a.start, b.start);
        assert_eq!(a.line_of_task, b.line_of_task);
        for (i, (&s, &c)) in a.start.iter().zip(&a.completion).enumerate() {
            assert!(s <= c, "task {i} starts before it completes");
        }
        for &line in &a.line_of_task {
            assert!(line < 3);
        }
    }

    #[test]
    fn empty_and_zero_tasks() {
        let report = simulate(&[], 4, 2);
        assert_eq!(report.makespan, 0);
        let report = simulate(&[Task::default(), net_task(10)], 2, 2);
        assert_eq!(report.makespan, 10);
        assert_eq!(report.completion[0], 0);
    }

    #[test]
    fn zero_length_segments_skipped() {
        let t = Task::new(vec![Segment::Cpu(0), Segment::Net(5), Segment::Cpu(0)]);
        let report = simulate(&[t], 1, 1);
        assert_eq!(report.makespan, 5);
    }

    #[test]
    fn line_busy_accounted() {
        let tasks = vec![net_task(100), net_task(100)];
        let report = simulate(&tasks, 2, 1);
        assert_eq!(report.line_busy, vec![100, 100]);
    }

    #[test]
    fn task_totals() {
        let t = Task::new(vec![Segment::Cpu(10), Segment::Net(20), Segment::Cpu(5)]);
        assert_eq!(t.cpu_total(), 15);
        assert_eq!(t.net_total(), 20);
        assert_eq!(t.duration(), 35);
    }

    #[test]
    fn more_lines_never_slower() {
        let tasks: Vec<_> = (0..20)
            .map(|i| Task::new(vec![Segment::Cpu(100 + i * 7), Segment::Net(900 - i * 11)]))
            .collect();
        let mut last = u64::MAX;
        for lines in [1, 2, 4, 8] {
            let m = simulate(&tasks, lines, 2).makespan;
            assert!(m <= last, "lines={lines} makespan={m} > previous {last}");
            last = m;
        }
    }
}
