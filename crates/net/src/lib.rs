//! # ajax-net
//!
//! The network substrate for the AJAX Crawl reproduction. The original
//! evaluation ran against the live 2008 YouTube over real HTTP; that is
//! neither available nor reproducible, so this crate simulates it:
//!
//! * [`Server`] — the remote application; implementors (e.g. the VidShare
//!   workload of `ajax-webgen`) answer [`Request`]s with [`Response`]s purely
//!   as a function of the request (the thesis assumes *statelessness of the
//!   server* and *snapshot isolation*, §4.3 — a pure function gives us both).
//! * [`SimClock`] — a virtual clock in microseconds. Crawlers charge network
//!   latencies and CPU costs to it; experiment "times" are read from it,
//!   making every timing experiment deterministic.
//! * [`LatencyModel`] — connect + transfer + deterministic jitter; calibrated
//!   defaults approximate the thesis' observed page times.
//! * [`NetClient`] — fetch with per-request accounting (request count, bytes,
//!   cumulative network time): the raw data behind Figs. 7.5–7.7.
//! * [`FaultPlan`] — deterministic fault injection (timeouts, drops,
//!   transient/permanent errors, latency spikes) layered onto the client;
//!   every fault decision is a pure function of `(seed, url, attempt)` so
//!   degraded-mode experiments stay bit-reproducible.
//! * [`FaultProxy`] — the same deterministic fault decisions applied to
//!   *real* localhost TCP: a forwarding proxy used to chaos-test the
//!   distributed serving tier (`ajax-dist`) with connection refusals, slow
//!   transfers, and mid-stream drops.
//! * [`sched`] — a discrete-event executor that replays per-page CPU/network
//!   traces over *k* "process lines" sharing *m* CPU cores: the virtual-time
//!   model of the parallel crawler (thesis ch. 6, Table 7.3 / Fig 7.8).
//!   Network waits overlap freely; CPU contends via processor sharing.

pub mod clock;
pub mod fault;
pub mod latency;
pub mod network;
pub mod proxy;
pub mod sched;
pub mod server;
pub mod url;

pub use clock::{Micros, SimClock};
pub use fault::{Fault, FaultDecision, FaultPlan, FaultRule, NetError};
pub use latency::LatencyModel;
pub use network::{NetClient, NetStats};
pub use proxy::{FaultProxy, ProxyConfig};
pub use sched::{simulate, Segment, SimReport, Task};
pub use server::{Request, Response, Server};
pub use url::Url;
