//! The remote application: requests, responses and the [`Server`] trait.

use crate::url::Url;

/// An HTTP-ish request. The crawler only issues GETs, but the method field
/// keeps the model honest (the thesis explicitly avoids update events, §4.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: Method,
    pub url: Url,
}

/// Request method.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    Get,
    Post,
}

impl Request {
    /// Builds a GET request.
    pub fn get(url: impl Into<Url>) -> Self {
        Self {
            method: Method::Get,
            url: url.into(),
        }
    }
}

/// An HTTP-ish response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub content_type: String,
    pub body: String,
}

impl Response {
    /// 200 with `text/html`.
    pub fn html(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/html".into(),
            body: body.into(),
        }
    }

    /// 200 with `text/plain`.
    pub fn text(body: impl Into<String>) -> Self {
        Self {
            status: 200,
            content_type: "text/plain".into(),
            body: body.into(),
        }
    }

    /// 404.
    pub fn not_found() -> Self {
        Self {
            status: 404,
            content_type: "text/plain".into(),
            body: "not found".into(),
        }
    }

    /// 500.
    pub fn server_error(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            content_type: "text/plain".into(),
            body: message.into(),
        }
    }

    /// True for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// Response size in bytes (used by transfer-time latency models).
    pub fn len(&self) -> usize {
        self.body.len()
    }

    /// True when the body is empty.
    pub fn is_empty(&self) -> bool {
        self.body.is_empty()
    }
}

/// The remote application. Implementations must be pure functions of the
/// request (thesis §4.3: snapshot isolation + server statelessness), which
/// also makes them trivially shareable across parallel crawler threads.
pub trait Server: Send + Sync {
    /// Handles one request.
    fn handle(&self, request: &Request) -> Response;

    /// A short name for diagnostics.
    fn name(&self) -> &str {
        "server"
    }
}

/// A server built from a closure — convenient in tests.
pub struct FnServer<F>(pub F);

impl<F> Server for FnServer<F>
where
    F: Fn(&Request) -> Response + Send + Sync,
{
    fn handle(&self, request: &Request) -> Response {
        (self.0)(request)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_server_routes() {
        let server = FnServer(|req: &Request| {
            if req.url.path == "/ok" {
                Response::text("yes")
            } else {
                Response::not_found()
            }
        });
        assert_eq!(server.handle(&Request::get("/ok")).body, "yes");
        assert_eq!(server.handle(&Request::get("/other")).status, 404);
    }

    #[test]
    fn response_helpers() {
        assert!(Response::html("<p>x</p>").is_ok());
        assert!(!Response::not_found().is_ok());
        assert!(!Response::server_error("boom").is_ok());
        assert_eq!(Response::text("abc").len(), 3);
    }
}
