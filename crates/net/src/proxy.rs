//! A chaos proxy: [`FaultPlan`] over real TCP.
//!
//! The crawl-side fault machinery ([`crate::fault`]) injects failures into
//! the *simulated* network. Distributed serving (`ajax-dist`) runs over real
//! localhost sockets, so chaos testing needs the same deterministic
//! decisions applied to actual byte streams: [`FaultProxy`] listens on an
//! ephemeral port, forwards every accepted connection to one upstream
//! address, and consults a `FaultPlan` at two points:
//!
//! * **at accept** — decision for `fault://<label>/accept` with the
//!   connection ordinal as the attempt. `Fail`/`Drop` close the client
//!   immediately (connect storms, dead shards); `Timeout` accepts but never
//!   forwards (a black-holed shard); `Transient` rules make the first N
//!   connections fail and later ones succeed — exactly what reconnect
//!   backoff needs.
//! * **per reply chunk** — decision for `fault://<label>/reply` with a
//!   per-connection chunk ordinal, applied to the upstream→client direction.
//!   `Slow { factor }` sleeps `slow_chunk_micros × (factor − 1)` before
//!   forwarding the chunk (a slow transfer); `Drop`/`Timeout`/`Fail` sever
//!   the connection mid-transfer.
//!
//! Decisions come from the same pure `(seed, rule, url, attempt)` roll as
//! the simulated network, so a given plan produces the same fault sequence
//! on every run. Sleeps are real wall time — this is a latency-injection
//! tool for p99 experiments, not a virtual-clock model.

use crate::fault::{FaultDecision, FaultPlan};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How a [`FaultProxy`] interprets its plan.
#[derive(Debug, Clone)]
pub struct ProxyConfig {
    /// The deterministic fault schedule.
    pub plan: FaultPlan,
    /// Nominal per-chunk transfer time used to scale `Slow { factor }`
    /// faults: a slowed chunk is delayed `slow_chunk_micros × (factor − 1)`.
    pub slow_chunk_micros: u64,
}

impl ProxyConfig {
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            slow_chunk_micros: 500,
        }
    }

    pub fn with_slow_chunk_micros(mut self, micros: u64) -> Self {
        self.slow_chunk_micros = micros;
        self
    }
}

/// A live chaos proxy in front of one upstream address. Dropping (or
/// calling [`FaultProxy::shutdown`]) stops the accept loop; in-flight
/// forwarders die with their connections.
pub struct FaultProxy {
    /// The address clients should connect to instead of the upstream.
    pub addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<JoinHandle<()>>,
}

impl FaultProxy {
    /// Binds an ephemeral localhost port and starts proxying to `upstream`.
    /// `label` scopes the plan's URL patterns: decisions are rolled for
    /// `fault://<label>/accept` and `fault://<label>/reply`, so one plan can
    /// target individual shards (`FaultRule::matching("shard1/reply", …)`).
    pub fn spawn(
        upstream: SocketAddr,
        label: impl Into<String>,
        config: ProxyConfig,
    ) -> std::io::Result<Self> {
        let label = label.into();
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        let addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept = {
            let shutdown = Arc::clone(&shutdown);
            std::thread::Builder::new()
                .name(format!("fault-proxy-{label}"))
                .spawn(move || accept_loop(listener, upstream, &label, &config, &shutdown))?
        };
        Ok(Self {
            addr,
            shutdown,
            accept: Some(accept),
        })
    }

    /// Stops accepting new connections (idempotent). Established
    /// connections keep flowing until either side closes.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for FaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    listener: TcpListener,
    upstream: SocketAddr,
    label: &str,
    config: &ProxyConfig,
    shutdown: &AtomicBool,
) {
    let accept_url = format!("fault://{label}/accept");
    let reply_url = format!("fault://{label}/reply");
    let mut conn_no: u32 = 0;
    loop {
        let Ok((client, _)) = listener.accept() else {
            return;
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        let decision = config.plan.decide(&accept_url, conn_no);
        conn_no = conn_no.wrapping_add(1);
        match decision {
            FaultDecision::Fail { .. } | FaultDecision::Drop => {
                // Refused at the door: the client sees an immediate close.
                drop(client);
            }
            FaultDecision::Timeout => {
                // Black hole: hold the connection open, forward nothing.
                std::thread::spawn(move || {
                    let mut sink = [0u8; 4096];
                    let mut client = client;
                    while matches!(client.read(&mut sink), Ok(n) if n > 0) {}
                });
            }
            FaultDecision::None | FaultDecision::Slow { .. } => {
                let Ok(server) = TcpStream::connect(upstream) else {
                    drop(client);
                    continue;
                };
                // Forward each chunk immediately — Nagle on either hop would
                // add artificial, un-planned latency on top of the plan's.
                let _ = client.set_nodelay(true);
                let _ = server.set_nodelay(true);
                forward_pair(client, server, &reply_url, config);
            }
        }
    }
}

/// Spawns the two forwarding directions for one proxied connection.
/// Requests (client→upstream) pass through untouched; replies
/// (upstream→client) go through the per-chunk fault roll.
fn forward_pair(client: TcpStream, server: TcpStream, reply_url: &str, config: &ProxyConfig) {
    let (Ok(client_rd), Ok(server_rd)) = (client.try_clone(), server.try_clone()) else {
        return;
    };
    std::thread::spawn(move || copy_until_eof(client_rd, server));
    let reply_url = reply_url.to_string();
    let plan = config.plan.clone();
    let slow_chunk_micros = config.slow_chunk_micros;
    std::thread::spawn(move || {
        forward_replies(server_rd, client, &reply_url, &plan, slow_chunk_micros)
    });
}

fn copy_until_eof(mut from: TcpStream, mut to: TcpStream) {
    let mut buf = [0u8; 64 * 1024];
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

fn forward_replies(
    mut from: TcpStream,
    mut to: TcpStream,
    reply_url: &str,
    plan: &FaultPlan,
    slow_chunk_micros: u64,
) {
    let mut buf = [0u8; 64 * 1024];
    let mut chunk_no: u32 = 0;
    loop {
        match from.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => {
                let decision = plan.decide(reply_url, chunk_no);
                chunk_no = chunk_no.wrapping_add(1);
                match decision {
                    FaultDecision::Slow { factor } => {
                        let delay = (slow_chunk_micros as f64 * (factor - 1.0).max(0.0)) as u64;
                        std::thread::sleep(Duration::from_micros(delay));
                    }
                    FaultDecision::Drop | FaultDecision::Timeout | FaultDecision::Fail { .. } => {
                        // Sever mid-transfer; both sides see a dead socket.
                        break;
                    }
                    FaultDecision::None => {}
                }
                if to.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
        }
    }
    let _ = to.shutdown(Shutdown::Both);
    let _ = from.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultRule};

    /// An upstream that echoes each received chunk back, doubled.
    fn spawn_echo() -> SocketAddr {
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(mut stream) = stream else { return };
                std::thread::spawn(move || {
                    let mut buf = [0u8; 1024];
                    while let Ok(n) = stream.read(&mut buf) {
                        if n == 0 {
                            return;
                        }
                        let mut doubled = Vec::with_capacity(n * 2);
                        doubled.extend_from_slice(&buf[..n]);
                        doubled.extend_from_slice(&buf[..n]);
                        if stream.write_all(&doubled).is_err() {
                            return;
                        }
                    }
                });
            }
        });
        addr
    }

    fn round_trip(addr: SocketAddr, payload: &[u8]) -> std::io::Result<Vec<u8>> {
        let mut stream = TcpStream::connect(addr)?;
        stream.write_all(payload)?;
        let mut out = vec![0u8; payload.len() * 2];
        stream.read_exact(&mut out)?;
        Ok(out)
    }

    #[test]
    fn empty_plan_forwards_transparently() {
        let upstream = spawn_echo();
        let proxy =
            FaultProxy::spawn(upstream, "echo", ProxyConfig::new(FaultPlan::new(1))).unwrap();
        let out = round_trip(proxy.addr, b"hello").unwrap();
        assert_eq!(&out, b"hellohello");
    }

    #[test]
    fn accept_faults_close_connections_deterministically() {
        let upstream = spawn_echo();
        let plan = FaultPlan::new(3).with_rule(FaultRule::matching(
            "/accept",
            1.0,
            Fault::Flaky { status: 503 },
        ));
        let mut proxy = FaultProxy::spawn(upstream, "dead", ProxyConfig::new(plan)).unwrap();
        // Every connection is refused: writes may land in the socket buffer,
        // but the echo never comes back.
        let err = round_trip(proxy.addr, b"hi");
        assert!(err.is_err(), "refused connection cannot echo");
        proxy.shutdown();
        proxy.shutdown(); // idempotent
    }

    #[test]
    fn transient_accept_fault_recovers_for_later_connections() {
        let upstream = spawn_echo();
        // First 2 connections per the transient rule fail, later ones work —
        // the shape reconnect backoff relies on.
        let plan = FaultPlan::new(5).with_rule(FaultRule::matching(
            "/accept",
            1.0,
            Fault::Transient {
                status: 503,
                fail_attempts: 2,
            },
        ));
        let proxy = FaultProxy::spawn(upstream, "s0", ProxyConfig::new(plan)).unwrap();
        let mut failures = 0;
        for _ in 0..2 {
            if round_trip(proxy.addr, b"x").is_err() {
                failures += 1;
            }
        }
        assert_eq!(failures, 2, "first two connections are refused");
        let out = round_trip(proxy.addr, b"back").unwrap();
        assert_eq!(&out, b"backback");
    }

    #[test]
    fn slow_fault_delays_replies_without_corrupting_them() {
        let upstream = spawn_echo();
        let plan = FaultPlan::new(7).with_rule(FaultRule::matching(
            "/reply",
            1.0,
            Fault::Slow { factor: 11.0 },
        ));
        let config = ProxyConfig::new(plan).with_slow_chunk_micros(2_000);
        let proxy = FaultProxy::spawn(upstream, "slow", config).unwrap();
        let start = std::time::Instant::now();
        let out = round_trip(proxy.addr, b"payload").unwrap();
        assert_eq!(&out, b"payloadpayload");
        // 2000 µs × (11 − 1) = 20 ms minimum injected delay.
        assert!(
            start.elapsed() >= Duration::from_millis(15),
            "slow fault must inject measurable delay, took {:?}",
            start.elapsed()
        );
    }
}
