//! Latency models.
//!
//! The thesis' crawl times are dominated by network round trips to YouTube.
//! We model a request's cost as `connect + body_bytes / bandwidth`, optionally
//! perturbed by a *deterministic* jitter derived from the URL and a sequence
//! number, so experiments are reproducible run-to-run yet per-request times
//! vary realistically (needed for the crawl-time distribution, Fig 7.3).

use crate::clock::Micros;
use ajax_dom::hash::Fnv64;

/// How long a request takes.
#[derive(Debug, Clone, PartialEq)]
pub enum LatencyModel {
    /// Free networking (useful in unit tests).
    Zero,
    /// A constant per request.
    Fixed(Micros),
    /// `connect + ceil(bytes / bytes_per_micro)` — connection setup plus
    /// transfer time.
    Linear {
        connect: Micros,
        /// Bandwidth in bytes per microsecond (1 byte/µs = ~1 MB/s).
        bytes_per_micro: f64,
    },
    /// Wraps another model with multiplicative jitter in
    /// `[1 - spread, 1 + spread]`, derived deterministically from
    /// `(seed, url, seq)`.
    Jittered {
        base: Box<LatencyModel>,
        /// e.g. `0.3` for ±30 %.
        spread: f64,
        seed: u64,
    },
}

impl LatencyModel {
    /// The default model used by the experiments: ~60 ms connect, ~1 MB/s
    /// transfer, ±40 % jitter. With VidShare page sizes this lands close to
    /// the thesis' observed per-page crawl times (~1.7 s traditional pages
    /// once parse/model costs are added).
    pub fn thesis_default(seed: u64) -> Self {
        LatencyModel::Jittered {
            base: Box::new(LatencyModel::Linear {
                connect: 60_000,
                bytes_per_micro: 1.0,
            }),
            spread: 0.4,
            seed,
        }
    }

    /// Computes the cost of fetching `url` (the `seq`-th request overall)
    /// with a response body of `response_bytes`.
    pub fn cost(&self, url: &str, seq: u64, response_bytes: usize) -> Micros {
        match self {
            LatencyModel::Zero => 0,
            LatencyModel::Fixed(us) => *us,
            LatencyModel::Linear {
                connect,
                bytes_per_micro,
            } => {
                let transfer = if *bytes_per_micro > 0.0 {
                    (response_bytes as f64 / bytes_per_micro).ceil() as Micros
                } else {
                    0
                };
                connect + transfer
            }
            LatencyModel::Jittered { base, spread, seed } => {
                let base_cost = base.cost(url, seq, response_bytes) as f64;
                let mut h = Fnv64::new();
                h.write_u64(*seed);
                h.write_str(url);
                h.write_u64(seq);
                // Map the hash to [-1, 1).
                let unit = (h.finish() >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                let factor = 1.0 + spread * (2.0 * unit - 1.0);
                (base_cost * factor.max(0.0)).round() as Micros
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_and_zero() {
        assert_eq!(LatencyModel::Zero.cost("/x", 0, 1000), 0);
        assert_eq!(LatencyModel::Fixed(42).cost("/x", 7, 1000), 42);
    }

    #[test]
    fn linear_scales_with_bytes() {
        let m = LatencyModel::Linear {
            connect: 100,
            bytes_per_micro: 2.0,
        };
        assert_eq!(m.cost("/x", 0, 0), 100);
        assert_eq!(m.cost("/x", 0, 200), 200);
    }

    #[test]
    fn jitter_is_deterministic_and_bounded() {
        let m = LatencyModel::Jittered {
            base: Box::new(LatencyModel::Fixed(1000)),
            spread: 0.3,
            seed: 7,
        };
        let a = m.cost("/watch?v=1", 0, 0);
        let b = m.cost("/watch?v=1", 0, 0);
        assert_eq!(a, b, "same inputs, same jitter");
        for seq in 0..200 {
            let c = m.cost("/watch?v=1", seq, 0);
            assert!((700..=1300).contains(&c), "jitter out of bounds: {c}");
        }
    }

    #[test]
    fn jitter_varies_across_requests() {
        let m = LatencyModel::Jittered {
            base: Box::new(LatencyModel::Fixed(1000)),
            spread: 0.3,
            seed: 7,
        };
        let costs: std::collections::HashSet<_> = (0..50).map(|s| m.cost("/u", s, 0)).collect();
        assert!(costs.len() > 10, "expected spread, got {costs:?}");
    }

    #[test]
    fn different_seeds_differ() {
        let mk = |seed| LatencyModel::Jittered {
            base: Box::new(LatencyModel::Fixed(10_000)),
            spread: 0.4,
            seed,
        };
        let a: Vec<_> = (0..20).map(|s| mk(1).cost("/u", s, 0)).collect();
        let b: Vec<_> = (0..20).map(|s| mk(2).cost("/u", s, 0)).collect();
        assert_ne!(a, b);
    }
}
