//! Deterministic fault injection.
//!
//! The thesis crawled the live 2008 YouTube over a real, flaky network —
//! 187,980 events for the 10k-video corpus — yet the simulated substrate is
//! a perfect world where every request succeeds. This module closes that
//! gap without giving up reproducibility: a [`FaultPlan`] is a seeded set of
//! per-URL-pattern rules, and every fault decision is a pure function of
//! `(seed, rule, url, attempt)`, so two runs with the same plan inject the
//! *bit-identical* fault sequence. All fault costs (timeout budgets, dropped
//! connections, latency spikes) are charged to the virtual [`SimClock`],
//! keeping timing experiments deterministic even in degraded mode.
//!
//! [`SimClock`]: crate::clock::SimClock

use crate::clock::Micros;
use ajax_dom::hash::Fnv64;
use std::fmt;

/// Transport-level failure surfaced by the fallible fetch path
/// ([`NetClient::try_fetch_timed`]): the request never produced an HTTP
/// response at all. Non-2xx responses are *not* `NetError`s — the transport
/// worked, the server just said no.
///
/// [`NetClient::try_fetch_timed`]: crate::network::NetClient::try_fetch_timed
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// No response within the virtual request timeout; `after` is the
    /// virtual time burned waiting (already charged to the clock).
    Timeout { url: String, after: Micros },
    /// The connection dropped mid-transfer; the response never arrived
    /// whole. `after` is the virtual time burned before the drop.
    Dropped { url: String, after: Micros },
}

impl NetError {
    /// The URL the failed request was for.
    pub fn url(&self) -> &str {
        match self {
            NetError::Timeout { url, .. } | NetError::Dropped { url, .. } => url,
        }
    }

    /// Virtual time the failed attempt burned (already on the clock).
    pub fn cost(&self) -> Micros {
        match self {
            NetError::Timeout { after, .. } | NetError::Dropped { after, .. } => *after,
        }
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout { url, after } => {
                write!(f, "timeout after {after} µs fetching {url}")
            }
            NetError::Dropped { url, .. } => write!(f, "connection dropped fetching {url}"),
        }
    }
}

impl std::error::Error for NetError {}

/// What a matching [`FaultRule`] does to a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Fault {
    /// The URL fails its first `fail_attempts` attempts with `status`, then
    /// succeeds — the classic transient-5xx shape. Selection is per-URL
    /// (attempt-independent), so a selected URL deterministically recovers
    /// once retried often enough.
    Transient { status: u16, fail_attempts: u32 },
    /// Every attempt fails with `status`: a permanently dead endpoint.
    /// Selection is per-URL — deadness is a property of the URL, not of the
    /// attempt — which is what quarantine policies are for.
    Permanent { status: u16 },
    /// This attempt fails with `status`; the next attempt re-rolls.
    Flaky { status: u16 },
    /// This attempt times out (no response; costs the plan's timeout
    /// budget). Re-rolled per attempt.
    Timeout,
    /// The connection drops mid-transfer on this attempt. Re-rolled per
    /// attempt.
    Drop,
    /// The response arrives, but `factor`× slower (latency spike).
    /// Re-rolled per attempt.
    Slow { factor: f64 },
}

/// One fault rule: which URLs it matches, how often it fires, and what it
/// injects. Rules are evaluated in order; the first one that fires wins.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultRule {
    /// Substring matched against the full URL (`""` matches everything).
    pub pattern: String,
    /// Probability in `[0, 1]` that the rule fires for a matching request.
    pub rate: f64,
    /// The fault injected when the rule fires.
    pub fault: Fault,
}

impl FaultRule {
    /// A rule matching every URL.
    pub fn any(rate: f64, fault: Fault) -> Self {
        Self {
            pattern: String::new(),
            rate,
            fault,
        }
    }

    /// A rule matching URLs containing `pattern`.
    pub fn matching(pattern: impl Into<String>, rate: f64, fault: Fault) -> Self {
        Self {
            pattern: pattern.into(),
            rate,
            fault,
        }
    }
}

/// The decision for one `(url, attempt)` pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultDecision {
    /// No fault: the request proceeds normally.
    None,
    /// The request "reaches" the server but yields an injected error status.
    Fail { status: u16 },
    /// The request times out.
    Timeout,
    /// The connection drops mid-transfer.
    Drop,
    /// The response is delivered `factor`× slower.
    Slow { factor: f64 },
}

/// A seeded, reproducible fault schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed mixed into every fault roll.
    pub seed: u64,
    /// Ordered rules; first firing rule wins.
    pub rules: Vec<FaultRule>,
    /// Virtual time a timed-out request burns before giving up.
    pub timeout_micros: Micros,
    /// Virtual time a dropped connection burns before failing.
    pub drop_micros: Micros,
}

impl FaultPlan {
    /// An empty plan (injects nothing) with the default budgets.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            rules: Vec::new(),
            timeout_micros: 2_000_000,
            drop_micros: 300_000,
        }
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: FaultRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Sets the virtual timeout budget.
    pub fn with_timeout_micros(mut self, micros: Micros) -> Self {
        self.timeout_micros = micros;
        self
    }

    /// The standard transient mix used by the fault-sweep experiments:
    /// `rate` is split across flaky 503s (half), timeouts (a quarter) and
    /// connection drops (a quarter), all per-attempt, so retries with
    /// backoff recover everything eventually.
    pub fn transient_mix(seed: u64, rate: f64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        Self::new(seed)
            .with_rule(FaultRule::any(rate * 0.5, Fault::Flaky { status: 503 }))
            .with_rule(FaultRule::any(rate * 0.25, Fault::Timeout))
            .with_rule(FaultRule::any(rate * 0.25, Fault::Drop))
    }

    /// Parses a CLI-style spec: comma-separated `key=value` clauses.
    ///
    /// * `seed=N` — the plan seed (default 0);
    /// * `rate=R` — shorthand for the standard transient mix at rate `R`;
    /// * `flaky=R[:STATUS]` — per-attempt 5xx at rate `R` (default 503);
    /// * `timeout=R` — per-attempt timeouts at rate `R`;
    /// * `drop=R` — per-attempt connection drops at rate `R`;
    /// * `slow=R[:FACTOR]` — latency spikes at rate `R` (default 5×);
    /// * `transient=R[:N[:STATUS]]` — `R` of URLs fail their first `N`
    ///   attempts (default 2) with `STATUS` (default 503), then succeed;
    /// * `dead=R[:STATUS]` — `R` of URLs are permanently dead;
    /// * `dead_pattern=SUBSTR` — URLs containing `SUBSTR` are always dead;
    /// * `timeout_ms=N` / `drop_ms=N` — virtual fault budgets.
    ///
    /// Example: `seed=42,rate=0.3,dead_pattern=/legacy`.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new(0);
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause {clause:?} is not key=value"))?;
            let (key, value) = (key.trim(), value.trim());
            let mut parts = value.split(':');
            let head = parts.next().unwrap_or_default();
            let rate = || -> Result<f64, String> {
                head.parse::<f64>()
                    .map_err(|_| format!("{key}: bad rate {head:?}"))
            };
            match key {
                "seed" => {
                    plan.seed = head
                        .parse()
                        .map_err(|_| format!("seed: bad value {head:?}"))?
                }
                "timeout_ms" => {
                    plan.timeout_micros = head
                        .parse::<u64>()
                        .map_err(|_| format!("timeout_ms: bad value {head:?}"))?
                        * 1_000
                }
                "drop_ms" => {
                    plan.drop_micros = head
                        .parse::<u64>()
                        .map_err(|_| format!("drop_ms: bad value {head:?}"))?
                        * 1_000
                }
                "rate" => {
                    let mix = FaultPlan::transient_mix(plan.seed, rate()?);
                    plan.rules.extend(mix.rules);
                }
                "flaky" => {
                    let status = parse_or(parts.next(), 503, "flaky status")?;
                    plan.rules
                        .push(FaultRule::any(rate()?, Fault::Flaky { status }));
                }
                "timeout" => plan.rules.push(FaultRule::any(rate()?, Fault::Timeout)),
                "drop" => plan.rules.push(FaultRule::any(rate()?, Fault::Drop)),
                "slow" => {
                    let factor = parse_or(parts.next(), 5.0, "slow factor")?;
                    plan.rules
                        .push(FaultRule::any(rate()?, Fault::Slow { factor }));
                }
                "transient" => {
                    let fail_attempts = parse_or(parts.next(), 2, "transient attempts")?;
                    let status = parse_or(parts.next(), 503, "transient status")?;
                    plan.rules.push(FaultRule::any(
                        rate()?,
                        Fault::Transient {
                            status,
                            fail_attempts,
                        },
                    ));
                }
                "dead" => {
                    let status = parse_or(parts.next(), 503, "dead status")?;
                    plan.rules
                        .push(FaultRule::any(rate()?, Fault::Permanent { status }));
                }
                "dead_pattern" => plan.rules.push(FaultRule::matching(
                    head,
                    1.0,
                    Fault::Permanent { status: 503 },
                )),
                other => return Err(format!("unknown fault clause {other:?}")),
            }
        }
        Ok(plan)
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Decides the fault (if any) for the `attempt`-th request to `url`
    /// (attempts count from 0). Pure: same inputs, same decision.
    pub fn decide(&self, url: &str, attempt: u32) -> FaultDecision {
        for (idx, rule) in self.rules.iter().enumerate() {
            if !rule.pattern.is_empty() && !url.contains(rule.pattern.as_str()) {
                continue;
            }
            match &rule.fault {
                // Per-URL selection: the roll ignores the attempt number, so
                // a selected URL behaves identically on every attempt.
                Fault::Transient {
                    status,
                    fail_attempts,
                } => {
                    // A recovered URL falls through: later rules (e.g. a
                    // dead_pattern) still get their say.
                    if self.roll(idx, b'u', url, 0) < rule.rate && attempt < *fail_attempts {
                        return FaultDecision::Fail { status: *status };
                    }
                }
                Fault::Permanent { status } => {
                    if self.roll(idx, b'u', url, 0) < rule.rate {
                        return FaultDecision::Fail { status: *status };
                    }
                }
                // Per-attempt faults: every retry re-rolls.
                Fault::Flaky { status } => {
                    if self.roll(idx, b'a', url, attempt) < rule.rate {
                        return FaultDecision::Fail { status: *status };
                    }
                }
                Fault::Timeout => {
                    if self.roll(idx, b'a', url, attempt) < rule.rate {
                        return FaultDecision::Timeout;
                    }
                }
                Fault::Drop => {
                    if self.roll(idx, b'a', url, attempt) < rule.rate {
                        return FaultDecision::Drop;
                    }
                }
                Fault::Slow { factor } => {
                    if self.roll(idx, b'a', url, attempt) < rule.rate {
                        return FaultDecision::Slow { factor: *factor };
                    }
                }
            }
        }
        FaultDecision::None
    }

    /// Deterministic roll in `[0, 1)` from `(seed, rule, tag, url, attempt)`.
    fn roll(&self, rule: usize, tag: u8, url: &str, attempt: u32) -> f64 {
        let mut h = Fnv64::new();
        h.write_u64(self.seed);
        h.write_u64(rule as u64);
        h.write_u64(u64::from(tag));
        h.write_str(url);
        h.write_u64(u64::from(attempt));
        (h.finish() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn parse_or<T: std::str::FromStr>(part: Option<&str>, default: T, what: &str) -> Result<T, String> {
    match part {
        None | Some("") => Ok(default),
        Some(s) => s.parse().map_err(|_| format!("bad {what}: {s:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_fires() {
        let plan = FaultPlan::new(7);
        for attempt in 0..100 {
            assert_eq!(plan.decide("/watch?v=1", attempt), FaultDecision::None);
        }
    }

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::transient_mix(42, 0.5);
        for attempt in 0..50 {
            let a = plan.decide("/watch?v=3", attempt);
            let b = plan.decide("/watch?v=3", attempt);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn transient_fails_n_then_succeeds() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::any(
            1.0,
            Fault::Transient {
                status: 503,
                fail_attempts: 2,
            },
        ));
        assert_eq!(plan.decide("/a", 0), FaultDecision::Fail { status: 503 });
        assert_eq!(plan.decide("/a", 1), FaultDecision::Fail { status: 503 });
        assert_eq!(plan.decide("/a", 2), FaultDecision::None);
        assert_eq!(plan.decide("/a", 3), FaultDecision::None);
    }

    #[test]
    fn permanent_never_recovers() {
        let plan =
            FaultPlan::new(1).with_rule(FaultRule::any(1.0, Fault::Permanent { status: 500 }));
        for attempt in 0..20 {
            assert_eq!(
                plan.decide("/dead", attempt),
                FaultDecision::Fail { status: 500 }
            );
        }
    }

    #[test]
    fn pattern_scopes_rules() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::matching(
            "/legacy",
            1.0,
            Fault::Permanent { status: 503 },
        ));
        assert_eq!(
            plan.decide("http://x/legacy/api", 0),
            FaultDecision::Fail { status: 503 }
        );
        assert_eq!(plan.decide("http://x/watch?v=1", 0), FaultDecision::None);
    }

    #[test]
    fn recovered_transient_does_not_mask_later_rules() {
        // A URL picked by a transient rule must still hit a dead_pattern
        // rule behind it once the transient window has passed.
        let plan = FaultPlan::new(7)
            .with_rule(FaultRule::any(
                1.0,
                Fault::Transient {
                    status: 503,
                    fail_attempts: 1,
                },
            ))
            .with_rule(FaultRule::matching(
                "v=13",
                1.0,
                Fault::Permanent { status: 500 },
            ));
        assert_eq!(
            plan.decide("/watch?v=13", 0),
            FaultDecision::Fail { status: 503 }
        );
        assert_eq!(
            plan.decide("/watch?v=13", 5),
            FaultDecision::Fail { status: 500 },
            "permanent rule must apply after the transient window"
        );
        assert_eq!(plan.decide("/watch?v=2", 5), FaultDecision::None);
    }

    #[test]
    fn per_attempt_faults_reroll() {
        // At rate 0.5 over many attempts, both outcomes must appear.
        let plan = FaultPlan::new(9).with_rule(FaultRule::any(0.5, Fault::Timeout));
        let outcomes: Vec<_> = (0..100).map(|a| plan.decide("/u", a)).collect();
        assert!(outcomes.contains(&FaultDecision::Timeout));
        assert!(outcomes.contains(&FaultDecision::None));
    }

    #[test]
    fn rate_selects_a_fraction_of_urls() {
        let plan =
            FaultPlan::new(3).with_rule(FaultRule::any(0.3, Fault::Permanent { status: 500 }));
        let dead = (0..1000)
            .filter(|v| plan.decide(&format!("/watch?v={v}"), 0) != FaultDecision::None)
            .count();
        assert!((200..400).contains(&dead), "got {dead} dead of 1000");
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::transient_mix(1, 0.4);
        let b = FaultPlan::transient_mix(2, 0.4);
        let da: Vec<_> = (0..64).map(|i| a.decide(&format!("/v{i}"), 0)).collect();
        let db: Vec<_> = (0..64).map(|i| b.decide(&format!("/v{i}"), 0)).collect();
        assert_ne!(da, db);
    }

    #[test]
    fn spec_round_trip() {
        let plan = FaultPlan::from_spec("seed=42,rate=0.3,dead_pattern=/legacy,timeout_ms=500")
            .expect("valid spec");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.timeout_micros, 500_000);
        assert_eq!(plan.rules.len(), 4, "mix (3 rules) + dead_pattern");
        assert_eq!(
            plan.decide("http://x/legacy/old", 0),
            FaultDecision::Fail { status: 503 }
        );
    }

    #[test]
    fn spec_explicit_rules() {
        let plan = FaultPlan::from_spec("seed=1,flaky=0.2:500,transient=0.1:3:502,slow=0.5:8")
            .expect("valid");
        assert_eq!(plan.rules.len(), 3);
        assert_eq!(plan.rules[0].fault, Fault::Flaky { status: 500 });
        assert_eq!(
            plan.rules[1].fault,
            Fault::Transient {
                status: 502,
                fail_attempts: 3
            }
        );
        assert_eq!(plan.rules[2].fault, Fault::Slow { factor: 8.0 });
    }

    #[test]
    fn spec_rejects_garbage() {
        assert!(FaultPlan::from_spec("nonsense").is_err());
        assert!(FaultPlan::from_spec("wat=1").is_err());
        assert!(FaultPlan::from_spec("flaky=notanumber").is_err());
    }
}
