//! A small URL type sufficient for crawling: path + query string, relative
//! resolution, and query-parameter access.

use std::fmt;

/// A parsed URL. We only need scheme/host for display; routing happens on
/// `path` and `query`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Url {
    /// `"http"`, possibly empty for site-relative URLs.
    pub scheme: String,
    /// `"vidshare.example"`, possibly empty for site-relative URLs.
    pub host: String,
    /// Always begins with `/` (normalized).
    pub path: String,
    /// The raw query string without `?` (possibly empty).
    pub query: String,
}

impl Url {
    /// Parses an absolute (`http://host/path?q`) or site-relative
    /// (`/path?q`) URL.
    pub fn parse(input: &str) -> Url {
        let (rest, scheme, host) = match input.find("://") {
            Some(idx) => {
                let scheme = input[..idx].to_string();
                let after = &input[idx + 3..];
                match after.find('/') {
                    Some(slash) => (
                        after[slash..].to_string(),
                        scheme,
                        after[..slash].to_string(),
                    ),
                    None => ("/".to_string(), scheme, after.to_string()),
                }
            }
            None => (input.to_string(), String::new(), String::new()),
        };
        let (path, query) = match rest.split_once('?') {
            Some((p, q)) => (p.to_string(), q.to_string()),
            None => (rest, String::new()),
        };
        let path = if path.starts_with('/') {
            path
        } else {
            format!("/{path}")
        };
        Url {
            scheme,
            host,
            path,
            query,
        }
    }

    /// Resolves `href` against `self` (absolute hrefs win; site-relative
    /// hrefs inherit scheme/host; bare relative paths resolve against the
    /// current directory).
    pub fn resolve(&self, href: &str) -> Url {
        if href.contains("://") {
            return Url::parse(href);
        }
        let mut url = if href.starts_with('/') {
            Url::parse(href)
        } else if let Some(q) = href.strip_prefix('?') {
            let mut u = self.clone();
            u.query = q.to_string();
            return u;
        } else {
            let dir = match self.path.rfind('/') {
                Some(idx) => &self.path[..=idx],
                None => "/",
            };
            Url::parse(&format!("{dir}{href}"))
        };
        url.scheme = self.scheme.clone();
        url.host = self.host.clone();
        url
    }

    /// Returns the value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.split('&').find_map(|pair| {
            let (k, v) = pair.split_once('=')?;
            (k == key).then_some(v)
        })
    }

    /// All query parameters in order.
    pub fn params(&self) -> Vec<(&str, &str)> {
        self.query
            .split('&')
            .filter_map(|pair| pair.split_once('='))
            .collect()
    }
}

impl fmt::Display for Url {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.host.is_empty() {
            write!(f, "{}://{}", self.scheme, self.host)?;
        }
        f.write_str(&self.path)?;
        if !self.query.is_empty() {
            write!(f, "?{}", self.query)?;
        }
        Ok(())
    }
}

impl From<&str> for Url {
    fn from(s: &str) -> Self {
        Url::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_absolute() {
        let u = Url::parse("http://vidshare.example/watch?v=42&x=1");
        assert_eq!(u.scheme, "http");
        assert_eq!(u.host, "vidshare.example");
        assert_eq!(u.path, "/watch");
        assert_eq!(u.param("v"), Some("42"));
        assert_eq!(u.param("x"), Some("1"));
        assert_eq!(u.param("nope"), None);
    }

    #[test]
    fn parse_relative() {
        let u = Url::parse("/comments?v=3&p=2");
        assert_eq!(u.path, "/comments");
        assert_eq!(u.param("p"), Some("2"));
        assert!(u.host.is_empty());
    }

    #[test]
    fn display_roundtrip() {
        for s in [
            "http://h.example/watch?v=1",
            "/a/b?x=1&y=2",
            "http://h.example/",
        ] {
            assert_eq!(Url::parse(s).to_string(), s);
        }
    }

    #[test]
    fn resolve_site_relative() {
        let base = Url::parse("http://h.example/watch?v=1");
        let r = base.resolve("/watch?v=2");
        assert_eq!(r.to_string(), "http://h.example/watch?v=2");
    }

    #[test]
    fn resolve_absolute_wins() {
        let base = Url::parse("http://h.example/watch");
        let r = base.resolve("http://other.example/x");
        assert_eq!(r.host, "other.example");
    }

    #[test]
    fn resolve_bare_relative() {
        let base = Url::parse("http://h.example/dir/page");
        assert_eq!(base.resolve("other").path, "/dir/other");
    }

    #[test]
    fn resolve_query_only() {
        let base = Url::parse("http://h.example/watch?v=1");
        let r = base.resolve("?v=2");
        assert_eq!(r.to_string(), "http://h.example/watch?v=2");
    }

    #[test]
    fn host_only_gets_root_path() {
        let u = Url::parse("http://h.example");
        assert_eq!(u.path, "/");
    }
}
