//! Virtual time.

/// Virtual microseconds.
pub type Micros = u64;

/// A virtual clock. All "times" in the reproduction's experiments are virtual
/// microseconds accumulated here, which makes crawl-time measurements exactly
/// reproducible and independent of the host machine.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimClock {
    now: Micros,
}

impl SimClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    #[inline]
    pub fn now(&self) -> Micros {
        self.now
    }

    /// Advances the clock by `d` microseconds.
    #[inline]
    pub fn advance(&mut self, d: Micros) {
        self.now = self.now.saturating_add(d);
    }

    /// Resets to time zero.
    pub fn reset(&mut self) {
        self.now = 0;
    }
}

/// Formats microseconds as a human-readable duration (`1.234 s`, `56 ms`…).
pub fn format_micros(us: Micros) -> String {
    if us >= 1_000_000 {
        format!("{:.3} s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2} ms", us as f64 / 1e3)
    } else {
        format!("{us} µs")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_accumulates() {
        let mut c = SimClock::new();
        c.advance(10);
        c.advance(5);
        assert_eq!(c.now(), 15);
        c.reset();
        assert_eq!(c.now(), 0);
    }

    #[test]
    fn saturates_instead_of_overflowing() {
        let mut c = SimClock::new();
        c.advance(u64::MAX);
        c.advance(10);
        assert_eq!(c.now(), u64::MAX);
    }

    #[test]
    fn formatting() {
        assert_eq!(format_micros(500), "500 µs");
        assert_eq!(format_micros(2_500), "2.50 ms");
        assert_eq!(format_micros(1_234_000), "1.234 s");
    }
}
