//! The crawler-side network client: fetches from a [`Server`] through a
//! [`LatencyModel`], charging a [`SimClock`] and keeping the per-request
//! accounting behind the caching experiments (Figs. 7.5–7.7).
//!
//! With a [`FaultPlan`] attached, the client becomes the fault-injection
//! point: [`NetClient::try_fetch_timed`] is the fallible fetch that can
//! time out, drop, or receive injected error statuses — all deterministic
//! per `(plan seed, url, attempt)` and all charged to the virtual clock.

use crate::clock::{Micros, SimClock};
use crate::fault::{FaultDecision, FaultPlan, NetError};
use crate::latency::LatencyModel;
use crate::server::{Request, Response, Server};
use crate::url::Url;
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of requests actually sent to the server.
    pub requests: u64,
    /// Total response bytes transferred.
    pub bytes: u64,
    /// Total virtual time spent on the network.
    pub network_micros: Micros,
    /// Virtual time spent in pure waits (retry backoff), charged via
    /// [`NetClient::charge_wait`]. Not part of `network_micros`.
    pub wait_micros: Micros,
    /// Requests that timed out (injected).
    pub timeouts: u64,
    /// Connections dropped mid-transfer (injected).
    pub drops: u64,
    /// Injected HTTP error responses (transient/permanent/flaky 5xx).
    pub injected_errors: u64,
}

/// A virtual HTTP client owned by one crawler.
pub struct NetClient {
    server: Arc<dyn Server>,
    latency: LatencyModel,
    clock: SimClock,
    stats: NetStats,
    seq: u64,
    faults: Option<FaultPlan>,
    /// Per-URL attempt counters driving the fault plan's decisions. Keeping
    /// them client-side (not on the shared server) preserves per-partition
    /// determinism regardless of thread scheduling.
    attempts: HashMap<String, u32>,
}

impl NetClient {
    /// Creates a client talking to `server` under `latency`.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel) -> Self {
        Self {
            server,
            latency,
            clock: SimClock::new(),
            stats: NetStats::default(),
            seq: 0,
            faults: None,
            attempts: HashMap::new(),
        }
    }

    /// Attaches a fault plan (builder style). Subsequent fetches consult it.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Fetches `url`, advancing the virtual clock by the request's cost.
    /// Injected transport faults surface as synthetic non-2xx responses
    /// (598 timeout, 597 dropped) for callers that predate the fallible API.
    pub fn fetch(&mut self, url: &Url) -> Response {
        self.fetch_timed(url).0
    }

    /// Like [`Self::fetch`], also returning the request's virtual cost (used
    /// by callers that record CPU/network traces for the parallel scheduler).
    pub fn fetch_timed(&mut self, url: &Url) -> (Response, Micros) {
        match self.try_fetch_timed(url) {
            Ok(pair) => pair,
            Err(e) => {
                let status = match &e {
                    NetError::Timeout { .. } => 598,
                    NetError::Dropped { .. } => 597,
                };
                let cost = e.cost();
                (
                    Response {
                        status,
                        content_type: "text/plain".into(),
                        body: e.to_string(),
                    },
                    cost,
                )
            }
        }
    }

    /// The fallible fetch: consults the fault plan (if any) and either
    /// performs the request, returns an injected HTTP error response, or
    /// fails at the transport level with a [`NetError`]. All outcomes charge
    /// the virtual clock; transport failures burn the plan's timeout/drop
    /// budgets.
    pub fn try_fetch_timed(&mut self, url: &Url) -> Result<(Response, Micros), NetError> {
        let url_str = url.to_string();
        let attempt = {
            let n = self.attempts.entry(url_str.clone()).or_insert(0);
            let current = *n;
            *n += 1;
            current
        };
        let decision = match &self.faults {
            Some(plan) => plan.decide(&url_str, attempt),
            None => FaultDecision::None,
        };
        match decision {
            FaultDecision::None => Ok(self.transfer(url, 1.0)),
            FaultDecision::Slow { factor } => Ok(self.transfer(url, factor.max(0.0))),
            FaultDecision::Fail { status } => {
                let response = Response {
                    status,
                    content_type: "text/plain".into(),
                    body: "injected fault".into(),
                };
                let cost = self.latency.cost(&url_str, self.seq, response.len());
                self.seq += 1;
                self.clock.advance(cost);
                self.stats.requests += 1;
                self.stats.bytes += response.len() as u64;
                self.stats.network_micros += cost;
                self.stats.injected_errors += 1;
                Ok((response, cost))
            }
            FaultDecision::Timeout => {
                let after = self.faults.as_ref().map(|p| p.timeout_micros).unwrap_or(0);
                self.seq += 1;
                self.clock.advance(after);
                self.stats.requests += 1;
                self.stats.network_micros += after;
                self.stats.timeouts += 1;
                Err(NetError::Timeout {
                    url: url_str,
                    after,
                })
            }
            FaultDecision::Drop => {
                let after = self.faults.as_ref().map(|p| p.drop_micros).unwrap_or(0);
                self.seq += 1;
                self.clock.advance(after);
                self.stats.requests += 1;
                self.stats.network_micros += after;
                self.stats.drops += 1;
                Err(NetError::Dropped {
                    url: url_str,
                    after,
                })
            }
        }
    }

    /// Performs the actual request, with the latency cost scaled by
    /// `factor` (1.0 = nominal; >1 = injected slow response).
    fn transfer(&mut self, url: &Url, factor: f64) -> (Response, Micros) {
        let request = Request::get(url.clone());
        let response = self.server.handle(&request);
        let mut cost = self
            .latency
            .cost(&url.to_string(), self.seq, response.len());
        if factor != 1.0 {
            cost = (cost as f64 * factor).round() as Micros;
        }
        self.seq += 1;
        self.clock.advance(cost);
        self.stats.requests += 1;
        self.stats.bytes += response.len() as u64;
        self.stats.network_micros += cost;
        (response, cost)
    }

    /// Charges pure CPU time (parsing, JS, hashing…) to the same clock, so
    /// the clock reflects total crawl time.
    pub fn charge_cpu(&mut self, micros: Micros) {
        self.clock.advance(micros);
    }

    /// Charges a pure wait (retry backoff) to the clock. It occupies the
    /// process line but neither a CPU core nor the network, so it is
    /// accounted separately from both.
    pub fn charge_wait(&mut self, micros: Micros) {
        self.clock.advance(micros);
        self.stats.wait_micros += micros;
    }

    /// Current virtual time (network + charged CPU + waits).
    pub fn now(&self) -> Micros {
        self.clock.now()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The shared server handle (for spawning sibling clients).
    pub fn server(&self) -> Arc<dyn Server> {
        Arc::clone(&self.server)
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Resets clock, stats, sequence number and attempt counters (fresh
    /// measurement window).
    pub fn reset(&mut self) {
        self.clock.reset();
        self.stats = NetStats::default();
        self.seq = 0;
        self.attempts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{Fault, FaultRule};
    use crate::server::FnServer;

    fn client(latency: LatencyModel) -> NetClient {
        let server = Arc::new(FnServer(|req: &Request| {
            Response::text(format!("echo {}", req.url))
        }));
        NetClient::new(server, latency)
    }

    #[test]
    fn fetch_accounts_time_and_bytes() {
        let mut c = client(LatencyModel::Fixed(1_000));
        let r1 = c.fetch(&Url::parse("/a"));
        let r2 = c.fetch(&Url::parse("/bb"));
        assert!(r1.body.contains("/a"));
        assert_eq!(c.stats().requests, 2);
        assert_eq!(c.stats().bytes, (r1.len() + r2.len()) as u64);
        assert_eq!(c.now(), 2_000);
        assert_eq!(c.stats().network_micros, 2_000);
    }

    #[test]
    fn cpu_charges_clock_not_network_stats() {
        let mut c = client(LatencyModel::Fixed(100));
        c.fetch(&Url::parse("/a"));
        c.charge_cpu(50);
        assert_eq!(c.now(), 150);
        assert_eq!(c.stats().network_micros, 100);
    }

    #[test]
    fn wait_charges_clock_separately() {
        let mut c = client(LatencyModel::Fixed(100));
        c.fetch(&Url::parse("/a"));
        c.charge_wait(40);
        assert_eq!(c.now(), 140);
        assert_eq!(c.stats().network_micros, 100);
        assert_eq!(c.stats().wait_micros, 40);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = client(LatencyModel::Fixed(100));
        c.fetch(&Url::parse("/a"));
        c.reset();
        assert_eq!(c.now(), 0);
        assert_eq!(c.stats(), &NetStats::default());
    }

    #[test]
    fn injected_timeout_charges_budget_and_errors() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::any(1.0, Fault::Timeout))
            .with_timeout_micros(5_000);
        let mut c = client(LatencyModel::Fixed(100)).with_fault_plan(plan);
        let err = c.try_fetch_timed(&Url::parse("/a")).unwrap_err();
        assert!(matches!(err, NetError::Timeout { after: 5_000, .. }));
        assert_eq!(c.now(), 5_000);
        assert_eq!(c.stats().timeouts, 1);
        assert_eq!(c.stats().bytes, 0, "nothing transferred");
    }

    #[test]
    fn injected_http_error_is_a_response() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::any(1.0, Fault::Flaky { status: 503 }));
        let mut c = client(LatencyModel::Fixed(100)).with_fault_plan(plan);
        let (resp, _) = c.try_fetch_timed(&Url::parse("/a")).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(c.stats().injected_errors, 1);
    }

    #[test]
    fn transient_recovers_on_retry() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::any(
            1.0,
            Fault::Transient {
                status: 503,
                fail_attempts: 2,
            },
        ));
        let mut c = client(LatencyModel::Zero).with_fault_plan(plan);
        let url = Url::parse("/a");
        assert_eq!(c.try_fetch_timed(&url).unwrap().0.status, 503);
        assert_eq!(c.try_fetch_timed(&url).unwrap().0.status, 503);
        assert!(c.try_fetch_timed(&url).unwrap().0.is_ok(), "3rd attempt ok");
    }

    #[test]
    fn legacy_fetch_maps_transport_faults_to_synthetic_statuses() {
        let plan = FaultPlan::new(1)
            .with_rule(FaultRule::any(1.0, Fault::Timeout))
            .with_timeout_micros(1_000);
        let mut c = client(LatencyModel::Zero).with_fault_plan(plan);
        let resp = c.fetch(&Url::parse("/a"));
        assert_eq!(resp.status, 598);
        assert!(!resp.is_ok());
    }

    #[test]
    fn slow_fault_scales_cost() {
        let plan = FaultPlan::new(1).with_rule(FaultRule::any(1.0, Fault::Slow { factor: 4.0 }));
        let mut c = client(LatencyModel::Fixed(1_000)).with_fault_plan(plan);
        let (resp, cost) = c.try_fetch_timed(&Url::parse("/a")).unwrap();
        assert!(resp.is_ok());
        assert_eq!(cost, 4_000);
    }
}
