//! The crawler-side network client: fetches from a [`Server`] through a
//! [`LatencyModel`], charging a [`SimClock`] and keeping the per-request
//! accounting behind the caching experiments (Figs. 7.5–7.7).

use crate::clock::{Micros, SimClock};
use crate::latency::LatencyModel;
use crate::server::{Request, Response, Server};
use crate::url::Url;
use std::sync::Arc;

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Number of requests actually sent to the server.
    pub requests: u64,
    /// Total response bytes transferred.
    pub bytes: u64,
    /// Total virtual time spent on the network.
    pub network_micros: Micros,
}

/// A virtual HTTP client owned by one crawler.
pub struct NetClient {
    server: Arc<dyn Server>,
    latency: LatencyModel,
    clock: SimClock,
    stats: NetStats,
    seq: u64,
}

impl NetClient {
    /// Creates a client talking to `server` under `latency`.
    pub fn new(server: Arc<dyn Server>, latency: LatencyModel) -> Self {
        Self {
            server,
            latency,
            clock: SimClock::new(),
            stats: NetStats::default(),
            seq: 0,
        }
    }

    /// Fetches `url`, advancing the virtual clock by the request's cost.
    pub fn fetch(&mut self, url: &Url) -> Response {
        self.fetch_timed(url).0
    }

    /// Like [`Self::fetch`], also returning the request's virtual cost (used
    /// by callers that record CPU/network traces for the parallel scheduler).
    pub fn fetch_timed(&mut self, url: &Url) -> (Response, Micros) {
        let request = Request::get(url.clone());
        let response = self.server.handle(&request);
        let cost = self
            .latency
            .cost(&url.to_string(), self.seq, response.len());
        self.seq += 1;
        self.clock.advance(cost);
        self.stats.requests += 1;
        self.stats.bytes += response.len() as u64;
        self.stats.network_micros += cost;
        (response, cost)
    }

    /// Charges pure CPU time (parsing, JS, hashing…) to the same clock, so
    /// the clock reflects total crawl time.
    pub fn charge_cpu(&mut self, micros: Micros) {
        self.clock.advance(micros);
    }

    /// Current virtual time (network + charged CPU).
    pub fn now(&self) -> Micros {
        self.clock.now()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &NetStats {
        &self.stats
    }

    /// The shared server handle (for spawning sibling clients).
    pub fn server(&self) -> Arc<dyn Server> {
        Arc::clone(&self.server)
    }

    /// The latency model in use.
    pub fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    /// Resets clock, stats and sequence number (fresh measurement window).
    pub fn reset(&mut self) {
        self.clock.reset();
        self.stats = NetStats::default();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::FnServer;

    fn client(latency: LatencyModel) -> NetClient {
        let server = Arc::new(FnServer(|req: &Request| {
            Response::text(format!("echo {}", req.url))
        }));
        NetClient::new(server, latency)
    }

    #[test]
    fn fetch_accounts_time_and_bytes() {
        let mut c = client(LatencyModel::Fixed(1_000));
        let r1 = c.fetch(&Url::parse("/a"));
        let r2 = c.fetch(&Url::parse("/bb"));
        assert!(r1.body.contains("/a"));
        assert_eq!(c.stats().requests, 2);
        assert_eq!(c.stats().bytes, (r1.len() + r2.len()) as u64);
        assert_eq!(c.now(), 2_000);
        assert_eq!(c.stats().network_micros, 2_000);
    }

    #[test]
    fn cpu_charges_clock_not_network_stats() {
        let mut c = client(LatencyModel::Fixed(100));
        c.fetch(&Url::parse("/a"));
        c.charge_cpu(50);
        assert_eq!(c.now(), 150);
        assert_eq!(c.stats().network_micros, 100);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = client(LatencyModel::Fixed(100));
        c.fetch(&Url::parse("/a"));
        c.reset();
        assert_eq!(c.now(), 0);
        assert_eq!(c.stats(), &NetStats::default());
    }
}
