//! Serving metrics: lock-free counters and a latency histogram.
//!
//! Workers and callers record into atomics; [`Metrics::snapshot`] reads them
//! into a plain [`MetricsSnapshot`] struct that serializes to JSON — the
//! shape a scrape endpoint or the `ajax-search serve` CLI prints.

use ajax_net::Micros;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

// The histogram grew up here and was lifted into `ajax-obs` so the profile
// rollup could reuse it; re-exported to keep the serve API unchanged.
pub use ajax_obs::LatencyHistogram;

/// The server's live metrics registry. All fields are atomics so workers and
/// clients update without locks; a consistent-enough view is taken by
/// [`Metrics::snapshot`].
#[derive(Debug)]
pub struct Metrics {
    /// Queries answered (cache hits + full evaluations + degraded), i.e.
    /// every admitted query.
    pub completed: AtomicU64,
    /// Queries refused at admission (`ServeError::Overloaded`).
    pub shed: AtomicU64,
    /// Completed queries that merged fewer than all shards.
    pub degraded: AtomicU64,
    /// Result-cache hits / misses / evictions.
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_evictions: AtomicU64,
    /// Index reloads (each also invalidates the cache).
    pub reloads: AtomicU64,
    /// Rejected index reloads (corrupt artifact, shard-count or weights
    /// mismatch) — the server kept serving the previous generation.
    pub reloads_rejected: AtomicU64,
    /// Resident size of the served index in bytes (gauge; set at startup
    /// and on every reload from the shards' honest `approx_bytes`).
    pub index_bytes: AtomicU64,
    /// Bytes served from mmap-ed v4 segments (gauge, same lifecycle as
    /// `index_bytes`). Mapped bytes live in the page cache, not the heap —
    /// capacity planning tracks the two separately.
    pub index_mapped_bytes: AtomicU64,
    /// End-to-end query latency (admission → response), µs.
    pub latency: LatencyHistogram,
    /// Jobs currently queued per shard (gauge).
    pub shard_queue_depth: Vec<AtomicU64>,
}

impl Metrics {
    /// A zeroed registry for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            completed: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            cache_misses: AtomicU64::new(0),
            cache_evictions: AtomicU64::new(0),
            reloads: AtomicU64::new(0),
            reloads_rejected: AtomicU64::new(0),
            index_bytes: AtomicU64::new(0),
            index_mapped_bytes: AtomicU64::new(0),
            latency: LatencyHistogram::default(),
            shard_queue_depth: (0..shards).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Takes a serializable snapshot. `uptime_micros` comes from the
    /// server's clock (virtual under a manual clock), `cache_entries` from
    /// the cache, `workers` from the pool configuration.
    pub fn snapshot(
        &self,
        uptime_micros: Micros,
        cache_entries: usize,
        workers: usize,
    ) -> MetricsSnapshot {
        let completed = self.completed.load(Ordering::Relaxed);
        let hits = self.cache_hits.load(Ordering::Relaxed);
        let misses = self.cache_misses.load(Ordering::Relaxed);
        let lookups = hits + misses;
        MetricsSnapshot {
            uptime_micros,
            workers: workers as u64,
            completed,
            shed: self.shed.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            reloads: self.reloads.load(Ordering::Relaxed),
            reloads_rejected: self.reloads_rejected.load(Ordering::Relaxed),
            index_bytes: self.index_bytes.load(Ordering::Relaxed),
            index_mapped_bytes: self.index_mapped_bytes.load(Ordering::Relaxed),
            qps: if uptime_micros == 0 {
                0.0
            } else {
                completed as f64 / (uptime_micros as f64 / 1e6)
            },
            latency_mean_micros: self.latency.mean(),
            latency_p50_micros: self.latency.quantile(0.50),
            latency_p95_micros: self.latency.quantile(0.95),
            latency_p99_micros: self.latency.quantile(0.99),
            latency_buckets: self.latency.bucket_counts(),
            cache_hits: hits,
            cache_misses: misses,
            cache_evictions: self.cache_evictions.load(Ordering::Relaxed),
            cache_entries: cache_entries as u64,
            cache_hit_rate: if lookups == 0 {
                0.0
            } else {
                hits as f64 / lookups as f64
            },
            shard_queue_depth: self
                .shard_queue_depth
                .iter()
                .map(|d| d.load(Ordering::Relaxed))
                .collect(),
        }
    }
}

/// A point-in-time view of [`Metrics`], serializable with serde. Latency
/// percentiles are upper bounds of power-of-two buckets (`latency_buckets[i]`
/// counts samples `< 2^i` µs, `[0]` exact zeros).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub uptime_micros: u64,
    pub workers: u64,
    pub completed: u64,
    pub shed: u64,
    pub degraded: u64,
    pub reloads: u64,
    pub reloads_rejected: u64,
    pub index_bytes: u64,
    pub index_mapped_bytes: u64,
    pub qps: f64,
    pub latency_mean_micros: f64,
    pub latency_p50_micros: u64,
    pub latency_p95_micros: u64,
    pub latency_p99_micros: u64,
    pub latency_buckets: Vec<u64>,
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    pub cache_entries: u64,
    pub cache_hit_rate: f64,
    pub shard_queue_depth: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    // Histogram unit tests live in `ajax-obs` now (crates/obs/src/histogram.rs).

    #[test]
    fn snapshot_serializes_and_roundtrips() {
        let m = Metrics::new(3);
        m.completed.fetch_add(10, Ordering::Relaxed);
        m.cache_hits.fetch_add(4, Ordering::Relaxed);
        m.cache_misses.fetch_add(6, Ordering::Relaxed);
        m.latency.record(100);
        m.shard_queue_depth[1].fetch_add(2, Ordering::Relaxed);

        let snap = m.snapshot(2_000_000, 5, 3);
        assert_eq!(snap.completed, 10);
        assert!((snap.qps - 5.0).abs() < 1e-9);
        assert!((snap.cache_hit_rate - 0.4).abs() < 1e-9);
        assert_eq!(snap.shard_queue_depth, vec![0, 2, 0]);

        let json = serde_json::to_string(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }
}
