//! The shard transport abstraction: *how* a query reaches its shards.
//!
//! [`ShardServer`](crate::ShardServer) owns a query's edge concerns —
//! admission, caching, deadlines, the global-idf merge — but is agnostic
//! about where shard evaluation actually happens. That seam is
//! [`ShardTransport`]: an implementor ships a query to every shard and
//! delivers each shard's [`ShardOutcome`] into a per-query [`Rendezvous`].
//!
//! Two implementations exist:
//!
//! * [`pool::PoolTransport`](crate::pool) — in-process worker pools, one per
//!   shard (the original `ajax-serve` path);
//! * `ajax_dist::TcpTransport` — remote shard *processes* behind a
//!   length-prefixed TCP protocol, with pipelined shipping and hedging.
//!
//! Both deliver outcomes into the same rendezvous and the caller merges in
//! shard order, so every transport inherits the serving layer's bit-identical
//! equivalence to the sequential `QueryBroker`.

use ajax_index::{InvertedIndex, Query, RankWeights, ShardResult, ShardTermStats};
use ajax_net::Micros;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// What a shard (worker thread or remote process) reports back for one job.
#[derive(Debug)]
pub enum ShardOutcome {
    Evaluated(Vec<ShardResult>, ShardTermStats),
    /// The job's deadline had already passed when the shard picked it up.
    TimedOut,
    /// Evaluation failed (worker panicked, connection died, …) — treated
    /// like a missed shard.
    Failed,
}

/// Per-query rendezvous: one slot per shard, filled by the transport,
/// drained by the caller. Lives in an `Arc` so a caller that gives up on a
/// deadline can walk away — late deliveries land in the abandoned state
/// harmlessly.
pub struct Rendezvous {
    slots: Mutex<Slots>,
    arrived_cv: Condvar,
}

struct Slots {
    replies: Vec<Option<ShardOutcome>>,
    arrived: usize,
}

impl Rendezvous {
    /// An empty rendezvous awaiting `shards` outcomes.
    pub fn new(shards: usize) -> Self {
        Self {
            slots: Mutex::new(Slots {
                replies: (0..shards).map(|_| None).collect(),
                arrived: 0,
            }),
            arrived_cv: Condvar::new(),
        }
    }

    /// Delivers one shard's outcome. First delivery per slot wins; a late or
    /// duplicate delivery (hedged request, post-abandonment worker) is a
    /// harmless no-op — never an out-of-bounds panic, which would kill the
    /// delivering thread.
    pub fn deliver(&self, shard: usize, outcome: ShardOutcome) {
        let mut slots = self.slots.lock().unwrap();
        let Slots { replies, arrived } = &mut *slots;
        if let Some(slot) = replies.get_mut(shard) {
            if slot.is_none() {
                *slot = Some(outcome);
                *arrived += 1;
            }
        }
        self.arrived_cv.notify_all();
    }

    /// True when `shard`'s slot is already filled (hedging probes this
    /// before re-issuing a request).
    pub fn arrived(&self, shard: usize) -> bool {
        let slots = self.slots.lock().unwrap();
        slots.replies.get(shard).is_some_and(Option::is_some)
    }

    /// Blocks until every shard has delivered, then takes the outcomes.
    /// Used on the no-deadline and manual-clock paths, where the transport
    /// guarantees a delivery per shard (possibly `TimedOut`/`Failed`).
    pub fn wait_all(&self) -> Vec<Option<ShardOutcome>> {
        let mut slots = self.slots.lock().unwrap();
        while slots.arrived < slots.replies.len() {
            slots = self.arrived_cv.wait(slots).unwrap();
        }
        std::mem::take(&mut slots.replies)
    }

    /// Blocks until every shard has delivered or `now()` reaches `deadline`,
    /// then takes whatever arrived. `now` is sampled through the caller's
    /// clock so wall- and virtual-time servers share this code.
    pub fn wait_until(
        &self,
        now: impl Fn() -> Micros,
        deadline: Micros,
    ) -> Vec<Option<ShardOutcome>> {
        let mut slots = self.slots.lock().unwrap();
        while slots.arrived < slots.replies.len() {
            let t = now();
            if t >= deadline {
                break;
            }
            let wait = std::time::Duration::from_micros(deadline - t);
            let (guard, _timeout) = self.arrived_cv.wait_timeout(slots, wait).unwrap();
            slots = guard;
        }
        std::mem::take(&mut slots.replies)
    }
}

/// Why a transport operation failed or was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum TransportError {
    /// The operation is not meaningful for this transport (e.g. hot
    /// reloading remote shard processes over the wire).
    Unsupported(&'static str),
    /// The transport's underlying channel failed.
    Io(String),
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unsupported(what) => write!(f, "unsupported: {what}"),
            TransportError::Io(e) => write!(f, "transport i/o: {e}"),
        }
    }
}

impl std::error::Error for TransportError {}

/// Ships queries to shards. Implementors must deliver exactly one
/// [`ShardOutcome`] per shard into `reply` for every `ship` call —
/// eventually, even on failure — unless the caller abandons the rendezvous
/// first (wall-clock deadline). Outcomes may arrive in any order; the caller
/// collects them **in shard index order**, which is what keeps merged scores
/// bit-identical to the sequential broker.
pub trait ShardTransport: Send + Sync {
    /// Number of shards behind this transport.
    fn shard_count(&self) -> usize;

    /// Total evaluation lanes (worker threads, connections, …) —
    /// diagnostics only.
    fn worker_count(&self) -> usize;

    /// Ships `query` to every shard. `deadline` is absolute on the server's
    /// clock; transports may use it to give up early (delivering `TimedOut`)
    /// or to bound hedged retries.
    fn ship(
        &self,
        query: Arc<Query>,
        weights: RankWeights,
        deadline: Option<Micros>,
        reply: Arc<Rendezvous>,
    );

    /// Total states across shards (the global `|D|`).
    fn total_states(&self) -> u64;

    /// Honest resident size of the shards in bytes (metrics gauge).
    fn index_bytes(&self) -> u64;

    /// Bytes served from mmap-ed v4 segments across shards (metrics gauge;
    /// 0 when every shard is resident). Remote transports that cannot see
    /// their shards' backing keep the default.
    fn index_mapped_bytes(&self) -> u64 {
        0
    }

    /// Swaps in freshly built shard indexes (same count, caller-validated).
    fn reload(&self, shards: Vec<InvertedIndex>) -> Result<(), TransportError>;

    /// Stops the transport's threads/connections. Idempotent.
    fn shutdown(&mut self);

    /// True when shards live in other processes — the server then labels its
    /// merge span `dist.merge` instead of `serve.merge`.
    fn is_remote(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_delivery_after_deadline_abandonment_is_dropped() {
        let state = Rendezvous::new(2);
        state.deliver(0, ShardOutcome::TimedOut);
        // Deadline 0 is already past, so the caller takes whatever arrived
        // and walks away.
        let taken = state.wait_until(|| 1, 0);
        assert_eq!(taken.len(), 2);
        assert!(taken[0].is_some());
        assert!(taken[1].is_none());
        // A slow worker replying after abandonment must be a harmless no-op
        // (this used to index the taken-away Vec out of bounds and panic).
        state.deliver(1, ShardOutcome::TimedOut);
        state.deliver(0, ShardOutcome::Failed);
    }

    #[test]
    fn duplicate_delivery_keeps_first_reply() {
        let state = Rendezvous::new(1);
        state.deliver(0, ShardOutcome::TimedOut);
        state.deliver(0, ShardOutcome::Failed);
        let taken = state.wait_all();
        assert!(matches!(taken[0], Some(ShardOutcome::TimedOut)));
    }

    #[test]
    fn arrived_tracks_slots() {
        let state = Rendezvous::new(3);
        assert!(!state.arrived(1));
        state.deliver(1, ShardOutcome::Failed);
        assert!(state.arrived(1));
        assert!(!state.arrived(0));
        assert!(!state.arrived(7), "out-of-range probe is just false");
    }
}
