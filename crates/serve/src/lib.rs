//! # ajax-serve
//!
//! A long-lived, concurrent query-serving layer over the sharded index of
//! thesis §6.4–6.5. Where [`ajax_index::QueryBroker`] evaluates one query at
//! a time on the calling thread, [`ShardServer`] keeps a pool of worker
//! threads per shard and lets many clients search at once:
//!
//! * **shard worker pools** ([`pool`]) — each shard owns a bounded MPMC job
//!   queue consumed by one or more `std::thread` workers, so a single query
//!   fans out to all shards in parallel and the calling thread only performs
//!   the global-idf merge of Fig 6.4;
//! * **query result cache** ([`cache`]) — an LRU keyed by the normalized
//!   query terms plus the exact rank weights, with hit/miss/eviction
//!   counters and explicit invalidation on index reload;
//! * **admission control & graceful degradation** ([`server`]) — a bounded
//!   in-flight gate that sheds excess load with a typed
//!   [`ServeError::Overloaded`], per-query deadlines (wall or virtual clock,
//!   [`clock`]) and a partial-results mode that merges whatever shards
//!   answered in time, flagging the response as degraded;
//! * **metrics registry** ([`metrics`]) — lock-free counters and a latency
//!   histogram (p50/p95/p99), exposed as a serde-serializable snapshot;
//! * **shard transport seam** ([`transport`]) — per-shard evaluation sits
//!   behind the [`ShardTransport`] trait, so the same server fronts local
//!   worker pools or remote shard *processes* (`ajax-dist`) without
//!   changing any edge logic.
//!
//! The worker path reuses [`ajax_index::eval_shard`] and
//! [`ajax_index::merge_shard_outputs`] — the exact two halves
//! `QueryBroker::search` is built from — and collects shard replies in shard
//! order before merging, so parallel serving is **bit-for-bit identical** to
//! sequential evaluation (same floating-point summation order).

pub mod cache;
pub mod clock;
pub mod metrics;
pub(crate) mod pool;
pub mod server;
pub mod transport;

pub use cache::QueryCache;
pub use clock::{ManualClock, ServeClock};
pub use metrics::{Metrics, MetricsSnapshot};
pub use server::{ServeConfig, ServeError, ServeResponse, ShardServer};
pub use transport::{Rendezvous, ShardOutcome, ShardTransport, TransportError};
