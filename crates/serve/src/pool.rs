//! Per-shard worker pools and the reply rendezvous.
//!
//! Each shard owns one MPMC job queue (`Mutex<VecDeque>` + `Condvar`)
//! consumed by `workers_per_shard` OS threads. Submitting a query pushes one
//! job per shard; each worker runs [`ajax_index::eval_shard`] against its
//! shard's current index and delivers the reply into a per-query
//! [`ReplyState`] slot indexed by shard, where the calling thread collects
//! them **in shard order** before merging — preserving the sequential
//! broker's summation order exactly.
//!
//! Workers always deliver *something* for every job they pop — a result, a
//! `TimedOut` marker when the job's deadline already passed, or `Failed` if
//! evaluation panicked — so an admitted query can never be silently lost.

use crate::clock::ServeClock;
use crate::metrics::Metrics;
use ajax_index::{eval_shard, InvertedIndex, Query, RankWeights, ShardResult, ShardTermStats};
use ajax_net::Micros;
use ajax_obs::{AttrValue, SpanLog};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// What a shard worker sends back for one job.
#[derive(Debug)]
pub(crate) enum ShardReply {
    Evaluated(Vec<ShardResult>, ShardTermStats),
    /// The job's deadline had already passed when a worker picked it up.
    TimedOut,
    /// Evaluation panicked (treated like a missed shard).
    Failed,
}

/// Per-query rendezvous: one slot per shard, filled by workers, drained by
/// the caller. Lives in an `Arc` so a caller that gives up on a deadline can
/// walk away — late deliveries land in the abandoned state harmlessly.
pub(crate) struct ReplyState {
    slots: Mutex<ReplySlots>,
    arrived_cv: Condvar,
}

struct ReplySlots {
    replies: Vec<Option<ShardReply>>,
    arrived: usize,
}

impl ReplyState {
    pub(crate) fn new(shards: usize) -> Self {
        Self {
            slots: Mutex::new(ReplySlots {
                replies: (0..shards).map(|_| None).collect(),
                arrived: 0,
            }),
            arrived_cv: Condvar::new(),
        }
    }

    fn deliver(&self, shard: usize, reply: ShardReply) {
        let mut slots = self.slots.lock().unwrap();
        // A caller that hit its wall-clock deadline has already taken the
        // slot array (`wait_until`); a late reply then finds no slot and is
        // dropped — never an out-of-bounds panic, which would kill the
        // worker and poison this mutex.
        let ReplySlots { replies, arrived } = &mut *slots;
        if let Some(slot) = replies.get_mut(shard) {
            if slot.is_none() {
                *slot = Some(reply);
                *arrived += 1;
            }
        }
        self.arrived_cv.notify_all();
    }

    /// Blocks until every shard has replied, then takes the replies.
    /// Used on the no-deadline and manual-clock paths, where workers are
    /// guaranteed to reply (possibly with `TimedOut`).
    pub(crate) fn wait_all(&self) -> Vec<Option<ShardReply>> {
        let mut slots = self.slots.lock().unwrap();
        while slots.arrived < slots.replies.len() {
            slots = self.arrived_cv.wait(slots).unwrap();
        }
        std::mem::take(&mut slots.replies)
    }

    /// Blocks until every shard has replied or the wall clock reaches
    /// `deadline`, then takes whatever replies arrived.
    pub(crate) fn wait_until(
        &self,
        clock: &ServeClock,
        deadline: Micros,
    ) -> Vec<Option<ShardReply>> {
        let mut slots = self.slots.lock().unwrap();
        while slots.arrived < slots.replies.len() {
            let now = clock.now_micros();
            if now >= deadline {
                break;
            }
            let wait = std::time::Duration::from_micros(deadline - now);
            let (guard, _timeout) = self.arrived_cv.wait_timeout(slots, wait).unwrap();
            slots = guard;
        }
        std::mem::take(&mut slots.replies)
    }
}

/// One unit of shard work, or the shutdown pill.
pub(crate) enum Job {
    Eval {
        query: Arc<Query>,
        weights: RankWeights,
        /// Absolute deadline on the server's clock, if any.
        deadline: Option<Micros>,
        reply: Arc<ReplyState>,
    },
    Shutdown,
}

/// The MPMC channel one shard's workers consume from.
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available_cv: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            available_cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.available_cv.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.available_cv.wait(jobs).unwrap();
        }
    }
}

/// One shard's queue, swappable index, and worker threads.
pub(crate) struct ShardPool {
    queue: Arc<JobQueue>,
    /// Double `Arc` so workers take a cheap snapshot of the current index
    /// (`Arc<InvertedIndex>`) and an in-progress reload never blocks behind
    /// a long evaluation.
    index: Arc<RwLock<Arc<InvertedIndex>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` threads over `index` for shard `shard_idx`.
    pub(crate) fn spawn(
        shard_idx: usize,
        index: InvertedIndex,
        workers: usize,
        clock: ServeClock,
        metrics: Arc<Metrics>,
        eval_cost_micros: Micros,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Self {
        let queue = Arc::new(JobQueue::new());
        let index = Arc::new(RwLock::new(Arc::new(index)));
        let handles = (0..workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let index = Arc::clone(&index);
                let clock = clock.clone();
                let metrics = Arc::clone(&metrics);
                let trace = trace.clone();
                std::thread::Builder::new()
                    .name(format!("ajax-serve-s{shard_idx}w{w}"))
                    .spawn(move || {
                        worker_loop(
                            shard_idx,
                            &queue,
                            &index,
                            &clock,
                            &metrics,
                            eval_cost_micros,
                            trace,
                        )
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            queue,
            index,
            workers: handles,
        }
    }

    /// Enqueues a job (and maintains the shard's queue-depth gauge).
    pub(crate) fn submit(&self, shard_idx: usize, job: Job, metrics: &Metrics) {
        metrics.shard_queue_depth[shard_idx].fetch_add(1, Ordering::Relaxed);
        self.queue.push(job);
    }

    /// Swaps in a new index; subsequent jobs evaluate against it.
    pub(crate) fn swap_index(&self, index: InvertedIndex) {
        *self.index.write().unwrap() = Arc::new(index);
    }

    /// Current index snapshot (diagnostics).
    pub(crate) fn index(&self) -> Arc<InvertedIndex> {
        self.index.read().unwrap().clone()
    }

    /// Sends one shutdown pill per worker and joins them.
    pub(crate) fn shutdown(&mut self) {
        for _ in 0..self.workers.len() {
            self.queue.push(Job::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    shard_idx: usize,
    queue: &JobQueue,
    index: &RwLock<Arc<InvertedIndex>>,
    clock: &ServeClock,
    metrics: &Metrics,
    eval_cost_micros: Micros,
    trace: Option<Arc<Mutex<SpanLog>>>,
) {
    loop {
        let job = queue.pop();
        let Job::Eval {
            query,
            weights,
            deadline,
            reply,
        } = job
        else {
            return;
        };
        metrics.shard_queue_depth[shard_idx].fetch_sub(1, Ordering::Relaxed);
        let eval_start = clock.now_micros();

        // `>=` so a zero-length deadline deterministically times out even
        // under a manual clock that never advances — the degraded path is
        // testable without real time.
        let expired = deadline.is_some_and(|d| clock.now_micros() >= d);
        let outcome = if expired {
            ShardReply::TimedOut
        } else {
            let snapshot = index.read().unwrap().clone();
            let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eval_shard(&snapshot, shard_idx, &query, &weights)
            }));
            // Under a manual clock, evaluation "costs" virtual time so load
            // tests can model slow shards deterministically.
            clock.advance(eval_cost_micros);
            match evaluated {
                Ok((results, stats)) => ShardReply::Evaluated(results, stats),
                Err(_) => ShardReply::Failed,
            }
        };
        if let Some(trace) = &trace {
            let result = match &outcome {
                ShardReply::Evaluated(..) => "evaluated",
                ShardReply::TimedOut => "timed_out",
                ShardReply::Failed => "failed",
            };
            let end = clock.now_micros();
            let mut log = trace.lock().expect("trace ring lock");
            // Track 0 belongs to the server's admission/merge spans.
            log.set_track(shard_idx as u32 + 1);
            log.push(
                "shard.eval",
                eval_start,
                end,
                vec![
                    ("shard", AttrValue::U64(shard_idx as u64)),
                    ("result", AttrValue::str(result)),
                ],
            );
        }
        reply.deliver(shard_idx, outcome);
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_delivery_after_deadline_abandonment_is_dropped() {
        let state = ReplyState::new(2);
        state.deliver(0, ShardReply::TimedOut);
        // Deadline 0 is already past on a wall clock, so the caller takes
        // whatever arrived and walks away.
        let taken = state.wait_until(&ServeClock::wall(), 0);
        assert_eq!(taken.len(), 2);
        assert!(taken[0].is_some());
        assert!(taken[1].is_none());
        // A slow worker replying after abandonment must be a harmless no-op
        // (this used to index the taken-away Vec out of bounds and panic).
        state.deliver(1, ShardReply::TimedOut);
        state.deliver(0, ShardReply::Failed);
    }

    #[test]
    fn duplicate_delivery_keeps_first_reply() {
        let state = ReplyState::new(1);
        state.deliver(0, ShardReply::TimedOut);
        state.deliver(0, ShardReply::Failed);
        let taken = state.wait_all();
        assert!(matches!(taken[0], Some(ShardReply::TimedOut)));
    }
}
