//! In-process shard worker pools — the local [`ShardTransport`].
//!
//! Each shard owns one MPMC job queue (`Mutex<VecDeque>` + `Condvar`)
//! consumed by `workers_per_shard` OS threads. [`PoolTransport::ship`]
//! pushes one job per shard; each worker runs [`ajax_index::eval_shard`]
//! against its shard's current index and delivers the outcome into the
//! per-query [`Rendezvous`] slot indexed by shard, where the calling thread
//! collects them **in shard order** before merging — preserving the
//! sequential broker's summation order exactly.
//!
//! Workers always deliver *something* for every job they pop — a result, a
//! `TimedOut` marker when the job's deadline already passed, or `Failed` if
//! evaluation panicked — so an admitted query can never be silently lost.

use crate::clock::ServeClock;
use crate::metrics::Metrics;
use crate::server::ServeConfig;
use crate::transport::{Rendezvous, ShardOutcome, ShardTransport, TransportError};
use ajax_index::{eval_shard, InvertedIndex, Query, RankWeights};
use ajax_net::Micros;
use ajax_obs::{AttrValue, SpanLog};
use std::collections::VecDeque;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

/// One unit of shard work, or the shutdown pill.
pub(crate) enum Job {
    Eval {
        query: Arc<Query>,
        weights: RankWeights,
        /// Absolute deadline on the server's clock, if any.
        deadline: Option<Micros>,
        reply: Arc<Rendezvous>,
    },
    Shutdown,
}

/// The MPMC channel one shard's workers consume from.
pub(crate) struct JobQueue {
    jobs: Mutex<VecDeque<Job>>,
    available_cv: Condvar,
}

impl JobQueue {
    fn new() -> Self {
        Self {
            jobs: Mutex::new(VecDeque::new()),
            available_cv: Condvar::new(),
        }
    }

    fn push(&self, job: Job) {
        self.jobs.lock().unwrap().push_back(job);
        self.available_cv.notify_one();
    }

    fn pop(&self) -> Job {
        let mut jobs = self.jobs.lock().unwrap();
        loop {
            if let Some(job) = jobs.pop_front() {
                return job;
            }
            jobs = self.available_cv.wait(jobs).unwrap();
        }
    }
}

/// One shard's queue, swappable index, and worker threads.
pub(crate) struct ShardPool {
    queue: Arc<JobQueue>,
    /// Double `Arc` so workers take a cheap snapshot of the current index
    /// (`Arc<InvertedIndex>`) and an in-progress reload never blocks behind
    /// a long evaluation.
    index: Arc<RwLock<Arc<InvertedIndex>>>,
    workers: Vec<JoinHandle<()>>,
}

impl ShardPool {
    /// Spawns `workers` threads over `index` for shard `shard_idx`.
    pub(crate) fn spawn(
        shard_idx: usize,
        index: InvertedIndex,
        workers: usize,
        clock: ServeClock,
        metrics: Arc<Metrics>,
        eval_cost_micros: Micros,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Self {
        let queue = Arc::new(JobQueue::new());
        let index = Arc::new(RwLock::new(Arc::new(index)));
        let handles = (0..workers.max(1))
            .map(|w| {
                let queue = Arc::clone(&queue);
                let index = Arc::clone(&index);
                let clock = clock.clone();
                let metrics = Arc::clone(&metrics);
                let trace = trace.clone();
                std::thread::Builder::new()
                    .name(format!("ajax-serve-s{shard_idx}w{w}"))
                    .spawn(move || {
                        worker_loop(
                            shard_idx,
                            &queue,
                            &index,
                            &clock,
                            &metrics,
                            eval_cost_micros,
                            trace,
                        )
                    })
                    .expect("spawn shard worker")
            })
            .collect();
        Self {
            queue,
            index,
            workers: handles,
        }
    }

    /// Enqueues a job (and maintains the shard's queue-depth gauge).
    pub(crate) fn submit(&self, shard_idx: usize, job: Job, metrics: &Metrics) {
        metrics.shard_queue_depth[shard_idx].fetch_add(1, Ordering::Relaxed);
        self.queue.push(job);
    }

    /// Swaps in a new index; subsequent jobs evaluate against it.
    pub(crate) fn swap_index(&self, index: InvertedIndex) {
        *self.index.write().unwrap() = Arc::new(index);
    }

    /// Current index snapshot (diagnostics).
    pub(crate) fn index(&self) -> Arc<InvertedIndex> {
        self.index.read().unwrap().clone()
    }

    /// Sends one shutdown pill per worker and joins them.
    pub(crate) fn shutdown(&mut self) {
        for _ in 0..self.workers.len() {
            self.queue.push(Job::Shutdown);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn worker_loop(
    shard_idx: usize,
    queue: &JobQueue,
    index: &RwLock<Arc<InvertedIndex>>,
    clock: &ServeClock,
    metrics: &Metrics,
    eval_cost_micros: Micros,
    trace: Option<Arc<Mutex<SpanLog>>>,
) {
    loop {
        let job = queue.pop();
        let Job::Eval {
            query,
            weights,
            deadline,
            reply,
        } = job
        else {
            return;
        };
        metrics.shard_queue_depth[shard_idx].fetch_sub(1, Ordering::Relaxed);
        let eval_start = clock.now_micros();

        // `>=` so a zero-length deadline deterministically times out even
        // under a manual clock that never advances — the degraded path is
        // testable without real time.
        let expired = deadline.is_some_and(|d| clock.now_micros() >= d);
        let outcome = if expired {
            ShardOutcome::TimedOut
        } else {
            let snapshot = index.read().unwrap().clone();
            let evaluated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                eval_shard(&snapshot, shard_idx, &query, &weights)
            }));
            // Under a manual clock, evaluation "costs" virtual time so load
            // tests can model slow shards deterministically.
            clock.advance(eval_cost_micros);
            match evaluated {
                Ok((results, stats)) => ShardOutcome::Evaluated(results, stats),
                Err(_) => ShardOutcome::Failed,
            }
        };
        if let Some(trace) = &trace {
            let result = match &outcome {
                ShardOutcome::Evaluated(..) => "evaluated",
                ShardOutcome::TimedOut => "timed_out",
                ShardOutcome::Failed => "failed",
            };
            let end = clock.now_micros();
            let mut log = trace.lock().expect("trace ring lock");
            // Track 0 belongs to the server's admission/merge spans.
            log.set_track(shard_idx as u32 + 1);
            log.push(
                "shard.eval",
                eval_start,
                end,
                vec![
                    ("shard", AttrValue::U64(shard_idx as u64)),
                    ("result", AttrValue::str(result)),
                ],
            );
        }
        reply.deliver(shard_idx, outcome);
    }
}

impl Drop for ShardPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The in-process transport: one [`ShardPool`] per shard, sharing the
/// server's metrics registry and (optional) trace ring. This is what
/// [`ShardServer::new`](crate::ShardServer::new) builds; remote transports
/// come from `ajax-dist`.
pub(crate) struct PoolTransport {
    pools: Vec<ShardPool>,
    metrics: Arc<Metrics>,
    workers_per_shard: usize,
}

impl PoolTransport {
    /// Spawns `shards.len() × workers_per_shard` worker threads.
    pub(crate) fn spawn(
        shards: Vec<InvertedIndex>,
        config: &ServeConfig,
        metrics: Arc<Metrics>,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Self {
        let pools = shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| {
                ShardPool::spawn(
                    i,
                    shard,
                    config.workers_per_shard,
                    config.clock.clone(),
                    Arc::clone(&metrics),
                    config.eval_cost_micros,
                    trace.clone(),
                )
            })
            .collect();
        Self {
            pools,
            metrics,
            workers_per_shard: config.workers_per_shard,
        }
    }
}

impl ShardTransport for PoolTransport {
    fn shard_count(&self) -> usize {
        self.pools.len()
    }

    fn worker_count(&self) -> usize {
        self.pools.len() * self.workers_per_shard.max(1)
    }

    fn ship(
        &self,
        query: Arc<Query>,
        weights: RankWeights,
        deadline: Option<Micros>,
        reply: Arc<Rendezvous>,
    ) {
        for (shard_idx, pool) in self.pools.iter().enumerate() {
            pool.submit(
                shard_idx,
                Job::Eval {
                    query: Arc::clone(&query),
                    weights,
                    deadline,
                    reply: Arc::clone(&reply),
                },
                &self.metrics,
            );
        }
    }

    fn total_states(&self) -> u64 {
        self.pools.iter().map(|p| p.index().total_states).sum()
    }

    fn index_bytes(&self) -> u64 {
        self.pools
            .iter()
            .map(|p| p.index().approx_bytes() as u64)
            .sum()
    }

    fn index_mapped_bytes(&self) -> u64 {
        self.pools
            .iter()
            .map(|p| p.index().mapped_bytes() as u64)
            .sum()
    }

    fn reload(&self, shards: Vec<InvertedIndex>) -> Result<(), TransportError> {
        if shards.len() != self.pools.len() {
            return Err(TransportError::Unsupported(
                "reload with a different shard count",
            ));
        }
        for (pool, shard) in self.pools.iter().zip(shards) {
            pool.swap_index(shard);
        }
        Ok(())
    }

    fn shutdown(&mut self) {
        for pool in &mut self.pools {
            pool.shutdown();
        }
    }
}
