//! Time source for deadlines and latency measurement.
//!
//! The serving layer needs "now" in two places — stamping a query's deadline
//! at admission and measuring its latency at completion. Production wants
//! wall time; load tests want the repo's virtual-time model (`ajax_net`'s
//! [`SimClock`](ajax_net::SimClock)) so overload and deadline behavior stay
//! deterministic on any machine. [`ServeClock`] abstracts over both.

use ajax_net::{Micros, SimClock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A shared, thread-safe handle to a virtual clock. Cloning shares the
/// underlying counter — the thread-safe counterpart of `SimClock`, which is
/// single-owner by design.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    now: Arc<AtomicU64>,
}

impl ManualClock {
    /// A virtual clock starting at 0 µs.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the virtual clock from a `SimClock`'s current reading.
    pub fn from_sim(sim: &SimClock) -> Self {
        let c = Self::new();
        c.now.store(sim.now(), Ordering::SeqCst);
        c
    }

    /// Current virtual time.
    pub fn now(&self) -> Micros {
        self.now.load(Ordering::SeqCst)
    }

    /// Advances virtual time by `d` µs (any thread may call this).
    pub fn advance(&self, d: Micros) {
        self.now.fetch_add(d, Ordering::SeqCst);
    }
}

/// Where the server reads time from.
#[derive(Debug, Clone)]
pub enum ServeClock {
    /// Real time, measured from a fixed epoch so readings are monotone `u64`
    /// micros like everything else in the repo.
    Wall { epoch: Instant },
    /// Virtual time driven by the test harness through a [`ManualClock`].
    Manual(ManualClock),
}

impl ServeClock {
    /// A wall clock whose epoch is "now".
    pub fn wall() -> Self {
        ServeClock::Wall {
            epoch: Instant::now(),
        }
    }

    /// A virtual clock plus the handle the test uses to drive it. The
    /// returned handle and the clock share state.
    pub fn manual() -> (Self, ManualClock) {
        let handle = ManualClock::new();
        (ServeClock::Manual(handle.clone()), handle)
    }

    /// Current time in µs since the clock's epoch.
    pub fn now_micros(&self) -> Micros {
        match self {
            ServeClock::Wall { epoch } => epoch.elapsed().as_micros() as Micros,
            ServeClock::Manual(m) => m.now(),
        }
    }

    /// True when driven by a [`ManualClock`] (workers then account virtual
    /// evaluation cost instead of the caller waiting on wall timeouts).
    pub fn is_manual(&self) -> bool {
        matches!(self, ServeClock::Manual(_))
    }

    /// Advances a manual clock; no-op on a wall clock.
    pub fn advance(&self, d: Micros) {
        if let ServeClock::Manual(m) = self {
            m.advance(d);
        }
    }
}

impl Default for ServeClock {
    fn default() -> Self {
        ServeClock::wall()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_shared_across_clones() {
        let (clock, handle) = ServeClock::manual();
        assert_eq!(clock.now_micros(), 0);
        handle.advance(125);
        assert_eq!(clock.now_micros(), 125);
        clock.advance(75);
        assert_eq!(handle.now(), 200);
    }

    #[test]
    fn seeded_from_sim_clock() {
        let mut sim = SimClock::new();
        sim.advance(1_000);
        let m = ManualClock::from_sim(&sim);
        assert_eq!(m.now(), 1_000);
    }

    #[test]
    fn wall_clock_is_monotone() {
        let clock = ServeClock::wall();
        let a = clock.now_micros();
        let b = clock.now_micros();
        assert!(b >= a);
        clock.advance(1_000_000); // must be a no-op
        assert!(clock.now_micros() < 1_000_000_000);
        assert!(!clock.is_manual());
    }
}
