//! The concurrent shard server: admission control, fan-out, degradation.
//!
//! [`ShardServer`] owns a [`ShardTransport`] — in-process worker pools by
//! default ([`crate::pool`]), remote shard processes when built via
//! [`ShardServer::from_transport`] (see `ajax-dist`). A query's life:
//!
//! 1. **admission** — a bounded in-flight gate; beyond
//!    [`ServeConfig::max_in_flight`] the query is shed with
//!    [`ServeError::Overloaded`] (typed, never silently dropped);
//! 2. **cache lookup** — a hit answers immediately from the LRU;
//! 3. **fan-out** — the transport ships the query to every shard; shards
//!    evaluate in parallel and deliver into a per-query slot array;
//! 4. **merge** — the caller collects replies *in shard order* and runs
//!    [`ajax_index::merge_shard_outputs`], the same code the sequential
//!    broker uses, so scores are bit-identical to `QueryBroker::search`;
//! 5. **degradation** — with a deadline configured, shards that miss it are
//!    skipped: the response carries whatever arrived, flagged `degraded`,
//!    with the missing shard ids listed. Degraded results are not cached.

use crate::cache::{cache_key, QueryCache};
use crate::clock::ServeClock;
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::pool::PoolTransport;
use crate::transport::{Rendezvous, ShardOutcome, ShardTransport};
use ajax_index::{merge_shard_outputs, BrokerResult, Query, QueryBroker, RankWeights};
use ajax_net::Micros;
use ajax_obs::{AttrValue, SpanEvent, SpanLog};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Tunables for a [`ShardServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads per shard (≥ 1).
    pub workers_per_shard: usize,
    /// LRU result-cache entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Maximum concurrently admitted queries; excess load is shed with
    /// [`ServeError::Overloaded`]. 0 sheds everything (drain mode).
    pub max_in_flight: usize,
    /// Per-query deadline relative to admission; `None` waits for every
    /// shard. Shards that miss it are dropped from the merge (degraded
    /// partial results).
    pub deadline_micros: Option<Micros>,
    /// Time source for deadlines, latency, and qps.
    pub clock: ServeClock,
    /// Virtual µs a shard evaluation costs under a manual clock (ignored by
    /// the wall clock). Lets load tests model slow shards deterministically.
    pub eval_cost_micros: Micros,
    /// Record `serve.*` / `shard.eval` spans into a shared flight-recorder
    /// ring, drained with [`ShardServer::take_trace`]. Timestamps come from
    /// the server's clock: wall-clock diagnostics normally, deterministic
    /// virtual time under a manual clock.
    pub trace: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            workers_per_shard: 1,
            cache_capacity: 256,
            max_in_flight: 64,
            deadline_micros: None,
            clock: ServeClock::wall(),
            eval_cost_micros: 0,
            trace: false,
        }
    }
}

impl ServeConfig {
    pub fn with_workers_per_shard(mut self, n: usize) -> Self {
        self.workers_per_shard = n;
        self
    }

    pub fn with_cache_capacity(mut self, n: usize) -> Self {
        self.cache_capacity = n;
        self
    }

    pub fn with_max_in_flight(mut self, n: usize) -> Self {
        self.max_in_flight = n;
        self
    }

    pub fn with_deadline_micros(mut self, d: Option<Micros>) -> Self {
        self.deadline_micros = d;
        self
    }

    pub fn with_clock(mut self, clock: ServeClock) -> Self {
        self.clock = clock;
        self
    }

    pub fn with_eval_cost_micros(mut self, c: Micros) -> Self {
        self.eval_cost_micros = c;
        self
    }

    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }
}

/// Why a query was refused or a reload rejected.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Admission control shed the query: `in_flight` queries were already
    /// running against a capacity of `max_in_flight`.
    Overloaded {
        in_flight: usize,
        max_in_flight: usize,
    },
    /// `reload` was given a broker with a different shard count than the
    /// server was built with.
    ShardCountMismatch { expected: usize, got: usize },
    /// `reload` was given a broker built with different rank weights than
    /// the server scores and cache-keys with (compared bit-for-bit, like
    /// the cache key). Serving the new shards under the old weights would
    /// silently diverge from a fresh broker.
    WeightsMismatch {
        expected: RankWeights,
        got: RankWeights,
    },
    /// The server's `shutdown` has run; its workers are gone, so queries
    /// can no longer be served.
    ShuttingDown,
    /// The shard transport refused or failed the operation (e.g. hot
    /// reloading remote shard processes, which must be restarted instead).
    Transport(String),
    /// `reload_from_path` was pointed at a missing, corrupt, or
    /// wrong-format index artifact; the server kept serving the previous
    /// generation.
    CorruptArtifact(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                in_flight,
                max_in_flight,
            } => write!(
                f,
                "overloaded: {in_flight} queries in flight (capacity {max_in_flight})"
            ),
            ServeError::ShardCountMismatch { expected, got } => {
                write!(
                    f,
                    "reload shard count mismatch: expected {expected}, got {got}"
                )
            }
            ServeError::WeightsMismatch { expected, got } => {
                write!(
                    f,
                    "reload rank weights mismatch: server uses {expected:?}, \
                     reloaded index was built with {got:?}"
                )
            }
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::Transport(e) => write!(f, "shard transport: {e}"),
            ServeError::CorruptArtifact(e) => {
                write!(f, "reload rejected, serving previous generation: {e}")
            }
        }
    }
}

/// The four rank weights as bit patterns — the same identity the cache key
/// uses, since cached scores are only valid for bit-identical weights.
fn weights_bits(w: &RankWeights) -> [u64; 4] {
    [
        w.pagerank.to_bits(),
        w.ajaxrank.to_bits(),
        w.tfidf.to_bits(),
        w.proximity.to_bits(),
    ]
}

impl std::error::Error for ServeError {}

/// A served query's answer.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeResponse {
    /// Globally merged, ranked results (identical to `QueryBroker::search`
    /// when not degraded).
    pub results: Vec<BrokerResult>,
    /// True when at least one shard missed the deadline — `results` then
    /// covers only the shards that answered.
    pub degraded: bool,
    /// Shards absent from the merge (empty unless `degraded`).
    pub missing_shards: Vec<usize>,
    /// True when answered from the result cache.
    pub from_cache: bool,
    /// Admission-to-response latency on the server's clock.
    pub latency_micros: Micros,
}

/// Decrements the in-flight gauge when the query finishes, however it
/// finishes.
struct InFlightGuard<'a>(&'a AtomicUsize);

impl Drop for InFlightGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// A long-lived concurrent query server over sharded indexes. Shareable
/// across client threads (`&self` methods); workers shut down on drop.
pub struct ShardServer {
    transport: Box<dyn ShardTransport>,
    weights: RankWeights,
    cache: QueryCache,
    metrics: Arc<Metrics>,
    config: ServeConfig,
    in_flight: AtomicUsize,
    shutting_down: AtomicBool,
    start_micros: Micros,
    /// Shared flight-recorder ring (None when tracing is off — the disabled
    /// path is a single `Option` check, no lock, no allocation).
    trace: Option<Arc<Mutex<SpanLog>>>,
}

impl ShardServer {
    /// Takes over a broker's shards, spawning
    /// `shards × workers_per_shard` worker threads.
    pub fn new(broker: QueryBroker, config: ServeConfig) -> Self {
        let (shards, weights) = broker.into_parts();
        let metrics = Arc::new(Metrics::new(shards.len()));
        let trace = config.trace.then(|| {
            Arc::new(Mutex::new(SpanLog::with_capacity(
                ajax_obs::DEFAULT_CAPACITY,
            )))
        });
        let transport = Box::new(PoolTransport::spawn(
            shards,
            &config,
            Arc::clone(&metrics),
            trace.clone(),
        ));
        Self::assemble(transport, weights, config, metrics, trace)
    }

    /// Builds a server over an externally constructed transport (e.g.
    /// `ajax_dist::TcpTransport` talking to shard processes). The server
    /// keeps all its edge logic — admission, cache, deadlines, merge —
    /// while the transport decides where evaluation happens. Pass the
    /// transport's trace ring so coordinator and rpc spans share one
    /// timeline; with `None` and `config.trace` set, a fresh ring is
    /// created for the server's own spans.
    pub fn from_transport(
        transport: Box<dyn ShardTransport>,
        weights: RankWeights,
        config: ServeConfig,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Self {
        let metrics = Arc::new(Metrics::new(transport.shard_count()));
        let trace = trace.or_else(|| {
            config.trace.then(|| {
                Arc::new(Mutex::new(SpanLog::with_capacity(
                    ajax_obs::DEFAULT_CAPACITY,
                )))
            })
        });
        Self::assemble(transport, weights, config, metrics, trace)
    }

    fn assemble(
        transport: Box<dyn ShardTransport>,
        weights: RankWeights,
        config: ServeConfig,
        metrics: Arc<Metrics>,
        trace: Option<Arc<Mutex<SpanLog>>>,
    ) -> Self {
        metrics
            .index_bytes
            .store(transport.index_bytes(), Ordering::Relaxed);
        metrics
            .index_mapped_bytes
            .store(transport.index_mapped_bytes(), Ordering::Relaxed);
        let start_micros = config.clock.now_micros();
        Self {
            transport,
            weights,
            cache: QueryCache::new(config.cache_capacity),
            metrics,
            config,
            in_flight: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            start_micros,
            trace,
        }
    }

    /// Records one span into the shared ring (no-op when tracing is off).
    /// Callers gate attribute construction on [`Self::tracing`].
    fn record_span(
        &self,
        name: &'static str,
        start: Micros,
        end: Micros,
        args: Vec<(&'static str, AttrValue)>,
    ) {
        if let Some(trace) = &self.trace {
            let mut log = trace.lock().expect("trace ring lock");
            // Track 0 is the server's admission/merge timeline; shard
            // workers use tracks 1..=shards.
            log.set_track(0);
            log.push(name, start, end, args);
        }
    }

    /// True when this server records spans.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Drains the serve-side flight recorder (empty when tracing is off).
    /// Under a wall clock these spans are diagnostics; under a manual clock
    /// their timestamps are deterministic virtual time.
    pub fn take_trace(&self) -> Vec<SpanEvent> {
        match &self.trace {
            Some(trace) => trace.lock().expect("trace ring lock").take(),
            None => Vec::new(),
        }
    }

    /// Number of shards served.
    pub fn shard_count(&self) -> usize {
        self.transport.shard_count()
    }

    /// Total evaluation lanes (worker threads locally, connections when
    /// distributed).
    pub fn worker_count(&self) -> usize {
        self.transport.worker_count()
    }

    /// True when shards live in other processes.
    pub fn is_remote(&self) -> bool {
        self.transport.is_remote()
    }

    /// The rank weights queries are scored with.
    pub fn weights(&self) -> RankWeights {
        self.weights
    }

    /// The server's time source (clone it to drive a manual clock).
    pub fn clock(&self) -> &ServeClock {
        &self.config.clock
    }

    /// Parses `text` and serves it — the convenience entry point.
    pub fn search(&self, text: &str) -> Result<ServeResponse, ServeError> {
        self.search_query(&Query::parse(text))
    }

    /// Serves an already-parsed query: admission → cache → fan-out → merge.
    pub fn search_query(&self, query: &Query) -> Result<ServeResponse, ServeError> {
        // After `shutdown` the worker threads are gone; fanning out would
        // park a job on a queue nobody drains and `wait_all` would block
        // forever. Refuse with a typed error instead.
        if self.shutting_down.load(Ordering::SeqCst) {
            return Err(ServeError::ShuttingDown);
        }
        let admitted_at = self.config.clock.now_micros();

        // Admission control: reserve a slot or shed.
        let max = self.config.max_in_flight;
        if self
            .in_flight
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < max).then_some(n + 1)
            })
            .is_err()
        {
            self.metrics.shed.fetch_add(1, Ordering::Relaxed);
            if self.tracing() {
                self.record_span(
                    "serve.shed",
                    admitted_at,
                    admitted_at,
                    vec![("max_in_flight", AttrValue::U64(max as u64))],
                );
            }
            return Err(ServeError::Overloaded {
                in_flight: self.in_flight.load(Ordering::SeqCst),
                max_in_flight: max,
            });
        }
        let _guard = InFlightGuard(&self.in_flight);

        if query.is_empty() {
            return Ok(self.finish(admitted_at, Vec::new(), false, Vec::new(), false));
        }

        // Cache lookup.
        let key = cache_key(query, &self.weights);
        if let Some(cached) = self.cache.get(&key) {
            self.metrics.cache_hits.fetch_add(1, Ordering::Relaxed);
            return Ok(self.finish(admitted_at, (*cached).clone(), false, Vec::new(), true));
        }
        self.metrics.cache_misses.fetch_add(1, Ordering::Relaxed);

        // Fan out through the transport: one job per shard.
        let deadline = self.config.deadline_micros.map(|d| admitted_at + d);
        let query_arc = Arc::new(query.clone());
        let reply = Arc::new(Rendezvous::new(self.transport.shard_count()));
        self.transport.ship(
            Arc::clone(&query_arc),
            self.weights,
            deadline,
            Arc::clone(&reply),
        );

        // Collect. Under a wall clock with a deadline the caller enforces it
        // here (walking away from late shards); otherwise the transport
        // delivers for every shard — `TimedOut` when a manual-clock deadline
        // expired.
        let replies = match (deadline, self.config.clock.is_manual()) {
            (Some(d), false) => {
                let clock = &self.config.clock;
                reply.wait_until(|| clock.now_micros(), d)
            }
            _ => reply.wait_all(),
        };

        // Merge in shard order — same summation order as the sequential
        // broker, hence bit-identical scores when nothing is missing.
        let mut all_results = Vec::new();
        let mut all_stats = Vec::new();
        let mut missing = Vec::new();
        for (shard_idx, slot) in replies.into_iter().enumerate() {
            match slot {
                Some(ShardOutcome::Evaluated(results, stats)) => {
                    all_results.extend(results);
                    all_stats.push(stats);
                }
                Some(ShardOutcome::TimedOut) | Some(ShardOutcome::Failed) | None => {
                    missing.push(shard_idx)
                }
            }
        }
        let degraded = !missing.is_empty();
        let merge_start = self.config.clock.now_micros();
        let results = merge_shard_outputs(query, &self.weights, all_results, &all_stats);
        if self.tracing() {
            let merge_span = if self.transport.is_remote() {
                "dist.merge"
            } else {
                "serve.merge"
            };
            self.record_span(
                merge_span,
                merge_start,
                self.config.clock.now_micros(),
                vec![
                    (
                        "shards",
                        AttrValue::U64(self.transport.shard_count() as u64),
                    ),
                    ("missing", AttrValue::U64(missing.len() as u64)),
                ],
            );
        }

        if !degraded {
            let evicted = self.cache.insert(key, Arc::new(results.clone()));
            self.metrics
                .cache_evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
        Ok(self.finish(admitted_at, results, degraded, missing, false))
    }

    fn finish(
        &self,
        admitted_at: Micros,
        results: Vec<BrokerResult>,
        degraded: bool,
        missing_shards: Vec<usize>,
        from_cache: bool,
    ) -> ServeResponse {
        let latency_micros = self.config.clock.now_micros().saturating_sub(admitted_at);
        self.metrics.completed.fetch_add(1, Ordering::Relaxed);
        if degraded {
            self.metrics.degraded.fetch_add(1, Ordering::Relaxed);
        }
        self.metrics.latency.record(latency_micros);
        if self.tracing() {
            let result = if from_cache {
                "cache_hit"
            } else if degraded {
                "degraded"
            } else {
                "full"
            };
            self.record_span(
                "serve.query",
                admitted_at,
                admitted_at + latency_micros,
                vec![
                    ("result", AttrValue::str(result)),
                    ("results", AttrValue::U64(results.len() as u64)),
                ],
            );
        }
        ServeResponse {
            results,
            degraded,
            missing_shards,
            from_cache,
            latency_micros,
        }
    }

    /// Swaps in a freshly built index (same shard count, same rank weights)
    /// and invalidates the result cache. In-flight queries finish against
    /// whichever index their shard evaluation snapshots. A broker built with
    /// different weights is rejected — the server would otherwise keep
    /// scoring and cache-keying with its original weights, silently
    /// diverging from a fresh broker.
    pub fn reload(&self, broker: QueryBroker) -> Result<(), ServeError> {
        self.try_reload(broker).inspect_err(|_| {
            self.metrics
                .reloads_rejected
                .fetch_add(1, Ordering::Relaxed);
        })
    }

    fn try_reload(&self, broker: QueryBroker) -> Result<(), ServeError> {
        if broker.shard_count() != self.transport.shard_count() {
            return Err(ServeError::ShardCountMismatch {
                expected: self.transport.shard_count(),
                got: broker.shard_count(),
            });
        }
        let index_bytes = broker.approx_bytes() as u64;
        let index_mapped_bytes = broker.mapped_bytes() as u64;
        let (shards, weights) = broker.into_parts();
        if weights_bits(&weights) != weights_bits(&self.weights) {
            return Err(ServeError::WeightsMismatch {
                expected: self.weights,
                got: weights,
            });
        }
        self.transport
            .reload(shards)
            .map_err(|e| ServeError::Transport(e.to_string()))?;
        self.invalidate_cache();
        self.metrics.reloads.fetch_add(1, Ordering::Relaxed);
        self.metrics
            .index_bytes
            .store(index_bytes, Ordering::Relaxed);
        self.metrics
            .index_mapped_bytes
            .store(index_mapped_bytes, Ordering::Relaxed);
        Ok(())
    }

    /// Reloads the serving index from a persisted single-shard artifact
    /// (what `ajax-search build --out` writes). A missing, torn, or
    /// checksum-failing file is rejected as
    /// [`ServeError::CorruptArtifact`] and the server keeps answering
    /// queries from the generation it already holds; the rejection is
    /// visible as `reloads_rejected` in the metrics snapshot.
    pub fn reload_from_path(&self, path: impl AsRef<std::path::Path>) -> Result<(), ServeError> {
        let index = ajax_index::persist::load_index(&path).map_err(|e| {
            self.metrics
                .reloads_rejected
                .fetch_add(1, Ordering::Relaxed);
            ServeError::CorruptArtifact(e.to_string())
        })?;
        let mut broker = QueryBroker::new(vec![index]);
        broker.weights = self.weights;
        self.reload(broker)
    }

    /// Drops every cached result (exposed for operational use; `reload`
    /// calls it automatically).
    pub fn invalidate_cache(&self) {
        self.cache.clear();
    }

    /// Total states across shards (diagnostics, mirrors
    /// `QueryBroker::total_states`).
    pub fn total_states(&self) -> u64 {
        self.transport.total_states()
    }

    /// A point-in-time metrics snapshot.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let uptime = self
            .config
            .clock
            .now_micros()
            .saturating_sub(self.start_micros);
        self.metrics
            .snapshot(uptime, self.cache.len(), self.worker_count())
    }

    /// The snapshot as pretty JSON (what `ajax-search serve` prints).
    pub fn metrics_json(&self) -> String {
        serde_json::to_string_pretty(&self.metrics_snapshot()).expect("metrics snapshot serializes")
    }

    /// Stops all workers (also runs on drop). Subsequent queries are
    /// refused with [`ServeError::ShuttingDown`] instead of deadlocking on
    /// queues nobody drains.
    pub fn shutdown(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        self.transport.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_crawl::model::AppModel;
    use ajax_index::IndexBuilder;

    fn model(url: &str, states: &[&str]) -> AppModel {
        let mut m = AppModel::new(url);
        for (i, text) in states.iter().enumerate() {
            m.add_state(i as u64 + 1, (*text).to_string(), None);
        }
        m
    }

    fn corpus() -> Vec<AppModel> {
        vec![
            model("http://x/1", &["wow great video", "more wow content here"]),
            model("http://x/2", &["dance dance dance", "wow dance"]),
            model("http://x/3", &["nothing relevant at all"]),
            model("http://x/4", &["wow", "dance wow", "silence"]),
            model("http://x/5", &["great dance video wow", "hidden gem"]),
        ]
    }

    fn build_broker(per_shard: usize) -> QueryBroker {
        let shards = corpus()
            .chunks(per_shard)
            .map(|chunk| {
                let mut b = IndexBuilder::new();
                for m in chunk {
                    b.add_model(m, Some(0.2));
                }
                b.build()
            })
            .collect();
        QueryBroker::new(shards)
    }

    const QUERIES: &[&str] = &[
        "wow",
        "dance",
        "wow dance",
        "great video",
        "hidden",
        "absent",
    ];

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        for per_shard in [1, 2, 5] {
            for workers in [1, 3] {
                let sequential = build_broker(per_shard);
                let server = ShardServer::new(
                    build_broker(per_shard),
                    ServeConfig::default().with_workers_per_shard(workers),
                );
                for q in QUERIES {
                    let query = Query::parse(q);
                    let expected = sequential.search(&query);
                    let got = server.search_query(&query).unwrap();
                    assert!(!got.degraded);
                    assert_eq!(expected.len(), got.results.len(), "query {q:?}");
                    for (e, g) in expected.iter().zip(got.results.iter()) {
                        assert_eq!(e.url, g.url);
                        assert_eq!(e.doc, g.doc);
                        assert_eq!(e.shard, g.shard);
                        assert_eq!(
                            e.score.to_bits(),
                            g.score.to_bits(),
                            "score bits differ for {q:?}: {} vs {}",
                            e.score,
                            g.score
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cache_hit_on_repeat_and_invalidation_on_reload() {
        let server = ShardServer::new(build_broker(2), ServeConfig::default());
        let first = server.search("wow dance").unwrap();
        assert!(!first.from_cache);
        let second = server.search("wow dance").unwrap();
        assert!(second.from_cache);
        assert_eq!(first.results, second.results);

        let snap = server.metrics_snapshot();
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert!(snap.cache_hit_rate > 0.0);
        assert_eq!(snap.cache_entries, 1);
        assert!(snap.index_bytes > 0, "index size gauge set at startup");

        server.reload(build_broker(2)).unwrap();
        let third = server.search("wow dance").unwrap();
        assert!(!third.from_cache, "reload must invalidate the cache");
        assert_eq!(third.results, first.results);
        assert_eq!(server.metrics_snapshot().reloads, 1);
    }

    #[test]
    fn reload_with_wrong_shard_count_is_rejected() {
        let server = ShardServer::new(build_broker(2), ServeConfig::default());
        let err = server.reload(build_broker(1)).unwrap_err();
        assert_eq!(
            err,
            ServeError::ShardCountMismatch {
                expected: 3,
                got: 5
            }
        );
        // The original index still serves.
        assert!(!server.search("wow").unwrap().results.is_empty());
    }

    #[test]
    fn reload_with_different_weights_is_rejected() {
        let server = ShardServer::new(build_broker(2), ServeConfig::default());
        let cached = server.search("wow dance").unwrap();
        let mut other = build_broker(2);
        other.weights.tfidf += 0.25;
        let err = server.reload(other).unwrap_err();
        assert!(matches!(err, ServeError::WeightsMismatch { .. }));
        // The rejected reload must not have swapped shards or dropped the
        // cache: the original index still serves, from cache.
        let again = server.search("wow dance").unwrap();
        assert!(again.from_cache);
        assert_eq!(again.results, cached.results);
        assert_eq!(server.metrics_snapshot().reloads, 0);
        assert_eq!(server.metrics_snapshot().reloads_rejected, 1);
    }

    #[test]
    fn corrupt_reload_keeps_serving_old_generation() {
        let mut path = std::env::temp_dir();
        path.push(format!("ajax_serve_reload_{}.ajx", std::process::id()));

        // A single-shard server whose index came from a persisted artifact.
        let mut b = IndexBuilder::new();
        for m in corpus() {
            b.add_model(&m, Some(0.2));
        }
        ajax_index::persist::save_index(&path, &b.build()).unwrap();
        let server = ShardServer::new(
            QueryBroker::new(vec![ajax_index::persist::load_index(&path).unwrap()]),
            ServeConfig::default(),
        );
        let before = server.search("wow dance").unwrap();
        assert!(!before.results.is_empty());
        assert!(
            server.metrics_snapshot().index_mapped_bytes > 0,
            "a v4 artifact serves from the mapping"
        );

        // A valid artifact reloads fine.
        server.reload_from_path(&path).unwrap();
        assert_eq!(server.metrics_snapshot().reloads, 1);

        // Replace the artifact with a truncated copy — atomically, by
        // rename, like every legitimate writer (and unlike an in-place
        // truncation, which would clobber the inode the serving generation
        // has mmap-ed; v4 index files are immutable once committed). The
        // reload must be refused, counted, and the old generation must keep
        // answering.
        let bytes = std::fs::read(&path).unwrap();
        let tmp = path.with_extension("corrupt_tmp");
        std::fs::write(&tmp, &bytes[..bytes.len() / 2]).unwrap();
        std::fs::rename(&tmp, &path).unwrap();
        let err = server.reload_from_path(&path).unwrap_err();
        assert!(matches!(err, ServeError::CorruptArtifact(_)), "{err:?}");
        let after = server.search("wow dance").unwrap();
        assert_eq!(after.results, before.results);
        let snap = server.metrics_snapshot();
        assert_eq!(snap.reloads, 1, "rejected reload must not count");
        assert_eq!(snap.reloads_rejected, 1);

        // A missing artifact is also a rejection, not a crash.
        std::fs::remove_file(&path).ok();
        let err = server.reload_from_path(&path).unwrap_err();
        assert!(matches!(err, ServeError::CorruptArtifact(_)));
        assert_eq!(server.metrics_snapshot().reloads_rejected, 2);
        assert_eq!(server.search("wow dance").unwrap().results, before.results);
    }

    #[test]
    fn zero_deadline_degrades_deterministically() {
        let (clock, _handle) = ServeClock::manual();
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default()
                .with_clock(clock)
                .with_deadline_micros(Some(0)),
        );
        let resp = server.search("wow").unwrap();
        assert!(resp.degraded);
        assert_eq!(resp.missing_shards, vec![0, 1, 2]);
        assert!(resp.results.is_empty());
        let snap = server.metrics_snapshot();
        assert_eq!(snap.completed, 1);
        assert_eq!(snap.degraded, 1);
        // Degraded results must not be cached.
        assert_eq!(snap.cache_entries, 0);
    }

    #[test]
    fn manual_clock_accounts_eval_cost() {
        let (clock, _handle) = ServeClock::manual();
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default()
                .with_clock(clock)
                .with_eval_cost_micros(500),
        );
        let resp = server.search("wow").unwrap();
        assert!(!resp.degraded);
        // 3 shards × 500 µs of virtual evaluation advanced the clock.
        assert_eq!(resp.latency_micros, 1_500);
        let snap = server.metrics_snapshot();
        assert!(snap.uptime_micros >= 1_500);
        assert!(snap.qps > 0.0);
    }

    #[test]
    fn drain_mode_sheds_everything() {
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default().with_max_in_flight(0),
        );
        let err = server.search("wow").unwrap_err();
        assert!(matches!(
            err,
            ServeError::Overloaded {
                max_in_flight: 0,
                ..
            }
        ));
        assert_eq!(server.metrics_snapshot().shed, 1);
    }

    #[test]
    fn no_query_lost_under_concurrent_overload() {
        // 8 client threads hammer a capacity-2 server; every request must
        // come back as either a response or a typed Overloaded error.
        let server = Arc::new(ShardServer::new(
            build_broker(1),
            ServeConfig::default().with_max_in_flight(2),
        ));
        const CLIENTS: usize = 8;
        const PER_CLIENT: usize = 25;
        let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let server = Arc::clone(&server);
                    scope.spawn(move || {
                        let mut ok = 0;
                        let mut shed = 0;
                        for i in 0..PER_CLIENT {
                            match server.search(QUERIES[(c + i) % QUERIES.len()]) {
                                Ok(resp) => {
                                    assert!(!resp.degraded);
                                    ok += 1;
                                }
                                Err(ServeError::Overloaded { .. }) => shed += 1,
                                Err(e) => panic!("unexpected error: {e}"),
                            }
                        }
                        (ok, shed)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let ok: usize = outcomes.iter().map(|o| o.0).sum();
        let shed: usize = outcomes.iter().map(|o| o.1).sum();
        assert_eq!(
            ok + shed,
            CLIENTS * PER_CLIENT,
            "every request accounted for"
        );
        assert!(ok > 0, "some queries must get through");
        let snap = server.metrics_snapshot();
        assert_eq!(snap.completed as usize, ok);
        assert_eq!(snap.shed as usize, shed);
        // The in-flight gauge drained back to zero.
        assert_eq!(server.in_flight.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn tracing_records_query_shard_and_merge_spans() {
        let (clock, _handle) = ServeClock::manual();
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default()
                .with_clock(clock)
                .with_eval_cost_micros(500)
                .with_tracing(true),
        );
        assert!(server.tracing());
        server.search("wow").unwrap(); // miss → fan-out
        server.search("wow").unwrap(); // cache hit
        let spans = server.take_trace();
        assert!(!spans.is_empty());
        let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
        assert_eq!(count("serve.query"), 2);
        assert_eq!(count("serve.merge"), 1, "cache hit skips the merge");
        assert_eq!(count("shard.eval"), 3, "one eval per shard");
        // Shard spans carry the virtual eval cost on per-shard tracks.
        for s in spans.iter().filter(|s| s.name == "shard.eval") {
            assert_eq!(s.dur, 500);
            assert!(s.track >= 1);
        }
        let hit = spans
            .iter()
            .filter(|s| s.name == "serve.query")
            .nth(1)
            .unwrap();
        assert_eq!(hit.track, 0);
        assert!(hit.args.contains(&("result", AttrValue::str("cache_hit"))));
        assert!(server.take_trace().is_empty(), "take_trace drains");
    }

    #[test]
    fn untraced_server_returns_no_spans() {
        let server = ShardServer::new(build_broker(2), ServeConfig::default());
        assert!(!server.tracing());
        server.search("wow").unwrap();
        assert!(server.take_trace().is_empty());
    }

    #[test]
    fn shed_query_records_a_shed_span() {
        let (clock, _handle) = ServeClock::manual();
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default()
                .with_clock(clock)
                .with_max_in_flight(0)
                .with_tracing(true),
        );
        assert!(server.search("wow").is_err());
        let spans = server.take_trace();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "serve.shed");
        assert_eq!(spans[0].dur, 0, "shed is an instant marker");
    }

    #[test]
    fn empty_query_answers_empty() {
        let server = ShardServer::new(build_broker(2), ServeConfig::default());
        let resp = server.search("   ").unwrap();
        assert!(resp.results.is_empty());
        assert!(!resp.degraded);
        assert_eq!(server.metrics_snapshot().completed, 1);
    }

    #[test]
    fn shutdown_is_idempotent() {
        let mut server = ShardServer::new(build_broker(2), ServeConfig::default());
        assert!(!server.search("wow").unwrap().results.is_empty());
        server.shutdown();
        server.shutdown(); // second call must not hang or panic
    }

    #[test]
    fn search_after_shutdown_errors_instead_of_hanging() {
        let mut server = ShardServer::new(build_broker(2), ServeConfig::default());
        server.shutdown();
        assert_eq!(server.search("wow").unwrap_err(), ServeError::ShuttingDown);
        // Cached entries are unreachable too — the refusal is unconditional.
        assert_eq!(
            server.search_query(&Query::parse("wow")).unwrap_err(),
            ServeError::ShuttingDown
        );
    }

    #[test]
    fn wall_clock_deadline_with_late_shard_degrades_without_panicking() {
        // Exercises the wall-clock `wait_until` abandonment path end to end:
        // a zero deadline under the wall clock makes the caller take the
        // reply slots (possibly before workers deliver); late deliveries
        // must be dropped, not panic the worker. With workers_per_shard=1 a
        // dead worker would hang the follow-up query forever.
        let server = ShardServer::new(
            build_broker(2),
            ServeConfig::default().with_deadline_micros(Some(0)),
        );
        for _ in 0..50 {
            let resp = server.search("wow dance").unwrap();
            assert!(resp.degraded || !resp.results.is_empty());
        }
        // Workers are still alive: a no-deadline-pressure query completes.
        let resp = server.search_query(&Query::parse("great video")).unwrap();
        assert!(resp.degraded || !resp.results.is_empty());
    }
}
