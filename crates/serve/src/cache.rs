//! LRU query-result cache.
//!
//! Keyed by the *normalized* query (the lowercased token list
//! `Query::parse` produces — order preserved, since term order feeds the
//! tf/proximity computation) plus the exact rank weights — two texts that
//! tokenize identically share an entry, but changing any weight changes the
//! key, since scores depend on it bit-for-bit. Values are `Arc`'d merged
//! result lists, so a hit is a clone of a pointer, not of the results.
//!
//! Implementation: a `HashMap` plus a recency `VecDeque` of
//! `(key, stamp)` pairs with lazy deletion — bumping an entry pushes a fresh
//! stamped pair instead of splicing the queue, and eviction pops pairs until
//! one's stamp matches the map's current stamp for that key. The queue is
//! additionally compacted (stale pairs swept) whenever it outgrows twice the
//! capacity, so hit-heavy workloads below capacity can't grow it without
//! bound. Amortized O(1), single `Mutex`, no dependency on an external LRU
//! crate.

use ajax_index::{BrokerResult, Query, RankWeights};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Builds the cache key for a parsed query under the given weights.
/// Weights are keyed by their bit patterns: equality of scores requires
/// exact equality of weights.
pub fn cache_key(query: &Query, weights: &RankWeights) -> String {
    let mut key = query.terms.join("\u{1f}");
    for w in [
        weights.pagerank,
        weights.ajaxrank,
        weights.tfidf,
        weights.proximity,
    ] {
        key.push('\u{1f}');
        key.push_str(&w.to_bits().to_string());
    }
    key
}

struct Entry {
    value: Arc<Vec<BrokerResult>>,
    stamp: u64,
}

#[derive(Default)]
struct Inner {
    map: HashMap<String, Entry>,
    recency: VecDeque<(String, u64)>,
    next_stamp: u64,
}

impl Inner {
    fn bump(&mut self, key: &str, capacity: usize) {
        let stamp = self.next_stamp;
        self.next_stamp += 1;
        if let Some(e) = self.map.get_mut(key) {
            e.stamp = stamp;
        }
        self.recency.push_back((key.to_string(), stamp));
        // Lazy deletion alone only sheds stale pairs under eviction
        // pressure; a hit-heavy workload whose working set stays below
        // capacity would grow the queue one pair per hit forever. Compact
        // whenever the queue outgrows a small multiple of capacity — the
        // O(len) sweep runs at most once per O(capacity) bumps, keeping the
        // amortized cost O(1).
        if self.recency.len() > capacity.saturating_mul(2).max(16) {
            self.compact();
        }
    }

    /// Drops every recency pair that is not its key's live (latest) stamp,
    /// leaving exactly one pair per cached entry.
    fn compact(&mut self) {
        let Inner { map, recency, .. } = self;
        recency.retain(|(key, stamp)| map.get(key).is_some_and(|e| e.stamp == *stamp));
    }

    /// Pops stale recency pairs until the front is the live pair of its key,
    /// then evicts that key. Returns whether an entry was evicted.
    fn evict_lru(&mut self) -> bool {
        while let Some((key, stamp)) = self.recency.pop_front() {
            match self.map.get(&key) {
                Some(e) if e.stamp == stamp => {
                    self.map.remove(&key);
                    return true;
                }
                _ => {} // stale pair from an earlier bump; skip
            }
        }
        false
    }
}

/// A thread-safe LRU cache of merged query results.
pub struct QueryCache {
    capacity: usize,
    inner: Mutex<Inner>,
}

impl QueryCache {
    /// A cache holding at most `capacity` entries; 0 disables caching
    /// (lookups always miss, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner::default()),
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// True when no entries are cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Looks up `key`, marking it most-recently-used on a hit.
    pub fn get(&self, key: &str) -> Option<Arc<Vec<BrokerResult>>> {
        if self.capacity == 0 {
            return None;
        }
        let mut inner = self.inner.lock().unwrap();
        let value = inner.map.get(key)?.value.clone();
        inner.bump(key, self.capacity);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting least-recently-used entries
    /// beyond capacity. Returns how many entries were evicted.
    pub fn insert(&self, key: String, value: Arc<Vec<BrokerResult>>) -> u64 {
        if self.capacity == 0 {
            return 0;
        }
        let mut inner = self.inner.lock().unwrap();
        inner.map.insert(key.clone(), Entry { value, stamp: 0 });
        inner.bump(&key, self.capacity);
        let mut evicted = 0;
        while inner.map.len() > self.capacity {
            if inner.evict_lru() {
                evicted += 1;
            } else {
                break;
            }
        }
        evicted
    }

    /// Drops every entry — called on index reload, when cached results may
    /// no longer reflect the index.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.map.clear();
        inner.recency.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_index::DocKey;

    fn val(n: u64) -> Arc<Vec<BrokerResult>> {
        Arc::new(vec![BrokerResult {
            shard: 0,
            url: format!("http://x/{n}"),
            doc: DocKey {
                page: n as u32,
                state: ajax_crawl::StateId(0),
            },
            score: n as f64,
        }])
    }

    #[test]
    fn key_depends_on_terms_and_weights() {
        let w = RankWeights::default();
        let a = cache_key(&Query::parse("Wow,   DANCE!"), &w);
        let b = cache_key(&Query::parse("wow dance"), &w);
        assert_eq!(a, b, "texts that tokenize identically share a key");
        assert_ne!(
            a,
            cache_key(&Query::parse("dance wow"), &w),
            "term order is part of the key"
        );
        let mut w2 = w;
        w2.tfidf += 1e-9;
        assert_ne!(b, cache_key(&Query::parse("wow dance"), &w2));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = QueryCache::new(2);
        assert_eq!(cache.insert("a".into(), val(1)), 0);
        assert_eq!(cache.insert("b".into(), val(2)), 0);
        assert!(cache.get("a").is_some()); // a is now more recent than b
        assert_eq!(cache.insert("c".into(), val(3)), 1); // evicts b
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn reinsert_refreshes_without_growth() {
        let cache = QueryCache::new(2);
        cache.insert("a".into(), val(1));
        cache.insert("a".into(), val(2));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a").unwrap()[0].score, 2.0);
    }

    #[test]
    fn zero_capacity_disables() {
        let cache = QueryCache::new(0);
        assert_eq!(cache.insert("a".into(), val(1)), 0);
        assert!(cache.get("a").is_none());
        assert!(cache.is_empty());
    }

    #[test]
    fn recency_queue_stays_bounded_under_repeated_hits() {
        let cache = QueryCache::new(4);
        cache.insert("a".into(), val(1));
        cache.insert("b".into(), val(2));
        for _ in 0..10_000 {
            assert!(cache.get("a").is_some());
            assert!(cache.get("b").is_some());
        }
        let inner = cache.inner.lock().unwrap();
        assert_eq!(inner.map.len(), 2);
        assert!(
            inner.recency.len() <= 16,
            "recency queue leaked: {} pairs for 2 live entries",
            inner.recency.len()
        );
    }

    #[test]
    fn clear_empties() {
        let cache = QueryCache::new(4);
        cache.insert("a".into(), val(1));
        cache.insert("b".into(), val(2));
        cache.clear();
        assert!(cache.is_empty());
        assert!(cache.get("a").is_none());
        // still usable after clear
        cache.insert("c".into(), val(3));
        assert_eq!(cache.len(), 1);
    }
}
