//! Property tests for the DOM substrate: the parser must be total (never
//! panic) and serialization must be a normalized fixpoint.

use ajax_dom::{parse_document, Document};
use proptest::prelude::*;

proptest! {
    /// The parser never panics, whatever bytes arrive (a crawler eats
    /// whatever the server sends).
    #[test]
    fn parser_is_total(input in "\\PC*") {
        let _ = parse_document(&input);
    }

    /// Same, biased toward markup-shaped garbage.
    #[test]
    fn parser_is_total_on_markupish_input(
        input in "(<[a-z!/]{0,4}[ \"'=a-z0-9<>-]{0,18}>?|[a-z &;]{0,9}){0,24}"
    ) {
        let doc = parse_document(&input);
        // And everything derived from it stays total too.
        let _ = doc.to_html();
        let _ = doc.normalized();
        let _ = doc.content_hash();
        let _ = doc.document_text();
    }

    /// parse → serialize → parse reaches a fixpoint in one step: the
    /// reparse of the serialization serializes identically.
    #[test]
    fn serialize_reparse_fixpoint(input in "\\PC{0,200}") {
        let doc1 = parse_document(&input);
        let html1 = doc1.to_html();
        let doc2 = parse_document(&html1);
        let html2 = doc2.to_html();
        prop_assert_eq!(html1, html2);
        prop_assert_eq!(doc1.content_hash(), doc2.content_hash());
    }

    /// Entity encode/decode roundtrips for text content.
    #[test]
    fn entity_roundtrip(text in "\\PC{0,80}") {
        let encoded = ajax_dom::entities::encode_text(&text);
        prop_assert_eq!(ajax_dom::entities::decode(&encoded), text);
    }

    /// innerHTML set/get roundtrips on the normalized form.
    #[test]
    fn inner_html_roundtrip(fragment in "(<b>|</b>|<p>|</p>|[a-z ]{0,8}){0,12}") {
        let mut doc = parse_document("<div id=\"t\">old</div>");
        let target = doc.get_element_by_id("t").unwrap();
        doc.set_inner_html(target, &fragment);
        let inner1 = doc.inner_html(target);
        // Setting the read-back markup again must be idempotent.
        doc.set_inner_html(target, &inner1);
        prop_assert_eq!(doc.inner_html(target), inner1);
    }

    /// The content hash ignores attribute order.
    #[test]
    fn hash_ignores_attr_order(
        tag in "[a-z]{1,6}",
        k1 in "[a-z]{1,5}", v1 in "[a-z0-9]{0,6}",
        k2 in "[a-z]{1,5}", v2 in "[a-z0-9]{0,6}",
        text in "[a-z ]{0,16}",
    ) {
        prop_assume!(k1 != k2);
        let a = parse_document(&format!("<{tag} {k1}=\"{v1}\" {k2}=\"{v2}\">{text}</{tag}>"));
        let b = parse_document(&format!("<{tag} {k2}=\"{v2}\" {k1}=\"{v1}\">{text}</{tag}>"));
        prop_assert_eq!(a.content_hash(), b.content_hash());
    }

    /// Clone is a true snapshot: mutating the original never affects it.
    #[test]
    fn clone_isolation(texts in proptest::collection::vec("[a-z]{1,8}", 1..5)) {
        let mut html = String::from("<div id=\"root\">");
        for t in &texts {
            html.push_str(&format!("<p>{t}</p>"));
        }
        html.push_str("</div>");
        let mut doc = parse_document(&html);
        let snapshot: Document = doc.clone();
        let hash_before = snapshot.content_hash();
        let root = doc.get_element_by_id("root").unwrap();
        doc.set_inner_html(root, "<p>changed</p>");
        prop_assert_eq!(snapshot.content_hash(), hash_before);
    }
}
