//! FNV-1a 64-bit hashing.
//!
//! The thesis detects duplicate application states by "computing a hash of the
//! content of the state" (§3.2). We use FNV-1a: it is tiny, dependency-free,
//! deterministic across platforms and fast for the short-to-medium strings a
//! serialized DOM produces. Determinism across runs matters because state ids
//! are derived from these hashes and the whole evaluation must be reproducible.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental FNV-1a 64-bit hasher.
///
/// ```
/// use ajax_dom::hash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write(b"hello ");
/// h.write(b"world");
/// assert_eq!(h.finish(), ajax_dom::fnv64(b"hello world"));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64 {
    state: u64,
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Creates a hasher in its initial state.
    #[inline]
    pub fn new() -> Self {
        Self { state: FNV_OFFSET }
    }

    /// Feeds `bytes` into the hasher.
    #[inline]
    pub fn write(&mut self, bytes: &[u8]) {
        let mut s = self.state;
        for &b in bytes {
            s ^= u64::from(b);
            s = s.wrapping_mul(FNV_PRIME);
        }
        self.state = s;
    }

    /// Feeds a string into the hasher.
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write(s.as_bytes());
    }

    /// Feeds a `u64` (little-endian) into the hasher. Useful for mixing
    /// sequence numbers into per-request jitter seeds.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    /// Returns the current hash value.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl std::hash::Hasher for Fnv64 {
    fn finish(&self) -> u64 {
        self.state
    }
    fn write(&mut self, bytes: &[u8]) {
        Fnv64::write(self, bytes);
    }
}

/// Hashes a byte slice with FNV-1a 64.
#[inline]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write(bytes);
    h.finish()
}

/// Hashes a string with FNV-1a 64.
#[inline]
pub fn fnv64_str(s: &str) -> u64 {
    fnv64(s.as_bytes())
}

/// A `BuildHasher` for [`Fnv64`], so it can back `HashMap`s on hot paths
/// (crawler state tables, posting dictionaries) without SipHash overhead.
#[derive(Debug, Default, Clone, Copy)]
pub struct FnvBuildHasher;

impl std::hash::BuildHasher for FnvBuildHasher {
    type Hasher = Fnv64;
    fn build_hasher(&self) -> Fnv64 {
        Fnv64::new()
    }
}

/// A `HashMap` keyed with FNV-1a (fast, deterministic; we control all keys so
/// HashDoS is not a concern).
pub type FnvHashMap<K, V> = std::collections::HashMap<K, V, FnvBuildHasher>;
/// A `HashSet` hashed with FNV-1a.
pub type FnvHashSet<K> = std::collections::HashSet<K, FnvBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut h = Fnv64::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv64(b"foobar"));
    }

    #[test]
    fn distinct_inputs_distinct_hashes() {
        assert_ne!(fnv64_str("state-1"), fnv64_str("state-2"));
    }

    #[test]
    fn write_u64_is_le_bytes() {
        let mut a = Fnv64::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv64::new();
        b.write(&[8, 7, 6, 5, 4, 3, 2, 1]);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn hashmap_usable() {
        let mut m: FnvHashMap<u64, &str> = FnvHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        assert_eq!(m.len(), 2);
    }
}
