//! DOM difference: which elements did a transition modify?
//!
//! The thesis annotates each transition with its *target(s)* — the elements
//! whose properties changed through the action (Table 2.1: a click on
//! `next` affects `recent_comments` through `innerHTML`). This module
//! computes that annotation by structural comparison of the before/after
//! DOMs, returning the changed regions as element **paths**.
//!
//! Heuristics, tuned to produce Table 2.1-style answers:
//!
//! * if a matched element's child list changed shape, or **several** of its
//!   children changed, the element itself is the target (an `innerHTML`
//!   refill reads as one target, not dozens of leaf paragraphs);
//! * if exactly **one** child changed, descend for a more precise target;
//! * attribute changes target the element carrying the attribute.

use crate::dom::{Document, NodeData, NodeId};
use crate::events::describe_element;
use crate::hash::fnv64_str;
use crate::serialize;

/// A changed region, identified by its element path
/// (`body > div#recent_comments`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangedTarget {
    /// ` > `-joined path of element descriptions from the root.
    pub path: String,
    /// Description of the target element itself (`div#recent_comments`).
    pub element: String,
}

/// Computes the modified targets between `old` and `new`.
/// Returns an empty vector when the documents are content-identical.
pub fn changed_roots(old: &Document, new: &Document) -> Vec<ChangedTarget> {
    let mut out = Vec::new();
    diff_children(old, old.root(), new, new.root(), &mut Vec::new(), &mut out);
    out
}

fn subtree_hash(doc: &Document, node: NodeId) -> u64 {
    let mut sub = Document::new();
    let root = sub.root();
    graft(doc, node, &mut sub, root);
    fnv64_str(&serialize::normalized_html(&sub))
}

fn graft(src: &Document, src_node: NodeId, dst: &mut Document, dst_parent: NodeId) {
    let data = src.node(src_node).data.clone();
    let new_id = dst.append(dst_parent, data);
    for child in src.children(src_node) {
        graft(src, child, dst, new_id);
    }
}

fn push_target(path: &[String], out: &mut Vec<ChangedTarget>) {
    let target = ChangedTarget {
        path: if path.is_empty() {
            "#document".to_string()
        } else {
            path.join(" > ")
        },
        element: path.last().cloned().unwrap_or_else(|| "#document".into()),
    };
    if !out.iter().any(|t| t.path == target.path) {
        out.push(target);
    }
}

/// Compares the children of two matched nodes; `path` describes `new_node`.
fn diff_children(
    old: &Document,
    old_node: NodeId,
    new: &Document,
    new_node: NodeId,
    path: &mut Vec<String>,
    out: &mut Vec<ChangedTarget>,
) {
    let old_children: Vec<NodeId> = old.children(old_node).collect();
    let new_children: Vec<NodeId> = new.children(new_node).collect();

    let aligned = old_children.len() == new_children.len()
        && old_children
            .iter()
            .zip(new_children.iter())
            .all(|(&a, &b)| same_kind(old, a, new, b));
    if !aligned {
        push_target(path, out);
        return;
    }

    // Which aligned children changed?
    #[derive(Clone, Copy)]
    enum Change {
        Element { attrs_equal: bool },
        Text,
    }
    let mut changed: Vec<(usize, Change)> = Vec::new();
    for (i, (&a, &b)) in old_children.iter().zip(new_children.iter()).enumerate() {
        match (&old.node(a).data, &new.node(b).data) {
            (NodeData::Element { .. }, NodeData::Element { .. })
                if subtree_hash(old, a) != subtree_hash(new, b) =>
            {
                changed.push((
                    i,
                    Change::Element {
                        attrs_equal: attributes_equal(old, a, new, b),
                    },
                ));
            }
            (NodeData::Text(t1), NodeData::Text(t2)) if collapse(t1) != collapse(t2) => {
                changed.push((i, Change::Text));
            }
            _ => {}
        }
    }

    if changed.is_empty() {
        return;
    }
    // Every child changed at once: the innerHTML-refill pattern — this node
    // is the single target (e.g. the comment box, not its 20 paragraphs).
    if changed.len() > 1 && changed.len() == new_children.len() {
        push_target(path, out);
        return;
    }
    // Otherwise the changed children are independent regions: handle each.
    for (i, change) in &changed {
        match change {
            Change::Element { attrs_equal: true } => {
                let a = old_children[*i];
                let b = new_children[*i];
                path.push(describe_element(new, b));
                diff_children(old, a, new, b, path, out);
                path.pop();
            }
            Change::Element { attrs_equal: false } => {
                let b = new_children[*i];
                path.push(describe_element(new, b));
                push_target(path, out);
                path.pop();
            }
            // A changed bare text child targets this node.
            Change::Text => push_target(path, out),
        }
    }
}

fn same_kind(old: &Document, a: NodeId, new: &Document, b: NodeId) -> bool {
    match (&old.node(a).data, &new.node(b).data) {
        (NodeData::Element { name: n1, .. }, NodeData::Element { name: n2, .. }) => n1 == n2,
        (NodeData::Text(_), NodeData::Text(_)) => true,
        (NodeData::Comment(_), NodeData::Comment(_)) => true,
        _ => false,
    }
}

fn attributes_equal(old: &Document, a: NodeId, new: &Document, b: NodeId) -> bool {
    match (&old.node(a).data, &new.node(b).data) {
        (NodeData::Element { attrs: x, .. }, NodeData::Element { attrs: y, .. }) => {
            let mut x: Vec<_> = x.clone();
            let mut y: Vec<_> = y.clone();
            x.sort();
            y.sort();
            x == y
        }
        _ => false,
    }
}

fn collapse(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn targets(old_html: &str, new_html: &str) -> Vec<String> {
        let old = parse_document(old_html);
        let new = parse_document(new_html);
        changed_roots(&old, &new)
            .into_iter()
            .map(|t| t.element)
            .collect()
    }

    #[test]
    fn identical_documents_no_targets() {
        let html = "<div id=\"a\"><p>x</p></div>";
        assert!(targets(html, html).is_empty());
        assert!(targets(
            "<div a=\"1\" b=\"2\">x   y</div>",
            "<div b=\"2\" a=\"1\">x y</div>"
        )
        .is_empty());
    }

    #[test]
    fn inner_html_refill_targets_the_box() {
        // The thesis' canonical transition: the whole comment box refilled
        // (several comments change at once).
        let old = "<h1 id=\"t\">title</h1>\
                   <div id=\"recent_comments\"><p>c1 page1</p><p>c2 page1</p><p>c3 page1</p></div>";
        let new = "<h1 id=\"t\">title</h1>\
                   <div id=\"recent_comments\"><p>c1 page2</p><p>c2 page2</p><p>c3 page2</p></div>";
        assert_eq!(targets(old, new), vec!["div#recent_comments"]);
    }

    #[test]
    fn single_leaf_change_descends() {
        let old = "<div id=\"box\"><p>keep</p><p>old text</p></div>";
        let new = "<div id=\"box\"><p>keep</p><p>new text</p></div>";
        assert_eq!(
            targets(old, new),
            vec!["p"],
            "one changed child: precise target"
        );
    }

    #[test]
    fn structural_change_reports_container() {
        let old = "<div id=\"box\"><p>a</p></div>";
        let new = "<div id=\"box\"><p>a</p><p>b</p></div>";
        assert_eq!(targets(old, new), vec!["div#box"]);
    }

    #[test]
    fn two_independent_regions_both_reported_with_paths() {
        let old = "<div id=\"x\"><p>1</p><p>1b</p></div><div id=\"y\"><p>1</p><p>1b</p></div><div id=\"z\"><p>same</p></div>";
        let new = "<div id=\"x\"><p>2</p><p>2b</p></div><div id=\"y\"><p>2</p><p>2b</p></div><div id=\"z\"><p>same</p></div>";
        let o = parse_document(old);
        let n = parse_document(new);
        let roots = changed_roots(&o, &n);
        let paths: Vec<&str> = roots.iter().map(|t| t.path.as_str()).collect();
        assert_eq!(paths, vec!["div#x", "div#y"]);
    }

    #[test]
    fn attribute_change_reports_element() {
        let old = "<div id=\"a\"><span class=\"off\">s</span></div>";
        let new = "<div id=\"a\"><span class=\"on\">s</span></div>";
        assert_eq!(targets(old, new), vec!["span.on"]);
    }

    #[test]
    fn tag_swap_reports_parent() {
        let old = "<div id=\"a\"><em>x</em></div>";
        let new = "<div id=\"a\"><b>x</b></div>";
        assert_eq!(targets(old, new), vec!["div#a"]);
    }

    #[test]
    fn paths_are_full_chains() {
        let old =
            "<body><div id=\"outer\"><div id=\"inner\"><p>a</p><p>b old</p></div></div></body>";
        let new =
            "<body><div id=\"outer\"><div id=\"inner\"><p>a</p><p>b new</p></div></div></body>";
        let o = parse_document(old);
        let n = parse_document(new);
        let roots = changed_roots(&o, &n);
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].path, "body > div#outer > div#inner > p");
        assert_eq!(roots[0].element, "p");
    }
}
