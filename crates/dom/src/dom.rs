//! The DOM tree: an arena of nodes with parent/child links plus the mutation
//! operations the crawler and the JS host need (`innerHTML`, text content,
//! attribute access, lookup by id).

use crate::hash::{fnv64_str, FnvHashMap};
use crate::parser;
use crate::serialize;

/// Index of a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeData {
    /// The synthetic document root (not serialized).
    Root,
    /// An element with a lowercase tag name and its attributes in source
    /// order. Attribute names are lowercase.
    Element {
        name: String,
        attrs: Vec<(String, String)>,
    },
    /// A text node (entity-decoded).
    Text(String),
    /// A comment node.
    Comment(String),
}

/// One node of the arena.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub data: NodeData,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// True for nodes detached by mutation; detached nodes are skipped by
    /// traversals and compacted away by [`Document::compact`].
    pub detached: bool,
}

/// A parsed HTML document: an arena of [`Node`]s under a synthetic root.
///
/// Cloning a `Document` deep-copies the arena — this is exactly the snapshot
/// operation the crawler's rollback (Alg. 3.1.1, line 17) relies on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
    /// Lazy index from `id` attribute to node, rebuilt after mutations.
    id_index: FnvHashMap<String, NodeId>,
    id_index_dirty: bool,
}

impl Default for Document {
    fn default() -> Self {
        Self::new()
    }
}

impl Document {
    /// Creates an empty document containing only the root node.
    pub fn new() -> Self {
        Self {
            nodes: vec![Node {
                data: NodeData::Root,
                parent: None,
                children: Vec::new(),
                detached: false,
            }],
            root: NodeId(0),
            id_index: FnvHashMap::default(),
            id_index_dirty: true,
        }
    }

    /// The synthetic root node id.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Immutable access to a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Number of live (non-detached) nodes, including the root.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.detached).count()
    }

    /// True when the document has no content besides the root.
    pub fn is_empty(&self) -> bool {
        self.nodes[self.root.index()].children.is_empty()
    }

    /// Appends a new node under `parent` and returns its id.
    pub fn append(&mut self, parent: NodeId, data: NodeData) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            data,
            parent: Some(parent),
            children: Vec::new(),
            detached: false,
        });
        self.nodes[parent.index()].children.push(id);
        self.id_index_dirty = true;
        id
    }

    /// Creates an element node under `parent`.
    pub fn append_element(
        &mut self,
        parent: NodeId,
        name: &str,
        attrs: Vec<(String, String)>,
    ) -> NodeId {
        self.append(
            parent,
            NodeData::Element {
                name: name.to_ascii_lowercase(),
                attrs,
            },
        )
    }

    /// Creates a text node under `parent`.
    pub fn append_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.append(parent, NodeData::Text(text.to_string()))
    }

    /// Detaches the whole subtree under `id` (the node itself stays).
    pub fn clear_children(&mut self, id: NodeId) {
        let children = std::mem::take(&mut self.nodes[id.index()].children);
        for child in children {
            self.detach_recursive(child);
        }
        self.id_index_dirty = true;
    }

    fn detach_recursive(&mut self, id: NodeId) {
        self.nodes[id.index()].detached = true;
        let children = std::mem::take(&mut self.nodes[id.index()].children);
        for child in children {
            self.detach_recursive(child);
        }
    }

    /// Tag name of an element node, if `id` refers to one.
    pub fn tag_name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Value of attribute `name` (lowercase) on element `id`.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        match &self.node(id).data {
            NodeData::Element { attrs, .. } => attrs
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, v)| v.as_str()),
            _ => None,
        }
    }

    /// Sets (or adds) attribute `name` on element `id`.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        if let NodeData::Element { attrs, .. } = &mut self.nodes[id.index()].data {
            let name = name.to_ascii_lowercase();
            if let Some(slot) = attrs.iter_mut().find(|(n, _)| *n == name) {
                slot.1 = value.to_string();
            } else {
                attrs.push((name, value.to_string()));
            }
            self.id_index_dirty = true;
        }
    }

    /// Finds the element with `id="wanted"`. First match in document order.
    pub fn get_element_by_id(&mut self, wanted: &str) -> Option<NodeId> {
        if self.id_index_dirty {
            self.rebuild_id_index();
        }
        self.id_index.get(wanted).copied()
    }

    /// Read-only variant of [`Self::get_element_by_id`] (walks the tree).
    pub fn find_element_by_id(&self, wanted: &str) -> Option<NodeId> {
        self.walk().find(|&id| self.attr(id, "id") == Some(wanted))
    }

    fn rebuild_id_index(&mut self) {
        self.id_index.clear();
        let ids: Vec<(String, NodeId)> = self
            .walk()
            .filter_map(|id| self.attr(id, "id").map(|v| (v.to_string(), id)))
            .collect();
        for (key, id) in ids {
            self.id_index.entry(key).or_insert(id);
        }
        self.id_index_dirty = false;
    }

    /// Iterates over all live element node ids in document order.
    pub fn walk(&self) -> impl Iterator<Item = NodeId> + '_ {
        DomWalker {
            doc: self,
            stack: vec![self.root],
        }
        .filter(|&id| matches!(self.node(id).data, NodeData::Element { .. }))
    }

    /// Iterates over *all* live node ids (elements, text, comments) in
    /// document order, excluding the root.
    pub fn walk_all(&self) -> impl Iterator<Item = NodeId> + '_ {
        DomWalker {
            doc: self,
            stack: vec![self.root],
        }
        .filter(move |&id| id != self.root)
    }

    /// Live children of `id` in order.
    pub fn children(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.node(id)
            .children
            .iter()
            .copied()
            .filter(|&c| !self.node(c).detached)
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// Concatenated text content of the subtree under `id`, with whitespace
    /// between block-ish fragments.
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        let node = self.node(id);
        if node.detached {
            return;
        }
        match &node.data {
            NodeData::Text(t) => {
                if !out.is_empty() && !out.ends_with(char::is_whitespace) {
                    out.push(' ');
                }
                out.push_str(t);
            }
            NodeData::Element { name, .. } if name == "script" || name == "style" => {}
            _ => {
                for &child in &node.children {
                    self.collect_text(child, out);
                }
            }
        }
    }

    /// Full text content of the document body (skipping scripts/styles).
    pub fn document_text(&self) -> String {
        self.text_content(self.root)
    }

    /// The serialized markup of the children of `id` (the `innerHTML` getter).
    pub fn inner_html(&self, id: NodeId) -> String {
        serialize::inner_html(self, id)
    }

    /// Replaces the children of `id` by parsing `html` as a fragment (the
    /// `innerHTML` setter — the core AJAX DOM mutation of the thesis).
    pub fn set_inner_html(&mut self, id: NodeId, html: &str) {
        self.clear_children(id);
        let fragment = parser::parse_fragment(html);
        self.graft(&fragment, fragment.root(), id);
        self.id_index_dirty = true;
    }

    /// Copies the subtree under `src_id` of `src` as children of `dst_parent`.
    fn graft(&mut self, src: &Document, src_id: NodeId, dst_parent: NodeId) {
        for child in src.children(src_id) {
            let data = src.node(child).data.clone();
            let new_id = self.append(dst_parent, data);
            self.graft(src, child, new_id);
        }
    }

    /// Serializes the whole document.
    pub fn to_html(&self) -> String {
        serialize::document_html(self)
    }

    /// Normalized serialization used for duplicate-state detection: attribute
    /// order is canonicalized and insignificant whitespace is collapsed.
    pub fn normalized(&self) -> String {
        serialize::normalized_html(self)
    }

    /// Stable content hash of the normalized document — the state identity of
    /// §3.2 ("two states with the same hash value are considered the same").
    pub fn content_hash(&self) -> u64 {
        fnv64_str(&self.normalized())
    }

    /// Returns the concatenated `<script>` bodies in document order. The
    /// crawler feeds these to the JS engine when loading a page.
    pub fn script_sources(&self) -> Vec<String> {
        let mut out = Vec::new();
        for id in self.walk() {
            if self.tag_name(id) == Some("script") {
                let mut body = String::new();
                for child in self.children(id) {
                    if let NodeData::Text(t) = &self.node(child).data {
                        body.push_str(t);
                    }
                }
                if !body.trim().is_empty() {
                    out.push(body);
                }
            }
        }
        out
    }

    /// Rebuilds the arena without detached nodes. Ids are *not* stable across
    /// a compaction; use only between crawl steps, never while holding ids.
    pub fn compact(&self) -> Document {
        let mut out = Document::new();
        out.graft(self, self.root, out.root);
        out
    }

    /// All `href` values of `<a>` elements (hyperlink extraction for the
    /// precrawler).
    pub fn hyperlinks(&self) -> Vec<String> {
        self.walk()
            .filter(|&id| self.tag_name(id) == Some("a"))
            .filter_map(|id| self.attr(id, "href").map(str::to_string))
            .collect()
    }
}

struct DomWalker<'a> {
    doc: &'a Document,
    stack: Vec<NodeId>,
}

impl Iterator for DomWalker<'_> {
    type Item = NodeId;
    fn next(&mut self) -> Option<NodeId> {
        loop {
            let id = self.stack.pop()?;
            let node = self.doc.node(id);
            if node.detached {
                continue;
            }
            for &child in node.children.iter().rev() {
                self.stack.push(child);
            }
            return Some(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn build_and_text() {
        let mut doc = Document::new();
        let div = doc.append_element(doc.root(), "div", vec![]);
        doc.append_text(div, "hello");
        let span = doc.append_element(div, "span", vec![]);
        doc.append_text(span, "world");
        assert_eq!(doc.document_text(), "hello world");
    }

    #[test]
    fn get_by_id_and_mutation() {
        let mut doc = parse_document("<div id=\"a\"><p id=\"b\">x</p></div>");
        let b = doc.get_element_by_id("b").unwrap();
        assert_eq!(doc.text_content(b), "x");
        doc.set_inner_html(b, "<em id=\"c\">y</em>z");
        assert_eq!(doc.text_content(b), "y z");
        assert!(doc.get_element_by_id("c").is_some());
    }

    #[test]
    fn set_inner_html_detaches_old_ids() {
        let mut doc = parse_document("<div id=\"a\"><p id=\"old\">x</p></div>");
        let a = doc.get_element_by_id("a").unwrap();
        doc.set_inner_html(a, "<p id=\"new\">y</p>");
        assert!(doc.get_element_by_id("old").is_none());
        assert!(doc.get_element_by_id("new").is_some());
    }

    #[test]
    fn content_hash_changes_with_content() {
        let mut doc = parse_document("<div id=\"a\">one</div>");
        let h1 = doc.content_hash();
        let a = doc.get_element_by_id("a").unwrap();
        doc.set_inner_html(a, "two");
        let h2 = doc.content_hash();
        assert_ne!(h1, h2);
        doc.set_inner_html(a, "one");
        assert_eq!(doc.content_hash(), h1, "restoring content restores hash");
    }

    #[test]
    fn clone_is_deep_snapshot() {
        let mut doc = parse_document("<div id=\"a\">one</div>");
        let snapshot = doc.clone();
        let a = doc.get_element_by_id("a").unwrap();
        doc.set_inner_html(a, "two");
        assert_ne!(doc.content_hash(), snapshot.content_hash());
        assert!(snapshot.normalized().contains("one"));
    }

    #[test]
    fn script_sources_extracted_in_order() {
        let doc = parse_document("<script>var a=1;</script><p>t</p><script>var b=2;</script>");
        let scripts = doc.script_sources();
        assert_eq!(
            scripts,
            vec!["var a=1;".to_string(), "var b=2;".to_string()]
        );
    }

    #[test]
    fn text_skips_script_bodies() {
        let doc = parse_document("<div>visible<script>var hidden=1;</script></div>");
        assert!(!doc.document_text().contains("hidden"));
        assert!(doc.document_text().contains("visible"));
    }

    #[test]
    fn hyperlinks_collected() {
        let doc = parse_document(
            "<a href=\"/watch?v=1\">one</a><a href=\"/watch?v=2\">two</a><a>none</a>",
        );
        assert_eq!(doc.hyperlinks(), vec!["/watch?v=1", "/watch?v=2"]);
    }

    #[test]
    fn set_attr_updates_and_inserts() {
        let mut doc = parse_document("<div id=\"a\" class=\"x\"></div>");
        let a = doc.get_element_by_id("a").unwrap();
        doc.set_attr(a, "class", "y");
        assert_eq!(doc.attr(a, "class"), Some("y"));
        doc.set_attr(a, "data-k", "v");
        assert_eq!(doc.attr(a, "data-k"), Some("v"));
    }

    #[test]
    fn compact_removes_detached() {
        let mut doc = parse_document("<div id=\"a\"><p>x</p><p>y</p></div>");
        let before = doc.len();
        let a = doc.get_element_by_id("a").unwrap();
        doc.set_inner_html(a, "z");
        let compacted = doc.compact();
        assert!(compacted.len() < before);
        assert_eq!(compacted.content_hash(), doc.content_hash());
    }

    #[test]
    fn first_id_match_wins() {
        let mut doc = parse_document("<p id=\"dup\">first</p><p id=\"dup\">second</p>");
        let id = doc.get_element_by_id("dup").unwrap();
        assert_eq!(doc.text_content(id), "first");
    }
}
