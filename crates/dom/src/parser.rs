//! Tree builder: turns the token stream into a [`Document`].
//!
//! Forgiving by design (like browsers and like COBRA): unmatched end tags are
//! dropped, unclosed elements are closed at EOF, void elements never take
//! children.

use crate::dom::{Document, NodeData, NodeId};
use crate::tokenizer::{Token, Tokenizer};

/// Elements that never have children (no end tag expected).
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Returns true when `name` is an HTML void element.
pub fn is_void_element(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

/// Parses a complete HTML document.
pub fn parse_document(html: &str) -> Document {
    parse_into(html)
}

/// Parses an HTML *fragment* (the `innerHTML` setter path). Identical
/// algorithm; the distinction is kept for API clarity and future divergence.
pub fn parse_fragment(html: &str) -> Document {
    parse_into(html)
}

fn parse_into(html: &str) -> Document {
    let mut doc = Document::new();
    let mut open: Vec<(String, NodeId)> = Vec::new();

    let current = |open: &Vec<(String, NodeId)>, doc: &Document| -> NodeId {
        open.last().map(|(_, id)| *id).unwrap_or(doc.root())
    };

    for token in Tokenizer::new(html) {
        match token {
            Token::Doctype(_) => {}
            Token::Comment(body) => {
                let parent = current(&open, &doc);
                doc.append(parent, NodeData::Comment(body));
            }
            Token::Text(text) => {
                if text.is_empty() {
                    continue;
                }
                let parent = current(&open, &doc);
                doc.append(parent, NodeData::Text(text));
            }
            Token::StartTag {
                name,
                attrs,
                self_closing,
            } => {
                let parent = current(&open, &doc);
                let id = doc.append(
                    parent,
                    NodeData::Element {
                        name: name.clone(),
                        attrs: attrs.into_iter().map(|a| (a.name, a.value)).collect(),
                    },
                );
                if !self_closing && !is_void_element(&name) {
                    open.push((name, id));
                }
            }
            Token::EndTag { name } => {
                // Pop up to (and including) the nearest matching open element;
                // if none matches, ignore the stray end tag.
                if let Some(pos) = open.iter().rposition(|(n, _)| *n == name) {
                    open.truncate(pos);
                }
            }
        }
    }
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_structure() {
        let doc = parse_document("<div><p>a</p><p>b</p></div>");
        let div = doc.walk().next().unwrap();
        assert_eq!(doc.tag_name(div), Some("div"));
        assert_eq!(doc.children(div).count(), 2);
    }

    #[test]
    fn stray_end_tags_ignored() {
        let doc = parse_document("</p><div>x</div></div></span>");
        assert_eq!(doc.document_text().trim(), "x");
    }

    #[test]
    fn unclosed_elements_closed_at_eof() {
        let doc = parse_document("<div><p>a<p-like>");
        assert!(doc.document_text().contains('a'));
    }

    #[test]
    fn void_elements_take_no_children() {
        let doc = parse_document("<br><p>text</p>");
        let br = doc.walk().next().unwrap();
        assert_eq!(doc.tag_name(br), Some("br"));
        assert_eq!(doc.children(br).count(), 0);
        // <p> must be a sibling of <br>, not its child.
        assert_eq!(doc.children(doc.root()).count(), 2);
    }

    #[test]
    fn mismatched_nesting_recovers() {
        let doc = parse_document("<b><i>x</b>y</i>");
        // "x" under <i>, and "y" lands somewhere sensible (no panic, all text kept).
        let text = doc.document_text();
        assert!(text.contains('x') && text.contains('y'));
    }

    #[test]
    fn deeply_nested_no_stack_overflow() {
        let depth = 2000;
        let html = format!("{}{}", "<div>".repeat(depth), "</div>".repeat(depth));
        let doc = parse_document(&html);
        assert_eq!(doc.walk().count(), depth);
    }

    #[test]
    fn empty_input() {
        let doc = parse_document("");
        assert!(doc.is_empty());
        assert_eq!(doc.document_text(), "");
    }
}
