//! # ajax-dom
//!
//! A small, self-contained HTML parsing and DOM manipulation library. It plays
//! the role that the Java COBRA toolkit played in the original *AJAX Crawl*
//! thesis: it gives the crawler a **mutable DOM tree** with
//!
//! * an HTML tokenizer and a forgiving tree builder,
//! * element lookup by `id`,
//! * `innerHTML` read/write (write re-parses the fragment, exactly what the
//!   thesis' `doc.comment.innerHTML = new_comment_page` action needs),
//! * extraction of `on*` event-handler attributes (the crawler's event model),
//! * normalized serialization and a stable FNV-64 content hash used for
//!   duplicate-state detection (§3.2 of the thesis), and
//! * plain-text extraction used by the indexer.
//!
//! The implementation favours determinism and clarity over full WHATWG
//! compliance; it handles the HTML subset that real 2008-era AJAX pages (and
//! our synthetic VidShare workload) use: nested elements, attributes with and
//! without quotes, void elements, comments, entities, and raw-text `<script>`
//! elements.

pub mod diff;
pub mod dom;
pub mod entities;
pub mod events;
pub mod hash;
pub mod parser;
pub mod select;
pub mod serialize;
pub mod tokenizer;

pub use diff::{changed_roots, ChangedTarget};
pub use dom::{Document, Node, NodeData, NodeId};
pub use events::{EventBinding, EventType};
pub use hash::{fnv64, fnv64_str, Fnv64};
pub use parser::{parse_document, parse_fragment};
pub use select::{select, Selector, SelectorError};
pub use tokenizer::{Attribute, Token, Tokenizer};
