//! HTML tokenizer.
//!
//! Produces a flat token stream (start tags, end tags, text, comments,
//! doctype) from raw HTML. `<script>` and `<style>` contents are treated as
//! raw text running until the matching close tag, which is essential because
//! the VidShare pages embed JavaScript containing `<` comparisons.

use crate::entities;

/// One `name="value"` pair on a start tag. `value` is entity-decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    pub name: String,
    pub value: String,
}

/// A lexical token of the HTML input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// `<name attr=...>`; `self_closing` is true for `<br/>` style tags.
    StartTag {
        name: String,
        attrs: Vec<Attribute>,
        self_closing: bool,
    },
    /// `</name>`
    EndTag { name: String },
    /// Character data (entity-decoded).
    Text(String),
    /// `<!-- ... -->`
    Comment(String),
    /// `<!DOCTYPE ...>`
    Doctype(String),
}

/// Elements whose content is raw text up to the matching end tag.
const RAW_TEXT_ELEMENTS: &[&str] = &["script", "style"];

/// A streaming HTML tokenizer over an input string.
pub struct Tokenizer<'a> {
    input: &'a str,
    pos: usize,
    /// When `Some(tag)`, we are inside a raw-text element and must scan for
    /// `</tag` before resuming normal tokenization.
    raw_text_until: Option<String>,
}

impl<'a> Tokenizer<'a> {
    /// Creates a tokenizer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            pos: 0,
            raw_text_until: None,
        }
    }

    /// Tokenizes the entire input.
    pub fn tokenize(input: &'a str) -> Vec<Token> {
        Tokenizer::new(input).collect()
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with_ci(haystack: &str, needle: &str) -> bool {
        // Byte-wise to stay safe on multibyte input (slicing by needle
        // length could split a UTF-8 character).
        let haystack = haystack.as_bytes();
        let needle = needle.as_bytes();
        haystack.len() >= needle.len() && haystack[..needle.len()].eq_ignore_ascii_case(needle)
    }

    fn next_token(&mut self) -> Option<Token> {
        if self.pos >= self.input.len() {
            return None;
        }

        // Raw text mode: emit everything up to the matching end tag as Text.
        if let Some(tag) = self.raw_text_until.clone() {
            let closer = format!("</{tag}");
            let rest = self.rest();
            let lower = rest.to_ascii_lowercase();
            if let Some(idx) = lower.find(&closer) {
                let text = &rest[..idx];
                self.pos += idx;
                self.raw_text_until = None;
                if !text.is_empty() {
                    return Some(Token::Text(text.to_string()));
                }
                // Fall through to tokenize the end tag itself.
            } else {
                // Unterminated raw text: consume all the rest.
                self.pos = self.input.len();
                self.raw_text_until = None;
                if !rest.is_empty() {
                    return Some(Token::Text(rest.to_string()));
                }
                return None;
            }
        }

        let rest = self.rest();
        if let Some(after) = rest.strip_prefix('<') {
            if after.starts_with("!--") {
                return Some(self.lex_comment());
            }
            if Self::starts_with_ci(after, "!doctype") {
                return Some(self.lex_doctype());
            }
            if after.starts_with('/') {
                return Some(self.lex_end_tag());
            }
            if after
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_alphabetic())
            {
                return Some(self.lex_start_tag());
            }
            // A lone '<' that doesn't begin a tag: treat as text.
        }
        Some(self.lex_text())
    }

    fn lex_text(&mut self) -> Token {
        let rest = self.rest();
        // Text runs until the next '<' that plausibly starts markup.
        let mut end = rest.len();
        let bytes = rest.as_bytes();
        let mut i = if bytes.first() == Some(&b'<') { 1 } else { 0 };
        while i < bytes.len() {
            if bytes[i] == b'<' {
                let nxt = bytes.get(i + 1).copied().unwrap_or(b' ');
                if nxt.is_ascii_alphabetic() || nxt == b'/' || nxt == b'!' {
                    end = i;
                    break;
                }
            }
            i += 1;
        }
        let raw = &rest[..end];
        self.pos += end;
        Token::Text(entities::decode(raw))
    }

    fn lex_comment(&mut self) -> Token {
        // self.rest() starts with "<!--"
        let rest = self.rest();
        let body_start = 4;
        match rest[body_start..].find("-->") {
            Some(idx) => {
                let body = &rest[body_start..body_start + idx];
                self.pos += body_start + idx + 3;
                Token::Comment(body.to_string())
            }
            None => {
                let body = &rest[body_start..];
                self.pos = self.input.len();
                Token::Comment(body.to_string())
            }
        }
    }

    /// Returns `(body_end, consumed)` for a construct running to the next
    /// `>` (or EOF). `body_end` is always a char boundary: either the index
    /// of the ASCII `>` or the string length.
    fn until_gt(rest: &str) -> (usize, usize) {
        match rest.find('>') {
            Some(i) => (i, i + 1),
            None => (rest.len(), rest.len()),
        }
    }

    fn lex_doctype(&mut self) -> Token {
        let rest = self.rest();
        let (body_end, consumed) = Self::until_gt(rest);
        let body = rest[2.min(body_end)..body_end].trim().to_string();
        self.pos += consumed;
        Token::Doctype(body)
    }

    fn lex_end_tag(&mut self) -> Token {
        // rest starts with "</"
        let rest = self.rest();
        let (body_end, consumed) = Self::until_gt(rest);
        let name = rest[2.min(body_end)..body_end].trim().to_ascii_lowercase();
        self.pos += consumed;
        Token::EndTag { name }
    }

    fn lex_start_tag(&mut self) -> Token {
        // rest starts with "<name"
        let rest = self.rest();
        let bytes = rest.as_bytes();
        let mut i = 1;
        while i < bytes.len()
            && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'-' || bytes[i] == b':')
        {
            i += 1;
        }
        let name = rest[1..i].to_ascii_lowercase();
        let mut attrs = Vec::new();
        let mut self_closing = false;

        // Attribute scanning.
        loop {
            while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                i += 1;
            }
            if i >= bytes.len() {
                break;
            }
            match bytes[i] {
                b'>' => {
                    i += 1;
                    break;
                }
                b'/' => {
                    self_closing = true;
                    i += 1;
                }
                _ => {
                    // Attribute name.
                    let name_start = i;
                    while i < bytes.len()
                        && !bytes[i].is_ascii_whitespace()
                        && bytes[i] != b'='
                        && bytes[i] != b'>'
                        && bytes[i] != b'/'
                    {
                        i += 1;
                    }
                    let attr_name = rest[name_start..i].to_ascii_lowercase();
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let mut attr_value = String::new();
                    if i < bytes.len() && bytes[i] == b'=' {
                        i += 1;
                        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                            i += 1;
                        }
                        if i < bytes.len() && (bytes[i] == b'"' || bytes[i] == b'\'') {
                            let quote = bytes[i];
                            i += 1;
                            let val_start = i;
                            while i < bytes.len() && bytes[i] != quote {
                                i += 1;
                            }
                            attr_value = entities::decode(&rest[val_start..i]);
                            if i < bytes.len() {
                                i += 1; // Skip closing quote.
                            }
                        } else {
                            let val_start = i;
                            while i < bytes.len()
                                && !bytes[i].is_ascii_whitespace()
                                && bytes[i] != b'>'
                            {
                                i += 1;
                            }
                            attr_value = entities::decode(&rest[val_start..i]);
                        }
                    }
                    if !attr_name.is_empty() {
                        attrs.push(Attribute {
                            name: attr_name,
                            value: attr_value,
                        });
                    }
                }
            }
        }
        self.pos += i;

        if !self_closing && RAW_TEXT_ELEMENTS.contains(&name.as_str()) {
            self.raw_text_until = Some(name.clone());
        }
        Token::StartTag {
            name,
            attrs,
            self_closing,
        }
    }
}

impl Iterator for Tokenizer<'_> {
    type Item = Token;
    fn next(&mut self) -> Option<Token> {
        self.next_token()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        Tokenizer::tokenize(s)
    }

    #[test]
    fn simple_tags() {
        let t = toks("<div id=\"a\">hi</div>");
        assert_eq!(
            t,
            vec![
                Token::StartTag {
                    name: "div".into(),
                    attrs: vec![Attribute {
                        name: "id".into(),
                        value: "a".into()
                    }],
                    self_closing: false
                },
                Token::Text("hi".into()),
                Token::EndTag { name: "div".into() },
            ]
        );
    }

    #[test]
    fn unquoted_and_single_quoted_attrs() {
        let t = toks("<a href=/watch?v=1 class='x y'>z</a>");
        match &t[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs[0].value, "/watch?v=1");
                assert_eq!(attrs[1].value, "x y");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn self_closing() {
        let t = toks("<br/><img src=\"i.png\" />");
        assert!(matches!(
            &t[0],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
        assert!(matches!(
            &t[1],
            Token::StartTag {
                self_closing: true,
                ..
            }
        ));
    }

    #[test]
    fn script_is_raw_text() {
        let t = toks("<script>if (a < b) { x(); }</script><p>t</p>");
        assert_eq!(
            t[1],
            Token::Text("if (a < b) { x(); }".into()),
            "script body must not be parsed as markup"
        );
        assert_eq!(
            t[2],
            Token::EndTag {
                name: "script".into()
            }
        );
    }

    #[test]
    fn script_case_insensitive_close() {
        let t = toks("<SCRIPT>x<1</ScRiPt>");
        assert!(matches!(&t[1], Token::Text(s) if s == "x<1"));
    }

    #[test]
    fn comments_and_doctype() {
        let t = toks("<!DOCTYPE html><!-- a -- b --><p/>");
        assert_eq!(t[0], Token::Doctype("DOCTYPE html".into()));
        assert_eq!(t[1], Token::Comment(" a -- b ".into()));
    }

    #[test]
    fn entities_in_text_and_attrs() {
        let t = toks("<a title=\"a &amp; b\">x &lt; y</a>");
        match &t[0] {
            Token::StartTag { attrs, .. } => assert_eq!(attrs[0].value, "a & b"),
            _ => panic!(),
        }
        assert_eq!(t[1], Token::Text("x < y".into()));
    }

    #[test]
    fn stray_lt_is_text() {
        let t = toks("a < b");
        assert_eq!(t, vec![Token::Text("a < b".into())]);
    }

    #[test]
    fn unterminated_tag_eof() {
        let t = toks("<div class=\"x");
        assert!(matches!(&t[0], Token::StartTag { name, .. } if name == "div"));
    }

    #[test]
    fn unterminated_script() {
        let t = toks("<script>var x = 1;");
        assert_eq!(t[1], Token::Text("var x = 1;".into()));
    }

    #[test]
    fn boolean_attribute() {
        let t = toks("<input disabled>");
        match &t[0] {
            Token::StartTag { attrs, .. } => {
                assert_eq!(attrs[0].name, "disabled");
                assert_eq!(attrs[0].value, "");
            }
            _ => panic!(),
        }
    }

    #[test]
    fn tag_names_lowercased() {
        let t = toks("<DIV ID=x></DIV>");
        assert!(matches!(&t[0], Token::StartTag { name, attrs, .. }
            if name == "div" && attrs[0].name == "id"));
        assert!(matches!(&t[1], Token::EndTag { name } if name == "div"));
    }
}
