//! The event model of §2.1: elements carry `on*` attributes whose values are
//! JavaScript snippets; the crawler enumerates these bindings and invokes them.

use crate::dom::{Document, NodeId};
use serde::{Deserialize, Serialize};

/// The user-event types the crawler considers. §3.2 notes that a practical
/// crawler can "focus just on the most important events (click, doubleclick,
/// mouseover)"; we additionally model `mousedown`/`mouseover` (listed in
/// Table 4.1) and the AJAX-specific `onload`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EventType {
    Load,
    Click,
    DblClick,
    MouseOver,
    MouseDown,
    MouseOut,
    Change,
    KeyUp,
}

impl EventType {
    /// Maps an `on*` attribute name (lowercase) to the event type.
    pub fn from_attr(attr: &str) -> Option<Self> {
        Some(match attr {
            "onload" => Self::Load,
            "onclick" => Self::Click,
            "ondblclick" => Self::DblClick,
            "onmouseover" => Self::MouseOver,
            "onmousedown" => Self::MouseDown,
            "onmouseout" => Self::MouseOut,
            "onchange" => Self::Change,
            "onkeyup" => Self::KeyUp,
            _ => return None,
        })
    }

    /// The `on*` attribute name for this event type.
    pub fn attr_name(self) -> &'static str {
        match self {
            Self::Load => "onload",
            Self::Click => "onclick",
            Self::DblClick => "ondblclick",
            Self::MouseOver => "onmouseover",
            Self::MouseDown => "onmousedown",
            Self::MouseOut => "onmouseout",
            Self::Change => "onchange",
            Self::KeyUp => "onkeyup",
        }
    }

    /// All event types, in the deterministic order the crawler fires them.
    pub fn all() -> &'static [EventType] {
        &[
            Self::Load,
            Self::Click,
            Self::DblClick,
            Self::MouseOver,
            Self::MouseDown,
            Self::MouseOut,
            Self::Change,
            Self::KeyUp,
        ]
    }

    /// The default set a crawler triggers (everything except `Load`, which is
    /// fired once per page by the init step of Alg. 3.1.1).
    pub fn user_events() -> &'static [EventType] {
        &[
            Self::Click,
            Self::DblClick,
            Self::MouseOver,
            Self::MouseDown,
            Self::MouseOut,
            Self::Change,
            Self::KeyUp,
        ]
    }
}

impl std::fmt::Display for EventType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.attr_name().trim_start_matches("on"))
    }
}

/// One event binding found in a DOM: the *source* element, the *trigger*
/// event type and the handler code (the thesis' Figure 2.1 structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventBinding {
    /// Node the handler is attached to.
    pub node: NodeId,
    /// A stable description of the source element (tag plus `id` if present),
    /// used to annotate transitions even after rollback invalidates `node`.
    pub source: String,
    /// The trigger.
    pub event_type: EventType,
    /// The JavaScript snippet in the attribute value.
    pub code: String,
}

/// Collects all event bindings in `doc`, in document order, restricted to
/// `types`. This is the "for all Event e ∈ s" iteration of Alg. 3.1.1.
pub fn collect_event_bindings(doc: &Document, types: &[EventType]) -> Vec<EventBinding> {
    let mut out = Vec::new();
    for id in doc.walk() {
        for ty in types {
            if let Some(code) = doc.attr(id, ty.attr_name()) {
                if code.trim().is_empty() {
                    continue;
                }
                out.push(EventBinding {
                    node: id,
                    source: describe_element(doc, id),
                    event_type: *ty,
                    code: code.to_string(),
                });
            }
        }
    }
    out
}

/// Finds the `onload` handler on `<body>` (the AJAX-specific init step,
/// Alg. 3.1.1 line 3).
pub fn body_onload(doc: &Document) -> Option<String> {
    doc.walk()
        .find(|&id| doc.tag_name(id) == Some("body"))
        .and_then(|id| doc.attr(id, "onload"))
        .map(str::to_string)
}

/// Produces a stable, human-readable description of an element, e.g.
/// `div#nextArrow` or `a.page-link`.
pub fn describe_element(doc: &Document, id: NodeId) -> String {
    let tag = doc.tag_name(id).unwrap_or("?");
    if let Some(elem_id) = doc.attr(id, "id") {
        format!("{tag}#{elem_id}")
    } else if let Some(class) = doc.attr(id, "class") {
        format!("{tag}.{}", class.split_whitespace().next().unwrap_or(""))
    } else {
        tag.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn collects_bindings_in_document_order() {
        let doc = parse_document(
            "<body onload=\"init()\">\
             <div id=\"nextArrow\" onclick=\"next()\">next</div>\
             <span onmouseover=\"hover()\">h</span>\
             </body>",
        );
        let bindings = collect_event_bindings(&doc, EventType::user_events());
        assert_eq!(bindings.len(), 2);
        assert_eq!(bindings[0].event_type, EventType::Click);
        assert_eq!(bindings[0].code, "next()");
        assert_eq!(bindings[0].source, "div#nextArrow");
        assert_eq!(bindings[1].event_type, EventType::MouseOver);
    }

    #[test]
    fn body_onload_found() {
        let doc = parse_document("<html><body onload=\"boot()\"><p>x</p></body></html>");
        assert_eq!(body_onload(&doc), Some("boot()".to_string()));
    }

    #[test]
    fn body_onload_absent() {
        let doc = parse_document("<html><body><p>x</p></body></html>");
        assert_eq!(body_onload(&doc), None);
    }

    #[test]
    fn empty_handlers_skipped() {
        let doc = parse_document("<div onclick=\"  \">x</div>");
        assert!(collect_event_bindings(&doc, EventType::user_events()).is_empty());
    }

    #[test]
    fn filter_by_type() {
        let doc = parse_document("<div onclick=\"a()\" onmouseover=\"b()\">x</div>");
        let clicks = collect_event_bindings(&doc, &[EventType::Click]);
        assert_eq!(clicks.len(), 1);
        assert_eq!(clicks[0].code, "a()");
    }

    #[test]
    fn event_type_attr_roundtrip() {
        for ty in EventType::all() {
            assert_eq!(EventType::from_attr(ty.attr_name()), Some(*ty));
        }
        assert_eq!(EventType::from_attr("onbogus"), None);
    }

    #[test]
    fn describe_falls_back_to_class_then_tag() {
        let doc = parse_document("<div class=\"menu big\">x</div><em>y</em>");
        let mut walk = doc.walk();
        let div = walk.next().unwrap();
        let em = walk.next().unwrap();
        assert_eq!(describe_element(&doc, div), "div.menu");
        assert_eq!(describe_element(&doc, em), "em");
    }
}
