//! DOM serialization: faithful (`to_html`) and normalized (for hashing).

use crate::dom::{Document, NodeData, NodeId};
use crate::entities;
use crate::parser::is_void_element;

/// Serializes the children of `id` (the `innerHTML` getter).
pub fn inner_html(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    for child in doc.children(id) {
        serialize_node(doc, child, &mut out);
    }
    out
}

/// Serializes the whole document.
pub fn document_html(doc: &Document) -> String {
    inner_html(doc, doc.root())
}

fn serialize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Root => {
            for child in doc.children(id) {
                serialize_node(doc, child, out);
            }
        }
        NodeData::Text(t) => out.push_str(&entities::encode_text(t)),
        NodeData::Comment(c) => {
            out.push_str("<!--");
            out.push_str(c);
            out.push_str("-->");
        }
        NodeData::Element { name, attrs } => {
            out.push('<');
            out.push_str(name);
            for (attr_name, attr_value) in attrs {
                out.push(' ');
                out.push_str(attr_name);
                out.push_str("=\"");
                out.push_str(&entities::encode_attr(attr_value));
                out.push('"');
            }
            out.push('>');
            if is_void_element(name) {
                return;
            }
            if name == "script" || name == "style" {
                // Raw text: serialize children verbatim.
                for child in doc.children(id) {
                    if let NodeData::Text(t) = &doc.node(child).data {
                        out.push_str(t);
                    }
                }
            } else {
                for child in doc.children(id) {
                    serialize_node(doc, child, out);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

/// Normalized serialization used for duplicate-state detection:
///
/// * attributes sorted by name (event ordering must not affect identity),
/// * text whitespace collapsed to single spaces and trimmed,
/// * comments dropped (invisible to the user, thus not part of the state),
/// * script bodies dropped (code is not content; a state is what the user
///   *sees* — the thesis hashes "the content of the state").
pub fn normalized_html(doc: &Document) -> String {
    let mut out = String::new();
    normalize_node(doc, doc.root(), &mut out);
    out
}

fn normalize_node(doc: &Document, id: NodeId, out: &mut String) {
    match &doc.node(id).data {
        NodeData::Root => {
            for child in doc.children(id) {
                normalize_node(doc, child, out);
            }
        }
        NodeData::Comment(_) => {}
        NodeData::Text(t) => {
            let collapsed = collapse_ws(t);
            if !collapsed.is_empty() {
                out.push_str(&collapsed);
            }
        }
        NodeData::Element { name, attrs } => {
            if name == "script" || name == "style" {
                return;
            }
            out.push('<');
            out.push_str(name);
            let mut sorted: Vec<&(String, String)> = attrs.iter().collect();
            sorted.sort_by(|a, b| a.0.cmp(&b.0));
            for (attr_name, attr_value) in sorted {
                out.push(' ');
                out.push_str(attr_name);
                out.push_str("=\"");
                out.push_str(&entities::encode_attr(attr_value));
                out.push('"');
            }
            out.push('>');
            for child in doc.children(id) {
                normalize_node(doc, child, out);
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
    }
}

fn collapse_ws(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_ws = true;
    for ch in s.chars() {
        if ch.is_whitespace() {
            if !last_ws {
                out.push(' ');
            }
            last_ws = true;
        } else {
            out.push(ch);
            last_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    #[test]
    fn roundtrip_simple() {
        let html = "<div id=\"a\"><p>x</p></div>";
        let doc = parse_document(html);
        assert_eq!(doc.to_html(), html);
    }

    #[test]
    fn script_serialized_verbatim() {
        let html = "<script>if (a < b) { go(); }</script>";
        let doc = parse_document(html);
        assert_eq!(doc.to_html(), html);
    }

    #[test]
    fn normalized_ignores_attr_order() {
        let a = parse_document("<div a=\"1\" b=\"2\">x</div>");
        let b = parse_document("<div b=\"2\" a=\"1\">x</div>");
        assert_eq!(a.normalized(), b.normalized());
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn normalized_ignores_whitespace_and_comments() {
        let a = parse_document("<p>hello   world</p><!-- c -->");
        let b = parse_document("<p>hello world</p>");
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn normalized_ignores_script_bodies() {
        let a = parse_document("<p>x</p><script>var v=1;</script>");
        let b = parse_document("<p>x</p><script>var v=2;</script>");
        assert_eq!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn normalized_distinguishes_content() {
        let a = parse_document("<p>comment page 1</p>");
        let b = parse_document("<p>comment page 2</p>");
        assert_ne!(a.content_hash(), b.content_hash());
    }

    #[test]
    fn entities_escaped_on_output() {
        let mut doc = Document::new();
        let root = doc.root();
        let p = doc.append_element(root, "p", vec![("title".into(), "a\"b&c".into())]);
        doc.append_text(p, "x < y & z");
        let html = doc.to_html();
        assert_eq!(html, "<p title=\"a&quot;b&amp;c\">x &lt; y &amp; z</p>");
        // And it must reparse to the same content.
        let reparsed = parse_document(&html);
        assert_eq!(reparsed.content_hash(), doc.content_hash());
    }
}
