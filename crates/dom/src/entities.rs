//! Minimal HTML entity encoding/decoding.
//!
//! We support the named entities that occur in practice in text-centric pages
//! plus numeric character references. Unknown entities are passed through
//! verbatim (browser-like leniency).

/// Decodes HTML entities in `input` (`&amp;`, `&lt;`, `&gt;`, `&quot;`,
/// `&apos;`, `&nbsp;` and numeric `&#NN;` / `&#xHH;` references).
pub fn decode(input: &str) -> String {
    if !input.contains('&') {
        return input.to_string();
    }
    let mut out = String::with_capacity(input.len());
    let bytes = input.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((replacement, consumed)) = decode_entity(&input[i..]) {
                out.push_str(&replacement);
                i += consumed;
                continue;
            }
        }
        // Advance one full UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&input[i..i + ch_len]);
        i += ch_len;
    }
    out
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >> 5 == 0b110 => 2,
        b if b >> 4 == 0b1110 => 3,
        _ => 4,
    }
}

/// Attempts to decode one entity at the start of `s` (which begins with `&`).
/// Returns the replacement text and the number of input bytes consumed.
fn decode_entity(s: &str) -> Option<(String, usize)> {
    let end = s[1..].find(';').map(|p| p + 1)?;
    if end > 32 {
        return None; // Unreasonably long; not an entity.
    }
    let name = &s[1..end];
    let consumed = end + 1;
    let text = match name {
        "amp" => "&".to_string(),
        "lt" => "<".to_string(),
        "gt" => ">".to_string(),
        "quot" => "\"".to_string(),
        "apos" => "'".to_string(),
        "nbsp" => "\u{a0}".to_string(),
        _ if name.starts_with("#x") || name.starts_with("#X") => {
            let code = u32::from_str_radix(&name[2..], 16).ok()?;
            char::from_u32(code)?.to_string()
        }
        _ if name.starts_with('#') => {
            let code: u32 = name[1..].parse().ok()?;
            char::from_u32(code)?.to_string()
        }
        _ => return None,
    };
    Some((text, consumed))
}

/// Encodes text content: escapes `&`, `<`, `>`.
pub fn encode_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Encodes an attribute value: like [`encode_text`] but also escapes `"`.
pub fn encode_attr(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(ch),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_named() {
        assert_eq!(
            decode("a &amp; b &lt;c&gt; &quot;d&quot;"),
            "a & b <c> \"d\""
        );
    }

    #[test]
    fn decode_numeric() {
        assert_eq!(decode("&#65;&#x42;"), "AB");
        assert_eq!(decode("&#x1F600;"), "😀");
    }

    #[test]
    fn unknown_entities_pass_through() {
        assert_eq!(decode("&bogus; & x"), "&bogus; & x");
        assert_eq!(decode("100% &"), "100% &");
    }

    #[test]
    fn encode_roundtrip() {
        let original = "a<b>&\"c\"";
        assert_eq!(decode(&encode_attr(original)), original);
        assert_eq!(decode(&encode_text("x & <y>")), "x & <y>");
    }

    #[test]
    fn decode_multibyte_passthrough() {
        assert_eq!(decode("héllo & wörld"), "héllo & wörld");
    }
}
