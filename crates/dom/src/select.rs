//! A small CSS-selector engine over the DOM: enough to locate elements by
//! tag, id, class, attribute presence/value, compounds and descendant
//! combinators. Used by the search engine's element-level result
//! presentation (thesis §5.3: "the user might be interested in the DOM
//! element in which the desired text resides") and by analysis tooling.
//!
//! Supported grammar (whitespace = descendant combinator):
//!
//! ```text
//! selector   := compound (WS compound)*
//! compound   := part+
//! part       := tag | '#'id | '.'class | '[' attr ('=' value)? ']' | '*'
//! ```

use crate::dom::{Document, NodeId};

/// One simple-selector part of a compound.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Part {
    Universal,
    Tag(String),
    Id(String),
    Class(String),
    AttrPresent(String),
    AttrEquals(String, String),
}

/// A parsed selector: a chain of compounds connected by descendant
/// combinators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selector {
    compounds: Vec<Vec<Part>>,
}

/// Selector parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectorError(pub String);

impl std::fmt::Display for SelectorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad selector: {}", self.0)
    }
}

impl std::error::Error for SelectorError {}

impl Selector {
    /// Parses a selector string.
    pub fn parse(input: &str) -> Result<Selector, SelectorError> {
        let mut compounds = Vec::new();
        for chunk in input.split_whitespace() {
            compounds.push(parse_compound(chunk)?);
        }
        if compounds.is_empty() {
            return Err(SelectorError("empty selector".into()));
        }
        Ok(Selector { compounds })
    }

    /// True when the element `node` matches the *last* compound and its
    /// ancestor chain satisfies the preceding compounds.
    pub fn matches(&self, doc: &Document, node: NodeId) -> bool {
        let (last, ancestors_spec) = self
            .compounds
            .split_last()
            .expect("parse guarantees non-empty");
        if !matches_compound(doc, node, last) {
            return false;
        }
        // Walk ancestors, greedily satisfying the remaining compounds from
        // the right.
        let mut remaining = ancestors_spec.len();
        let mut current = doc.node(node).parent;
        while remaining > 0 {
            let Some(ancestor) = current else {
                return false;
            };
            if matches_compound(doc, ancestor, &ancestors_spec[remaining - 1]) {
                remaining -= 1;
            }
            current = doc.node(ancestor).parent;
        }
        true
    }

    /// All elements matching the selector, in document order.
    pub fn select(&self, doc: &Document) -> Vec<NodeId> {
        doc.walk().filter(|&n| self.matches(doc, n)).collect()
    }
}

fn parse_compound(chunk: &str) -> Result<Vec<Part>, SelectorError> {
    let mut parts = Vec::new();
    let bytes = chunk.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'*' => {
                parts.push(Part::Universal);
                i += 1;
            }
            b'#' => {
                let (name, next) = take_name(chunk, i + 1);
                if name.is_empty() {
                    return Err(SelectorError(format!("empty id in {chunk:?}")));
                }
                parts.push(Part::Id(name));
                i = next;
            }
            b'.' => {
                let (name, next) = take_name(chunk, i + 1);
                if name.is_empty() {
                    return Err(SelectorError(format!("empty class in {chunk:?}")));
                }
                parts.push(Part::Class(name));
                i = next;
            }
            b'[' => {
                let close = chunk[i..]
                    .find(']')
                    .map(|p| p + i)
                    .ok_or_else(|| SelectorError(format!("unclosed [ in {chunk:?}")))?;
                let body = &chunk[i + 1..close];
                match body.split_once('=') {
                    Some((k, v)) => parts.push(Part::AttrEquals(
                        k.trim().to_ascii_lowercase(),
                        v.trim().trim_matches('"').to_string(),
                    )),
                    None => parts.push(Part::AttrPresent(body.trim().to_ascii_lowercase())),
                }
                i = close + 1;
            }
            _ => {
                let (name, next) = take_name(chunk, i);
                if name.is_empty() {
                    return Err(SelectorError(format!(
                        "unexpected {:?} in {chunk:?}",
                        chunk[i..].chars().next().unwrap_or('?')
                    )));
                }
                parts.push(Part::Tag(name.to_ascii_lowercase()));
                i = next;
            }
        }
    }
    if parts.is_empty() {
        return Err(SelectorError("empty compound".into()));
    }
    Ok(parts)
}

/// Reads an identifier (`a-zA-Z0-9_-`) starting at `from`; returns it and
/// the next index.
fn take_name(chunk: &str, from: usize) -> (String, usize) {
    let bytes = chunk.as_bytes();
    let mut i = from;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'-')
    {
        i += 1;
    }
    (chunk[from..i].to_string(), i)
}

fn matches_compound(doc: &Document, node: NodeId, parts: &[Part]) -> bool {
    parts.iter().all(|part| match part {
        Part::Universal => doc.tag_name(node).is_some(),
        Part::Tag(tag) => doc.tag_name(node) == Some(tag.as_str()),
        Part::Id(id) => doc.attr(node, "id") == Some(id.as_str()),
        Part::Class(class) => doc
            .attr(node, "class")
            .is_some_and(|v| v.split_whitespace().any(|c| c == class)),
        Part::AttrPresent(name) => doc.attr(node, name).is_some(),
        Part::AttrEquals(name, value) => doc.attr(node, name) == Some(value.as_str()),
    })
}

/// Convenience: parse + select in one call.
pub fn select(doc: &Document, selector: &str) -> Result<Vec<NodeId>, SelectorError> {
    Ok(Selector::parse(selector)?.select(doc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_document;

    fn doc() -> Document {
        parse_document(
            "<div id=\"main\" class=\"wrap outer\">\
               <p class=\"comment first\">one</p>\
               <p class=\"comment\">two</p>\
               <span data-k=\"v\">three</span>\
               <div class=\"nested\"><p class=\"comment\">deep</p></div>\
             </div>\
             <p class=\"comment\">outside</p>",
        )
    }

    fn texts(doc: &Document, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| doc.text_content(n)).collect()
    }

    #[test]
    fn by_tag() {
        let d = doc();
        assert_eq!(select(&d, "p").unwrap().len(), 4);
        assert_eq!(select(&d, "span").unwrap().len(), 1);
        assert_eq!(select(&d, "em").unwrap().len(), 0);
    }

    #[test]
    fn by_id_and_class() {
        let d = doc();
        assert_eq!(select(&d, "#main").unwrap().len(), 1);
        assert_eq!(select(&d, ".comment").unwrap().len(), 4);
        assert_eq!(select(&d, ".first").unwrap().len(), 1);
        assert_eq!(select(&d, ".wrap").unwrap().len(), 1, "multi-class attr");
    }

    #[test]
    fn compound() {
        let d = doc();
        assert_eq!(select(&d, "p.comment.first").unwrap().len(), 1);
        assert_eq!(select(&d, "div#main").unwrap().len(), 1);
        assert_eq!(select(&d, "span.comment").unwrap().len(), 0);
    }

    #[test]
    fn attributes() {
        let d = doc();
        assert_eq!(select(&d, "[data-k]").unwrap().len(), 1);
        assert_eq!(select(&d, "[data-k=v]").unwrap().len(), 1);
        assert_eq!(select(&d, "[data-k=w]").unwrap().len(), 0);
    }

    #[test]
    fn descendant_combinator() {
        let d = doc();
        let inside = select(&d, "#main .comment").unwrap();
        assert_eq!(inside.len(), 3, "excludes the outside paragraph");
        assert_eq!(
            texts(&d, &inside),
            vec!["one", "two", "deep"],
            "document order"
        );
        assert_eq!(select(&d, ".nested p").unwrap().len(), 1);
        assert_eq!(select(&d, "#main .nested .comment").unwrap().len(), 1);
        assert_eq!(
            select(&d, ".nested #main").unwrap().len(),
            0,
            "order matters"
        );
    }

    #[test]
    fn universal() {
        let d = doc();
        assert_eq!(select(&d, "#main *").unwrap().len(), 5);
    }

    #[test]
    fn errors() {
        assert!(Selector::parse("").is_err());
        assert!(Selector::parse("#").is_err());
        assert!(Selector::parse(".").is_err());
        assert!(Selector::parse("[unclosed").is_err());
        assert!(Selector::parse("??").is_err());
    }

    #[test]
    fn selectors_survive_mutation() {
        let mut d = doc();
        let main = d.get_element_by_id("main").unwrap();
        d.set_inner_html(main, "<p class=\"comment\">replaced</p>");
        assert_eq!(select(&d, "#main .comment").unwrap().len(), 1);
        assert_eq!(select(&d, ".comment").unwrap().len(), 2);
    }
}
