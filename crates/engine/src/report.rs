//! Pipeline accounting: what the build did, in the units the thesis'
//! experiments report.

use ajax_crawl::checkpoint::CheckpointStats;
use ajax_crawl::crawler::PageStats;
use ajax_crawl::parallel::MpReport;
use ajax_crawl::precrawl::LinkGraph;
use ajax_index::shard::QueryBroker;
use ajax_net::Micros;
use serde::{Deserialize, Serialize};

/// One page the crawl gave up on, as surfaced by the CLI and JSON report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FailureSummary {
    /// Partition the page belonged to.
    pub partition: usize,
    pub url: String,
    /// Human-readable error of the last attempt.
    pub error: String,
    /// Page-level crawl attempts before giving up.
    pub attempts: u32,
    /// True when the URL was quarantined (kept failing transiently).
    pub quarantined: bool,
}

/// Summary of a pipeline run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct BuildReport {
    /// Pages discovered by the precrawl.
    pub pages_discovered: usize,
    /// Pages successfully crawled.
    pub pages_crawled: usize,
    /// Pages that failed to crawl.
    pub pages_failed: usize,
    /// Pages that failed at least once but were recovered by a re-crawl pass.
    pub pages_recovered: u64,
    /// Poison URLs quarantined after repeated transient failures.
    pub pages_quarantined: u64,
    /// Page-level re-crawl attempts beyond the first.
    pub page_retries: u64,
    /// Every abandoned page (URL, error, attempts), in partition order.
    pub failures: Vec<FailureSummary>,
    /// Virtual time of the precrawl phase.
    pub precrawl_micros: Micros,
    /// Aggregate per-page crawl statistics.
    pub crawl: PageStats,
    /// Virtual makespan of the (parallel) crawl.
    pub virtual_makespan: Micros,
    /// Serial virtual time of the same work.
    pub virtual_serial: Micros,
    /// Total states in the index.
    pub total_states: u64,
    /// Number of index shards.
    pub shards: usize,
    /// Resident size of the sharded index in bytes (dictionary strings,
    /// posting columns, position arena, page tables — honest capacities,
    /// not just lengths).
    pub index_bytes: u64,
    /// Checkpoint journal accounting (all zeros when checkpointing was
    /// off): snapshots written, pages restored on resume, whether this
    /// build resumed, and wall time spent writing snapshots.
    pub checkpoint: CheckpointStats,
    /// Real (wall-clock) duration of the whole build on the host machine.
    /// Everything else time-shaped in this report (`precrawl_micros`,
    /// `virtual_makespan`, `virtual_serial`) is *virtual* time from the
    /// simulated network clock — the two axes must never be conflated.
    pub build_wall_micros: Micros,
}

impl BuildReport {
    /// Assembles the report from the phases' outputs.
    pub fn new(graph: &LinkGraph, crawl: &MpReport, broker: &QueryBroker) -> Self {
        let pages_crawled = crawl.partitions.iter().map(|p| p.models.len()).sum();
        let pages_failed = crawl.partitions.iter().map(|p| p.failures.len()).sum();
        let failures = crawl
            .partitions
            .iter()
            .flat_map(|p| {
                p.failures.iter().map(|f| FailureSummary {
                    partition: p.id,
                    url: f.url.clone(),
                    error: f.error.to_string(),
                    attempts: f.attempts,
                    quarantined: f.quarantined,
                })
            })
            .collect();
        Self {
            pages_discovered: graph.len(),
            pages_crawled,
            pages_failed,
            pages_recovered: crawl.recovered_pages,
            pages_quarantined: crawl.quarantined_pages,
            page_retries: crawl.page_retries,
            failures,
            precrawl_micros: graph.precrawl_micros,
            crawl: crawl.aggregate.clone(),
            virtual_makespan: crawl.virtual_makespan,
            virtual_serial: crawl.virtual_serial,
            total_states: broker.total_states(),
            shards: broker.shard_count(),
            index_bytes: broker.approx_bytes() as u64,
            checkpoint: CheckpointStats::default(),
            build_wall_micros: 0,
        }
    }

    /// Mean virtual crawl time per page (serial).
    pub fn mean_page_micros(&self) -> f64 {
        if self.pages_crawled == 0 {
            0.0
        } else {
            self.crawl.crawl_micros as f64 / self.pages_crawled as f64
        }
    }

    /// Mean virtual crawl time per state (serial).
    pub fn mean_state_micros(&self) -> f64 {
        if self.crawl.states == 0 {
            0.0
        } else {
            self.crawl.crawl_micros as f64 / self.crawl.states as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn means_handle_zero() {
        let r = BuildReport::default();
        assert_eq!(r.mean_page_micros(), 0.0);
        assert_eq!(r.mean_state_micros(), 0.0);
    }

    #[test]
    fn means_compute() {
        let r = BuildReport {
            pages_crawled: 4,
            crawl: PageStats {
                crawl_micros: 4_000,
                states: 8,
                ..PageStats::default()
            },
            ..BuildReport::default()
        };
        assert_eq!(r.mean_page_micros(), 1_000.0);
        assert_eq!(r.mean_state_micros(), 500.0);
    }
}
