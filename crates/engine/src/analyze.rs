//! Site-wide static analysis: run the effect/diagnostics pass
//! (`ajax_crawl::analysis`) over every page of a site *without crawling*
//! — no events are fired, no states are built. This is the `ajax-search
//! analyze` surface: a fast lint pass over the application's initial
//! documents, reporting the findings of `docs/static-analysis.md`'s
//! catalogue (SA001–SA008) and how many handlers the static crawl
//! planner would prune.

use ajax_crawl::analysis::{analyze_page, Severity};
use ajax_net::{Request, Server};
use serde::{Deserialize, Serialize};

/// One diagnostic, flattened to strings so the JSON report needs no
/// knowledge of the lint catalogue's Rust types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderedDiagnostic {
    /// Stable lint code (`SA001`…`SA008`).
    pub code: String,
    /// `error` | `warning` | `info`.
    pub severity: String,
    /// What the finding is about (function or binding).
    pub subject: String,
    pub message: String,
}

/// Static-analysis report of one page.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageReport {
    pub url: String,
    /// Functions in the page's merged invocation graph.
    pub functions: usize,
    /// Event bindings in the initial DOM.
    pub bindings: usize,
    /// Bindings whose handler is provably pure (prunable).
    pub pure_bindings: usize,
    /// `<script>` blocks that failed to parse.
    pub script_errors: usize,
    /// Findings, most severe first.
    pub diagnostics: Vec<RenderedDiagnostic>,
}

/// Aggregated analysis over a set of pages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteAnalysis {
    pub pages: Vec<PageReport>,
    /// Total findings by severity, across all pages.
    pub errors: usize,
    pub warnings: usize,
    pub infos: usize,
}

impl SiteAnalysis {
    /// True when any page produced an error-severity finding — the CI
    /// analyze-smoke gate.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }
}

/// Fetches each URL straight from the server and runs the static pass.
/// Unreachable pages (non-2xx) surface as an SA001-style parse-error page
/// report rather than aborting the sweep.
pub fn analyze_site(server: &dyn Server, urls: &[String]) -> SiteAnalysis {
    let mut site = SiteAnalysis::default();
    for url in urls {
        let response = server.handle(&Request::get(ajax_net::Url::parse(url)));
        if !response.is_ok() {
            site.errors += 1;
            site.pages.push(PageReport {
                url: url.clone(),
                diagnostics: vec![RenderedDiagnostic {
                    code: "SA000".into(),
                    severity: "error".into(),
                    subject: url.clone(),
                    message: format!("fetch failed with status {}", response.status),
                }],
                ..PageReport::default()
            });
            continue;
        }
        let analysis = analyze_page(&response.body);
        let diagnostics: Vec<RenderedDiagnostic> = analysis
            .diagnostics()
            .into_iter()
            .map(|d| RenderedDiagnostic {
                code: d.lint.code().to_string(),
                severity: d.severity().to_string(),
                subject: d.subject.clone(),
                message: d.message.clone(),
            })
            .collect();
        for d in analysis.diagnostics() {
            match d.severity() {
                Severity::Error => site.errors += 1,
                Severity::Warning => site.warnings += 1,
                Severity::Info => site.infos += 1,
            }
        }
        site.pages.push(PageReport {
            url: url.clone(),
            functions: analysis.graph.functions().count(),
            bindings: analysis.bindings.len(),
            pure_bindings: analysis
                .bindings
                .iter()
                .filter(|b| analysis.verdict(&b.code).is_some_and(|v| v.is_pure()))
                .count(),
            script_errors: analysis.script_errors,
            diagnostics,
        });
    }
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};

    #[test]
    fn vidshare_pages_are_error_clean() {
        let spec = VidShareSpec::small(4);
        let urls: Vec<String> = (0..4).map(|v| spec.watch_url(v)).collect();
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        assert_eq!(site.pages.len(), 4);
        assert!(!site.has_errors(), "generated sites must lint clean");
        // Every watch page carries the pure highlightTitle mouseover.
        assert!(site.pages.iter().all(|p| p.pure_bindings > 0));
        // The stateless-handler info lint fires for it.
        assert!(site
            .pages
            .iter()
            .all(|p| p.diagnostics.iter().any(|d| d.code == "SA007")));
    }

    #[test]
    fn news_pages_are_error_clean_with_no_pure_bindings() {
        let spec = NewsSpec::small(3);
        let urls: Vec<String> = (0..3).map(|p| spec.page_url(p)).collect();
        let server = NewsShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        assert!(!site.has_errors());
        // Every *user-event* handler mutates state (history push / fetch);
        // the only pure binding is the `initNews()` onload bootstrap, which
        // merely reads a global.
        assert!(site.pages.iter().all(|p| p.pure_bindings == 1));
    }

    #[test]
    fn unreachable_page_is_an_error() {
        let spec = VidShareSpec::small(1);
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &["http://x/nope".to_string()]);
        assert!(site.has_errors());
        assert_eq!(site.pages[0].diagnostics[0].code, "SA000");
    }

    #[test]
    fn report_roundtrips_through_json() {
        let spec = VidShareSpec::small(2);
        let urls: Vec<String> = (0..2).map(|v| spec.watch_url(v)).collect();
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        let json = serde_json::to_string_pretty(&site).unwrap();
        let back: SiteAnalysis = serde_json::from_str(&json).unwrap();
        assert_eq!(site, back);
    }
}
