//! Site-wide static analysis: run the effect/diagnostics pass
//! (`ajax_crawl::analysis`) over every page of a site *without crawling*
//! — no events are fired, no states are built. This is the `ajax-search
//! analyze` surface: a fast lint pass over the application's initial
//! documents, reporting the findings of `docs/static-analysis.md`'s
//! catalogue (SA001–SA008) and how many handlers the static crawl
//! planner would prune.

use ajax_crawl::analysis::{analyze_page, Severity};
use ajax_net::{Request, Server};
use serde::{Deserialize, Serialize};

/// One diagnostic, flattened to strings so the JSON report needs no
/// knowledge of the lint catalogue's Rust types.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RenderedDiagnostic {
    /// Stable lint code (`SA001`…`SA012`).
    pub code: String,
    /// `error` | `warning` | `info`.
    pub severity: String,
    /// What the finding is about (function or binding).
    pub subject: String,
    pub message: String,
}

/// The abstract read/write-set summary of one distinct handler snippet —
/// the `analyze` rendering of the interprocedural effect fixpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BindingReport {
    /// The handler snippet (`onclick` source).
    pub code: String,
    /// Elements the snippet is bound to.
    pub sources: Vec<String>,
    /// False when the snippet failed to parse (everything below is then
    /// the worst-case verdict).
    pub parsed: bool,
    /// Abstract DOM locations written (`#id`, `#prefix*`, `*`).
    pub writes: Vec<String>,
    /// Abstract DOM locations read (includes write targets).
    pub reads: Vec<String>,
    pub globals_read: Vec<String>,
    pub globals_written: Vec<String>,
    /// Constant XHR URLs and URL prefixes reachable from the handler.
    pub xhr_urls: Vec<String>,
    /// Equivalence class the snippet belongs to (`None` if unparsed).
    pub class: Option<u32>,
}

/// One handler equivalence class: snippets whose effect summaries are
/// isomorphic up to symbol renaming.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquivClassReport {
    pub id: u32,
    /// The κ-renamed canonical signature shared by every member.
    pub signature: String,
    /// Member snippets.
    pub members: Vec<String>,
}

/// Pairwise commutativity over the page's distinct handler snippets.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommuteMatrix {
    /// Row/column labels, in first-appearance order.
    pub codes: Vec<String>,
    /// `rows[i]` is a string over `{+,-}`: `+` at column `j` means
    /// `codes[i]` and `codes[j]` provably commute.
    pub rows: Vec<String>,
}

/// Static-analysis report of one page.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageReport {
    pub url: String,
    /// Functions in the page's merged invocation graph.
    pub functions: usize,
    /// Event bindings in the initial DOM.
    pub bindings: usize,
    /// Bindings whose handler is provably pure (prunable).
    pub pure_bindings: usize,
    /// `<script>` blocks that failed to parse.
    pub script_errors: usize,
    /// Findings, most severe first.
    pub diagnostics: Vec<RenderedDiagnostic>,
    /// Per-snippet read/write-set summaries.
    pub binding_reports: Vec<BindingReport>,
    /// Handler equivalence classes (only classes with ≥ 1 member of the
    /// page's bindings; singletons included).
    pub equiv_classes: Vec<EquivClassReport>,
    /// Pairwise commutativity matrix over the distinct snippets.
    pub commute: CommuteMatrix,
}

/// Aggregated analysis over a set of pages.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteAnalysis {
    pub pages: Vec<PageReport>,
    /// Total findings by severity, across all pages.
    pub errors: usize,
    pub warnings: usize,
    pub infos: usize,
}

impl SiteAnalysis {
    /// True when any page produced an error-severity finding — the CI
    /// analyze-smoke gate.
    pub fn has_errors(&self) -> bool {
        self.errors > 0
    }
}

/// Fetches each URL straight from the server and runs the static pass.
/// Unreachable pages (non-2xx) surface as an SA001-style parse-error page
/// report rather than aborting the sweep.
pub fn analyze_site(server: &dyn Server, urls: &[String]) -> SiteAnalysis {
    let mut site = SiteAnalysis::default();
    for url in urls {
        let response = server.handle(&Request::get(ajax_net::Url::parse(url)));
        if !response.is_ok() {
            site.errors += 1;
            site.pages.push(PageReport {
                url: url.clone(),
                diagnostics: vec![RenderedDiagnostic {
                    code: "SA000".into(),
                    severity: "error".into(),
                    subject: url.clone(),
                    message: format!("fetch failed with status {}", response.status),
                }],
                ..PageReport::default()
            });
            continue;
        }
        let analysis = analyze_page(&response.body);
        // Single diagnostics pass: render and tally in one sweep over the
        // memoized slice.
        let mut diagnostics = Vec::new();
        for d in analysis.diagnostics() {
            match d.severity() {
                Severity::Error => site.errors += 1,
                Severity::Warning => site.warnings += 1,
                Severity::Info => site.infos += 1,
            }
            diagnostics.push(RenderedDiagnostic {
                code: d.lint.code().to_string(),
                severity: d.severity().to_string(),
                subject: d.subject.clone(),
                message: d.message.clone(),
            });
        }
        // Distinct snippets in first-appearance order, with the elements
        // each one is bound to.
        let mut codes: Vec<String> = Vec::new();
        for b in &analysis.bindings {
            if !codes.contains(&b.code) {
                codes.push(b.code.clone());
            }
        }
        let classes = analysis.equiv_classes();
        let class_of = |code: &str| -> Option<u32> {
            classes
                .iter()
                .find(|c| c.members.iter().any(|m| m == code))
                .map(|c| c.id)
        };
        let binding_reports: Vec<BindingReport> = codes
            .iter()
            .map(|code| {
                let verdict = analysis.verdict(code);
                let (parsed, summary) = match verdict {
                    Some(v) => (v.parsed, Some(&v.summary)),
                    None => (false, None),
                };
                let mut report = BindingReport {
                    code: code.clone(),
                    sources: analysis
                        .bindings
                        .iter()
                        .filter(|b| &b.code == code)
                        .map(|b| b.source.clone())
                        .collect(),
                    parsed,
                    class: parsed.then(|| class_of(code)).flatten(),
                    ..BindingReport::default()
                };
                if let Some(sum) = summary.filter(|_| parsed) {
                    report.writes = sum.write_locs().render();
                    report.reads = sum.read_locs().render();
                    report.globals_read = sum.reads_globals.iter().cloned().collect();
                    report.globals_written = sum.writes_globals.iter().cloned().collect();
                    report.xhr_urls = sum
                        .xhr_const_urls
                        .iter()
                        .cloned()
                        .chain(sum.xhr_url_prefixes.iter().map(|p| format!("{p}*")))
                        .collect();
                    if sum.xhr_dynamic || !sum.xhr_url_params.is_empty() {
                        report.xhr_urls.push("*".to_string());
                    }
                }
                report
            })
            .collect();
        let commute = CommuteMatrix {
            codes: codes.clone(),
            rows: codes
                .iter()
                .map(|a| {
                    codes
                        .iter()
                        .map(|b| if analysis.commutes(a, b) { '+' } else { '-' })
                        .collect()
                })
                .collect(),
        };
        site.pages.push(PageReport {
            url: url.clone(),
            functions: analysis.graph.functions().count(),
            bindings: analysis.bindings.len(),
            pure_bindings: analysis
                .bindings
                .iter()
                .filter(|b| analysis.verdict(&b.code).is_some_and(|v| v.is_pure()))
                .count(),
            script_errors: analysis.script_errors,
            diagnostics,
            binding_reports,
            equiv_classes: classes
                .into_iter()
                .map(|c| EquivClassReport {
                    id: c.id,
                    signature: c.signature,
                    members: c.members,
                })
                .collect(),
            commute,
        });
    }
    site
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_webgen::{
        GalleryServer, GallerySpec, NewsShareServer, NewsSpec, VidShareServer, VidShareSpec,
    };

    #[test]
    fn vidshare_pages_are_error_clean() {
        let spec = VidShareSpec::small(4);
        let urls: Vec<String> = (0..4).map(|v| spec.watch_url(v)).collect();
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        assert_eq!(site.pages.len(), 4);
        assert!(!site.has_errors(), "generated sites must lint clean");
        // Every watch page carries the pure highlightTitle mouseover.
        assert!(site.pages.iter().all(|p| p.pure_bindings > 0));
        // The stateless-handler info lint fires for it.
        assert!(site
            .pages
            .iter()
            .all(|p| p.diagnostics.iter().any(|d| d.code == "SA007")));
    }

    #[test]
    fn news_pages_are_error_clean_with_no_pure_bindings() {
        let spec = NewsSpec::small(3);
        let urls: Vec<String> = (0..3).map(|p| spec.page_url(p)).collect();
        let server = NewsShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        assert!(!site.has_errors());
        // Every *user-event* handler mutates state (history push / fetch);
        // the only pure binding is the `initNews()` onload bootstrap, which
        // merely reads a global.
        assert!(site.pages.iter().all(|p| p.pure_bindings == 1));
    }

    #[test]
    fn unreachable_page_is_an_error() {
        let spec = VidShareSpec::small(1);
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &["http://x/nope".to_string()]);
        assert!(site.has_errors());
        assert_eq!(site.pages[0].diagnostics[0].code, "SA000");
    }

    #[test]
    fn gallery_pages_expose_classes_and_commutativity() {
        let spec = GallerySpec::small(2);
        let urls: Vec<String> = (0..2).map(|a| spec.page_url(a)).collect();
        let server = GalleryServer::new(spec);
        let site = analyze_site(&server, &urls);
        assert!(!site.has_errors());
        let page = &site.pages[0];

        // Read/write sets: caption rows are prefix writes, the hero loader
        // writes the single hero id and reaches the network.
        let cap = page
            .binding_reports
            .iter()
            .find(|b| b.code == "showCaption(0)")
            .expect("caption binding reported");
        assert!(cap.parsed);
        assert_eq!(cap.writes, vec!["#cap_*"]);
        assert!(cap.xhr_urls.is_empty());
        let hero = page
            .binding_reports
            .iter()
            .find(|b| b.code.starts_with("loadPhoto"))
            .expect("hero binding reported");
        assert_eq!(hero.writes, vec!["#hero"]);
        assert!(!hero.xhr_urls.is_empty());

        // Every caption and tag row lands in one equivalence class; the
        // hero loader stays out of it.
        assert_eq!(
            cap.class,
            page.binding_reports
                .iter()
                .find(|b| b.code == "showTag(0)")
                .unwrap()
                .class
        );
        assert_ne!(cap.class, hero.class);
        let row_class = page
            .equiv_classes
            .iter()
            .find(|c| c.id == cap.class.unwrap())
            .unwrap();
        assert!(row_class.members.len() >= 2);

        // Commutativity: rows commute with the hero loader (disjoint
        // regions), and the matrix is symmetric.
        let idx = |code: &str| page.commute.codes.iter().position(|c| c == code).unwrap();
        let (ci, hi) = (idx("showCaption(0)"), idx(&hero.code));
        assert_eq!(page.commute.rows[ci].as_bytes()[hi], b'+');
        assert_eq!(page.commute.rows[hi].as_bytes()[ci], b'+');
    }

    #[test]
    fn report_roundtrips_through_json() {
        let spec = VidShareSpec::small(2);
        let urls: Vec<String> = (0..2).map(|v| spec.watch_url(v)).collect();
        let server = VidShareServer::new(spec);
        let site = analyze_site(&server, &urls);
        let json = serde_json::to_string_pretty(&site).unwrap();
        let back: SiteAnalysis = serde_json::from_str(&json).unwrap();
        assert_eq!(site, back);
    }
}
