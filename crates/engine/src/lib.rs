//! # ajax-engine
//!
//! The end-to-end AJAX search engine of thesis ch. 5/6, assembled from the
//! workspace crates. [`AjaxSearchEngine::build`] runs the full pipeline of
//! Fig 6.1:
//!
//! 1. **Precrawling** — BFS over hyperlinks from a start URL, PageRank;
//! 2. **Partitioning** — the URL list is split into fixed-size partitions;
//! 3. **Crawling** — `proc_lines` parallel process lines build the AJAX
//!    application models (traditional / basic AJAX / hot-node AJAX per the
//!    crawl config);
//! 4. **Indexing** — one state-granular inverted file per partition;
//! 5. **Query processing** — query shipping + global-idf merge through a
//!    [`QueryBroker`];
//! 6. **Result aggregation** — state reconstruction by event replay
//!    (when the crawl stored DOMs).
//!
//! For long-lived serving, [`AjaxSearchEngine::into_server`] hands the
//! sharded index to `ajax-serve`'s concurrent [`ShardServer`] — per-shard
//! worker pools, an LRU result cache, and admission control.

pub mod analyze;
pub mod report;

use ajax_crawl::checkpoint::{self, CheckpointError, Checkpointer, ResumeState};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::model::AppModel;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_crawl::precrawl::{LinkGraph, Precrawler};
use ajax_crawl::replay::{reconstruct_state, ReplayError};
use ajax_dom::Document;
use ajax_index::invert::build_index_parallel;
use ajax_index::query::{Query, RankWeights};
use ajax_index::shard::{BrokerResult, QueryBroker};
use ajax_net::{FaultPlan, LatencyModel, Server, Url};
use ajax_obs::{AttrValue, Recorder, SpanEvent};
use ajax_serve::{ServeConfig, ShardServer};
use std::sync::Arc;

pub use analyze::{analyze_site, PageReport, SiteAnalysis};
pub use report::BuildReport;

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The crawl flavour (traditional / AJAX ± hot-node policy, state caps…).
    pub crawl: CrawlConfig,
    /// Latency model for all network clients.
    pub latency: LatencyModel,
    /// `NUM_OF_PAGES_TO_PRECRAWL`.
    pub precrawl_pages: usize,
    /// `PARTITION_SIZE`.
    pub partition_size: usize,
    /// `MP_CRAWLER_NUM_OF_PROC_LINES`.
    pub proc_lines: usize,
    /// CPU cores of the virtual machine model.
    pub cores: usize,
    /// Index at most this many states per page (`None` = all crawled).
    pub max_index_states: Option<usize>,
    /// Ranking weights (formula 5.3).
    pub weights: RankWeights,
    /// Keep the crawled models inside the engine (needed for result
    /// aggregation; costs memory on large corpora).
    pub keep_models: bool,
    /// Deterministic fault injection for every network client in the
    /// pipeline (`None` = fault-free).
    pub fault_plan: Option<FaultPlan>,
    /// Quarantine a page URL after this many failed page-level crawl
    /// attempts across re-crawl passes.
    pub quarantine_after: u32,
    /// Precrawl link filter: only follow hyperlinks whose path starts with
    /// this prefix (`None` follows everything). Defaults to `/watch`, the
    /// VidShare content path; a NewsShare site needs `/news`.
    pub path_filter: Option<String>,
    /// Record spans across precrawl → crawl → index; drained from
    /// [`AjaxSearchEngine::spans`] after the build.
    pub trace: bool,
    /// Directory for the crawl checkpoint journal (`None` = no
    /// checkpointing). Snapshot cadence is `crawl.checkpoint_every`.
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Resume from an existing journal in `checkpoint_dir` (restoring the
    /// precrawl graph and every completed page) instead of starting fresh.
    pub resume: bool,
}

impl EngineConfig {
    /// A sensible default AJAX configuration for `n` pages.
    pub fn ajax(n: usize) -> Self {
        Self {
            crawl: CrawlConfig::ajax(),
            latency: LatencyModel::thesis_default(7),
            precrawl_pages: n,
            partition_size: 50.min(n.max(1)),
            proc_lines: 4,
            cores: 2,
            max_index_states: None,
            weights: RankWeights::default(),
            keep_models: false,
            fault_plan: None,
            quarantine_after: 3,
            path_filter: Some("/watch".to_string()),
            trace: false,
            checkpoint_dir: None,
            resume: false,
        }
    }

    /// The traditional baseline over the same site.
    pub fn traditional(n: usize) -> Self {
        Self {
            crawl: CrawlConfig::traditional(),
            ..Self::ajax(n)
        }
    }

    /// Enables result aggregation (stores DOMs and models).
    pub fn with_replay(mut self) -> Self {
        self.crawl.store_dom = true;
        self.keep_models = true;
        self
    }

    /// Injects deterministic faults into the precrawl and crawl phases.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets the page-level quarantine threshold.
    pub fn with_quarantine_after(mut self, attempts: u32) -> Self {
        self.quarantine_after = attempts.max(1);
        self
    }

    /// Sets the precrawl link-path filter (`None` follows every link).
    pub fn with_path_filter(mut self, filter: Option<String>) -> Self {
        self.path_filter = filter;
        self
    }

    /// Enables span tracing for the build pipeline.
    pub fn with_tracing(mut self, trace: bool) -> Self {
        self.trace = trace;
        self
    }

    /// Journals crawl checkpoints under `dir` every
    /// `crawl.checkpoint_every` pages.
    pub fn with_checkpoint_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Resumes from the journal in `checkpoint_dir` (no-op without one).
    pub fn with_resume(mut self, resume: bool) -> Self {
        self.resume = resume;
        self
    }

    /// The fingerprint guarding a checkpoint journal against being resumed
    /// under a different pipeline configuration.
    fn checkpoint_fingerprint(&self, start: &Url) -> u64 {
        checkpoint::config_fingerprint(
            &self.crawl,
            &[
                &start.to_string(),
                &self.precrawl_pages.to_string(),
                &self.partition_size.to_string(),
                self.path_filter.as_deref().unwrap_or(""),
            ],
        )
    }
}

/// The assembled engine.
pub struct AjaxSearchEngine {
    /// Hyperlink graph + PageRank from the precrawl phase.
    pub graph: LinkGraph,
    /// The sharded index + broker.
    pub broker: QueryBroker,
    /// Crawled models (present when `keep_models`).
    pub models: Vec<AppModel>,
    /// Pipeline accounting.
    pub report: BuildReport,
    /// Spans from every phase on one virtual timeline (empty unless
    /// [`EngineConfig::trace`]): `precrawl.page` on track 0, crawl spans on
    /// their process-line tracks offset by the precrawl duration, and
    /// modeled `index.invert` spans after the crawl makespan.
    pub spans: Vec<SpanEvent>,
    weights: RankWeights,
}

impl AjaxSearchEngine {
    /// Runs the full pipeline against `server`, starting the precrawl from
    /// `start`. Panics on checkpoint I/O problems — use
    /// [`Self::build_with_checkpoints`] when a checkpoint directory is
    /// configured.
    pub fn build(server: Arc<dyn Server>, start: &Url, config: EngineConfig) -> Self {
        Self::build_with_checkpoints(server, start, config).expect("checkpoint journal")
    }

    /// Runs the full pipeline, journaling (and optionally resuming from)
    /// crash-safe checkpoints when [`EngineConfig::checkpoint_dir`] is set.
    /// Without a checkpoint directory this never fails.
    pub fn build_with_checkpoints(
        server: Arc<dyn Server>,
        start: &Url,
        config: EngineConfig,
    ) -> Result<Self, CheckpointError> {
        let wall_start = std::time::Instant::now();

        // Phase 0: open (or resume) the checkpoint journal.
        let mut restored_graph: Option<LinkGraph> = None;
        let mut restored_pages = std::collections::HashMap::new();
        let checkpointer: Option<Arc<Checkpointer>> = match &config.checkpoint_dir {
            None => None,
            Some(dir) => {
                let fingerprint = config.checkpoint_fingerprint(start);
                let every = config.crawl.checkpoint_every;
                let ckpt = if config.resume {
                    let (ckpt, state): (Checkpointer, ResumeState) =
                        Checkpointer::resume(dir, every, fingerprint)?;
                    restored_graph = state.graph;
                    restored_pages = state.pages;
                    ckpt
                } else {
                    Checkpointer::fresh(dir, every, fingerprint)?
                };
                Some(Arc::new(ckpt))
            }
        };

        // Phase 1: precrawl — skipped entirely when the journal already
        // holds the link graph (it is immutable once computed).
        let mut spans;
        let graph = match restored_graph {
            Some(graph) => {
                spans = Vec::new();
                graph
            }
            None => {
                let mut precrawler = Precrawler::new(Arc::clone(&server), config.latency.clone())
                    .with_retry(config.crawl.retry);
                precrawler.path_filter = config.path_filter.clone();
                if let Some(plan) = &config.fault_plan {
                    precrawler = precrawler.with_fault_plan(plan.clone());
                }
                if config.trace {
                    precrawler = precrawler.with_recorder(Recorder::enabled());
                }
                let graph = precrawler.run(start, config.precrawl_pages);
                // Precrawl spans sit at the head of the timeline on track 0.
                spans = precrawler.take_spans();
                if let Some(ckpt) = &checkpointer {
                    ckpt.record_graph(&graph);
                }
                graph
            }
        };

        // Phase 2: partition.
        let partitions = partition_urls(&graph.urls, config.partition_size);

        // Phase 3: parallel crawl.
        let mut mp = MpCrawler::new(
            Arc::clone(&server),
            config.latency.clone(),
            config.crawl.clone(),
        )
        .with_proc_lines(config.proc_lines)
        .with_cores(config.cores)
        .with_quarantine_after(config.quarantine_after)
        .with_tracing(config.trace);
        if let Some(plan) = &config.fault_plan {
            mp = mp.with_fault_plan(plan.clone());
        }
        if let Some(ckpt) = &checkpointer {
            mp = mp.with_checkpointing(Arc::clone(ckpt), restored_pages);
        }
        let mut crawl_report = mp.crawl(&partitions);
        // The crawl phase starts once the precrawl finishes: shift its spans
        // (already on per-line tracks) past the precrawl's virtual duration.
        for mut span in crawl_report.spans.drain(..) {
            span.start += graph.precrawl_micros;
            spans.push(span);
        }

        // Phase 4: one index per partition, each built as per-core sorted
        // segments merged into the canonical columnar layout (the merge is
        // order-insensitive, so parallelism cannot perturb the result).
        // Indexing has no virtual cost model of its own, so its spans are
        // *modeled*: sequential after the crawl makespan, charged per
        // indexed state.
        const INDEX_STATE_MICROS: ajax_net::Micros = 50;
        let mut index_cursor = graph.precrawl_micros + crawl_report.virtual_makespan;
        let mut shards = Vec::with_capacity(crawl_report.partitions.len());
        let mut kept_models = Vec::new();
        for partition in &crawl_report.partitions {
            let model_refs: Vec<(&AppModel, Option<f64>)> = partition
                .models
                .iter()
                .map(|model| (model, graph.pagerank.get(&model.url).copied()))
                .collect();
            let shard =
                build_index_parallel(&model_refs, config.max_index_states, config.cores.max(1));
            if config.trace {
                let cost = shard.total_states * INDEX_STATE_MICROS;
                spans.push(SpanEvent {
                    name: "index.invert",
                    track: 0,
                    start: index_cursor,
                    dur: cost,
                    args: vec![
                        ("partition", AttrValue::U64(partition.id as u64)),
                        ("states", AttrValue::U64(shard.total_states)),
                    ],
                });
                index_cursor += cost;
            }
            shards.push(shard);
            if config.keep_models {
                kept_models.extend(partition.models.iter().cloned());
            }
        }
        let mut broker = QueryBroker::new(shards);
        broker.weights = config.weights;

        let mut report = BuildReport::new(&graph, &crawl_report, &broker);
        if let Some(ckpt) = &checkpointer {
            // The final snapshot makes the journal cover the whole crawl;
            // any write error deferred during the crawl surfaces here.
            report.checkpoint = ckpt.flush()?;
            if config.trace {
                // Checkpoint writes happen on the wall clock, but the
                // exported trace is a virtual-time record that must stay
                // byte-identical across same-seed runs — so each write
                // becomes an instant marker sequenced after the crawl
                // (its args — seq, pages, bytes — are deterministic); the
                // wall cost lives in `report.checkpoint.write_wall_micros`.
                let t_base = spans.iter().map(|s| s.start + s.dur).max().unwrap_or(0);
                spans.extend(
                    ckpt.take_spans()
                        .into_iter()
                        .enumerate()
                        .map(|(i, mut span)| {
                            span.start = t_base + i as u64;
                            span.dur = 0;
                            span
                        }),
                );
            }
        }
        report.build_wall_micros = wall_start.elapsed().as_micros() as u64;
        Ok(Self {
            graph,
            broker,
            models: kept_models,
            report,
            spans,
            weights: config.weights,
        })
    }

    /// Phase 5: distributed query processing.
    pub fn search(&self, query_text: &str) -> Vec<BrokerResult> {
        self.broker.search(&Query::parse(query_text))
    }

    /// Turns the built engine into a long-lived concurrent query server:
    /// the broker's shards move onto `ajax-serve` worker pools (one pool per
    /// shard), gaining a result cache, admission control, and metrics.
    /// The link graph, models, and build report are dropped — serve from a
    /// separate engine instance if reconstruction is also needed.
    pub fn into_server(self, config: ServeConfig) -> ShardServer {
        ShardServer::new(self.broker, config)
    }

    /// The ranking weights in effect.
    pub fn weights(&self) -> RankWeights {
        self.weights
    }

    /// Phase 6: result aggregation — reconstructs the DOM of a search
    /// result's state by replaying its event path (requires
    /// [`EngineConfig::with_replay`]).
    pub fn reconstruct(&self, result: &BrokerResult) -> Result<Document, ReplayError> {
        let model = self
            .models
            .iter()
            .find(|m| m.url == result.url)
            .ok_or(ReplayError::NoPageHtml)?;
        reconstruct_state(model, result.doc.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_webgen::{VidShareServer, VidShareSpec};

    fn vidshare(n: u32) -> (Arc<VidShareServer>, Url) {
        let spec = VidShareSpec::small(n);
        let url = Url::parse(&spec.watch_url(0));
        (Arc::new(VidShareServer::new(spec)), url)
    }

    #[test]
    fn end_to_end_showcase_queries() {
        let (server, start) = vidshare(30);
        let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(30));

        // Q1: title search works.
        let q1 = engine.search("morcheeba enjoy the ride");
        assert!(!q1.is_empty(), "Q1 must find the showcase video");
        // The showcase video itself must be among the hits (pages linking to
        // it also match through their related-video anchor text — just like
        // real link text on YouTube).
        assert!(q1.iter().any(|r| r.url.ends_with("watch?v=0")));

        // Q2: needs AJAX content (page 2 comment).
        let q2 = engine.search("morcheeba mysterious video");
        assert!(!q2.is_empty(), "Q2 must be answerable with AJAX search");
        assert!(q2[0].doc.state.0 > 0, "hit must be a non-initial state");

        // Q3: band name (title, every state) + singer (page-2 comment).
        let q3 = engine.search("morcheeba singer");
        assert!(!q3.is_empty());
    }

    #[test]
    fn traditional_engine_misses_ajax_content() {
        let (server, start) = vidshare(30);
        let trad = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::traditional(30),
        );
        assert!(
            trad.search("morcheeba mysterious video").is_empty(),
            "traditional crawl must not see page-2 comments"
        );
        assert!(!trad.search("morcheeba enjoy the ride").is_empty());
    }

    #[test]
    fn ajax_returns_superset_of_traditional() {
        let (server, start) = vidshare(25);
        let ajax = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(25),
        );
        let trad = AjaxSearchEngine::build(server, &start, EngineConfig::traditional(25));
        for q in ["wow", "dance", "funny"] {
            let ajax_n = ajax.search(q).len();
            let trad_n = trad.search(q).len();
            assert!(
                ajax_n >= trad_n,
                "query {q:?}: AJAX {ajax_n} < traditional {trad_n}"
            );
        }
        // Overall the AJAX index must be strictly bigger.
        assert!(ajax.broker.total_states() > trad.broker.total_states());
    }

    #[test]
    fn reconstruction_of_search_hit() {
        let (server, start) = vidshare(15);
        let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(15).with_replay());
        let hits = engine.search("morcheeba mysterious video");
        assert!(!hits.is_empty());
        let doc = engine.reconstruct(&hits[0]).expect("replay");
        let text = doc.document_text();
        assert!(text.contains("mysterious"));
        assert!(
            text.contains("Morcheeba Enjoy the Ride"),
            "title visible in state"
        );
    }

    #[test]
    fn into_server_preserves_results() {
        let (server, start) = vidshare(25);
        let engine = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(25),
        );
        let reference: Vec<_> = ["wow", "dance", "morcheeba mysterious video"]
            .iter()
            .map(|q| engine.search(q))
            .collect();
        let shards = engine.broker.shard_count();
        let serve = engine.into_server(ServeConfig::default().with_workers_per_shard(2));
        assert_eq!(serve.shard_count(), shards);
        assert_eq!(serve.worker_count(), shards * 2);
        for (q, expected) in ["wow", "dance", "morcheeba mysterious video"]
            .iter()
            .zip(reference)
        {
            let got = serve.search(q).expect("admitted");
            assert!(!got.degraded);
            assert_eq!(got.results.len(), expected.len(), "query {q:?}");
            for (e, g) in expected.iter().zip(got.results.iter()) {
                assert_eq!(e.url, g.url);
                assert_eq!(e.score.to_bits(), g.score.to_bits(), "query {q:?}");
            }
        }
        assert_eq!(serve.metrics_snapshot().completed, 3);
    }

    #[test]
    fn report_is_coherent() {
        let (server, start) = vidshare(20);
        let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(20));
        let r = &engine.report;
        assert_eq!(r.pages_crawled, 20);
        assert!(r.total_states >= r.pages_crawled as u64);
        assert!(r.virtual_makespan > 0);
        assert!(r.virtual_makespan <= r.virtual_serial);
        assert_eq!(engine.broker.total_states(), r.total_states);
    }

    #[test]
    fn faulty_build_loses_no_pages_and_reports_recoveries() {
        let (server, start) = vidshare(20);
        let clean = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(20),
        );
        let faulty = AjaxSearchEngine::build(
            server,
            &start,
            EngineConfig::ajax(20).with_fault_plan(FaultPlan::transient_mix(11, 0.3)),
        );
        let r = &faulty.report;
        assert_eq!(r.pages_crawled, clean.report.pages_crawled);
        assert!(
            r.failures.is_empty(),
            "retries must absorb transient faults"
        );
        assert!(r.crawl.fetch_retries > 0, "30% faults must cost retries");
        assert_eq!(r.total_states, clean.report.total_states);
        // Same content reachable despite the faults.
        assert_eq!(
            faulty.search("morcheeba mysterious video").len(),
            clean.search("morcheeba mysterious video").len()
        );
    }

    #[test]
    fn traced_build_covers_all_phases_deterministically() {
        let (server, start) = vidshare(16);
        let build = || {
            AjaxSearchEngine::build(
                Arc::clone(&server) as Arc<dyn Server>,
                &start,
                EngineConfig::ajax(16).with_tracing(true),
            )
        };
        let a = build();
        let b = build();
        assert!(!a.spans.is_empty());
        assert_eq!(a.spans, b.spans, "same-seed builds must trace identically");
        let kinds: std::collections::BTreeSet<&str> = a.spans.iter().map(|s| s.name).collect();
        for kind in ["precrawl.page", "crawl.page", "crawl.event", "index.invert"] {
            assert!(kinds.contains(kind), "missing span kind {kind}");
        }
        // Phases sit in order on the virtual timeline.
        let phase_end = |name: &str| {
            a.spans
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.start + s.dur)
                .max()
                .unwrap()
        };
        let phase_start = |name: &str| {
            a.spans
                .iter()
                .filter(|s| s.name == name)
                .map(|s| s.start)
                .min()
                .unwrap()
        };
        assert!(phase_start("crawl.page") >= phase_end("precrawl.page"));
        assert!(phase_start("index.invert") >= a.graph.precrawl_micros + a.report.virtual_makespan);
        // Wall time is measured, and is a separate axis from virtual time.
        assert!(a.report.build_wall_micros > 0);

        let untraced = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(16),
        );
        assert!(untraced.spans.is_empty());
    }

    #[test]
    fn checkpointed_build_writes_journal_and_resumes_identically() {
        let (server, start) = vidshare(20);
        let mut dir = std::env::temp_dir();
        dir.push(format!("ajax_engine_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let plain = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(20),
        );
        let first = AjaxSearchEngine::build_with_checkpoints(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(20).with_checkpoint_dir(&dir),
        )
        .expect("fresh checkpointed build");
        assert!(first.report.checkpoint.writes > 0, "journal written");
        assert!(!first.report.checkpoint.resumed);
        assert_eq!(first.report.pages_crawled, plain.report.pages_crawled);

        // A "crashed-after-finishing" resume: every page restores, the
        // precrawl is skipped, and the index is reproduced exactly.
        let resumed = AjaxSearchEngine::build_with_checkpoints(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(20)
                .with_checkpoint_dir(&dir)
                .with_resume(true),
        )
        .expect("resumed build");
        assert!(resumed.report.checkpoint.resumed);
        assert_eq!(
            resumed.report.checkpoint.pages_restored as usize,
            plain.report.pages_crawled
        );
        assert_eq!(resumed.report.pages_crawled, plain.report.pages_crawled);
        assert_eq!(resumed.report.total_states, plain.report.total_states);
        assert_eq!(resumed.graph.pagerank, plain.graph.pagerank);
        for q in ["wow", "morcheeba mysterious video"] {
            let a = resumed.search(q);
            let b = plain.search(q);
            assert_eq!(a.len(), b.len(), "query {q:?}");
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.url, y.url);
                assert_eq!(x.score.to_bits(), y.score.to_bits());
            }
        }

        // Resuming under a different configuration must be refused.
        let err = AjaxSearchEngine::build_with_checkpoints(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(19)
                .with_checkpoint_dir(&dir)
                .with_resume(true),
        );
        assert!(
            matches!(err, Err(CheckpointError::ConfigMismatch { .. })),
            "config drift must be refused"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn max_index_states_caps_recall() {
        let (server, start) = vidshare(25);
        let full = AjaxSearchEngine::build(
            Arc::clone(&server) as Arc<dyn Server>,
            &start,
            EngineConfig::ajax(25),
        );
        let capped = AjaxSearchEngine::build(
            server,
            &start,
            EngineConfig {
                max_index_states: Some(1),
                ..EngineConfig::ajax(25)
            },
        );
        assert!(capped.broker.total_states() < full.broker.total_states());
        assert!(capped.search("wow").len() <= full.search("wow").len());
    }
}
