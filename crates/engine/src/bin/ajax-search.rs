//! `ajax-search` — the command-line counterpart of the thesis' setup
//! application (ch. 8): build an index over a synthetic site, save/load it,
//! and process queries.
//!
//! ```sh
//! # Build an AJAX index over 200 VidShare videos and save it:
//! ajax-search build --videos 200 --out /tmp/ajax.idx
//!
//! # Build the traditional baseline instead:
//! ajax-search build --videos 200 --traditional --out /tmp/trad.idx
//!
//! # Build under 10% injected transient faults and dump the JSON report:
//! ajax-search build --videos 200 --fault-plan "seed=7,transient=0.1" \
//!     --retries 4 --quarantine-after 3 --report-json /tmp/report.json \
//!     --out /tmp/ajax.idx
//!
//! # Query a saved index:
//! ajax-search query --index /tmp/ajax.idx "morcheeba mysterious video"
//!
//! # One-shot demo (build in memory, run sample queries):
//! ajax-search demo
//!
//! # Build in memory and serve queries concurrently (stdin or a workload
//! # file, one query per line); prints a metrics snapshot at EOF:
//! ajax-search serve --videos 60 --workers 2 --workload queries.txt
//!
//! # Distributed serving: fork 2 shard processes, run the Table 7.4 query
//! # workload through the coordinator, and verify every response is
//! # bit-identical to single-process evaluation:
//! ajax-search serve --videos 40 --distributed 2 --table74 --verify-single
//! ```

use ajax_crawl::crawler::RetryPolicy;
use ajax_dist::{partition_models, ClusterConfig, DistCluster};
use ajax_engine::{analyze_site, AjaxSearchEngine, BuildReport, EngineConfig};
use ajax_index::invert::IndexBuilder;
use ajax_index::persist::{load_index, save_index};
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::BrokerResult;
use ajax_net::{FaultPlan, Server, Url};
use ajax_obs::{chrome_trace_json_named, ProfileRollup};
use ajax_serve::ServeConfig;
use ajax_webgen::{
    query_workload, GalleryServer, GallerySpec, NewsShareServer, NewsSpec, VidShareServer,
    VidShareSpec,
};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("demo") => cmd_demo(),
        Some("serve") => cmd_serve(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("fsck") => cmd_fsck(&args[1..]),
        _ => {
            eprintln!(
                "usage: ajax-search build --videos N [--site vidshare|news|gallery] [--traditional]\n\
                 \u{20}                  [--max-states N] [--fault-plan SPEC] [--retries N]\n\
                 \u{20}                  [--quarantine-after K] [--report-json FILE]\n\
                 \u{20}                  [--no-static-prune] [--verify-prune]\n\
                 \u{20}                  [--equiv-prune] [--verify-equiv]\n\
                 \u{20}                  [--checkpoint-dir DIR] [--resume] [--checkpoint-every N]\n\
                 \u{20}                  [--trace-out FILE] [--profile] --out FILE\n\
                 \u{20}      ajax-search query --index FILE \"query terms\"\n\
                 \u{20}      ajax-search demo\n\
                 \u{20}      ajax-search serve [--videos N] [--workers W] [--cache N] \
                 [--max-in-flight N] [--deadline-ms N] [--workload FILE]\n\
                 \u{20}                  [--distributed N] [--port BASE] [--hedge-ms N]\n\
                 \u{20}                  [--table74] [--verify-single]\n\
                 \u{20}      ajax-search shard --index FILE [--shard-id I] [--port N]\n\
                 \u{20}      ajax-search analyze [--videos N] [--site vidshare|news|gallery]\n\
                 \u{20}                  [--json] [--effects]\n\
                 \u{20}      ajax-search fsck FILE|DIR"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Fetches the value following `--flag`.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

/// Applies the shared resilience flags (`--fault-plan`, `--retries`,
/// `--quarantine-after`) to an engine configuration.
fn apply_resilience_flags(args: &[String], config: &mut EngineConfig) -> Result<(), String> {
    if let Some(spec) = flag_value(args, "--fault-plan") {
        config.fault_plan =
            Some(FaultPlan::from_spec(spec).map_err(|e| format!("--fault-plan: {e}"))?);
    }
    if let Some(n) = flag_value(args, "--retries") {
        let n: u32 = n
            .parse()
            .map_err(|_| "--retries must be a number".to_string())?;
        config.crawl.retry = RetryPolicy::default().with_max_attempts(n.max(1));
    }
    if let Some(k) = flag_value(args, "--quarantine-after") {
        let k: u32 = k
            .parse()
            .map_err(|_| "--quarantine-after must be a number".to_string())?;
        config.quarantine_after = k.max(1);
    }
    Ok(())
}

/// Prints what the crawl survived: retries, recoveries, partial states,
/// and every page it ultimately gave up on.
fn print_resilience(report: &BuildReport) {
    if report.crawl.fetch_retries > 0 || report.page_retries > 0 || report.pages_failed > 0 {
        eprintln!(
            "resilience: {} fetch retries, {} page re-crawls, {} pages recovered, \
             {} partial states, {} failed XHR",
            report.crawl.fetch_retries,
            report.page_retries,
            report.pages_recovered,
            report.crawl.partial_states,
            report.crawl.failed_xhr,
        );
    }
    if !report.failures.is_empty() {
        eprintln!(
            "gave up on {} pages ({} quarantined):",
            report.pages_failed, report.pages_quarantined
        );
        for f in &report.failures {
            eprintln!(
                "  [partition {}] {} — {} after {} attempts{}",
                f.partition,
                f.url,
                f.error,
                f.attempts,
                if f.quarantined { " (quarantined)" } else { "" }
            );
        }
    }
}

/// Writes the build report as pretty JSON when `--report-json` is given.
fn write_report_json(args: &[String], report: &BuildReport) -> Result<(), String> {
    if let Some(path) = flag_value(args, "--report-json") {
        let json = serde_json::to_string_pretty(report).map_err(|e| e.to_string())?;
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!("wrote build report to {path}");
    }
    Ok(())
}

/// Writes the Chrome trace (`--trace-out`) and prints the per-phase profile
/// rollup (`--profile`) from a traced build.
fn write_trace(
    trace_out: Option<&str>,
    profile: bool,
    engine: &AjaxSearchEngine,
) -> Result<(), String> {
    if let Some(path) = trace_out {
        let tracks: std::collections::BTreeSet<u32> =
            engine.spans.iter().map(|s| s.track).collect();
        let names: Vec<(u32, String)> = tracks
            .into_iter()
            .map(|t| {
                let name = if t == 0 {
                    "line 0 (precrawl, index)".to_string()
                } else {
                    format!("line {t}")
                };
                (t, name)
            })
            .collect();
        let named: Vec<(u32, &str)> = names.iter().map(|(t, n)| (*t, n.as_str())).collect();
        let json = chrome_trace_json_named(&engine.spans, &named);
        std::fs::write(path, json).map_err(|e| format!("write {path}: {e}"))?;
        eprintln!(
            "wrote {} spans to {path} (open in chrome://tracing or Perfetto)",
            engine.spans.len()
        );
    }
    if profile {
        eprintln!("{}", ProfileRollup::from_events(&engine.spans).render());
    }
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let videos: u32 = flag_value(args, "--videos")
        .unwrap_or("100")
        .parse()
        .map_err(|_| "--videos must be a number".to_string())?;
    let out = flag_value(args, "--out").ok_or("--out FILE is required")?;
    let traditional = has_flag(args, "--traditional");
    let site = flag_value(args, "--site").unwrap_or("vidshare");
    let trace_out = flag_value(args, "--trace-out");
    let profile = has_flag(args, "--profile");
    let max_states: Option<usize> = flag_value(args, "--max-states")
        .map(|v| {
            v.parse()
                .map_err(|_| "--max-states must be a number".to_string())
        })
        .transpose()?;

    // `--videos N` doubles as the page count for `--site news`.
    let (server, start, path_filter): (Arc<dyn Server>, Url, &str) = match site {
        "vidshare" => {
            let spec = VidShareSpec::small(videos);
            let start = Url::parse(&spec.watch_url(0));
            (Arc::new(VidShareServer::new(spec)), start, "/watch")
        }
        "news" => {
            let spec = NewsSpec::small(videos);
            let start = Url::parse(&spec.page_url(0));
            (Arc::new(NewsShareServer::new(spec)), start, "/news")
        }
        "gallery" => {
            let spec = GallerySpec::small(videos);
            let start = Url::parse(&spec.page_url(0));
            (Arc::new(GalleryServer::new(spec)), start, "/album")
        }
        other => {
            return Err(format!(
                "--site must be vidshare, news or gallery, got {other:?}"
            ))
        }
    };
    let mut config = if traditional {
        EngineConfig::traditional(videos as usize)
    } else {
        EngineConfig::ajax(videos as usize)
    };
    config.max_index_states = max_states;
    config.keep_models = true;
    config.path_filter = Some(path_filter.to_string());
    config.trace = trace_out.is_some() || profile;
    apply_resilience_flags(args, &mut config)?;
    if let Some(dir) = flag_value(args, "--checkpoint-dir") {
        config = config
            .with_checkpoint_dir(dir)
            .with_resume(has_flag(args, "--resume"));
    } else if has_flag(args, "--resume") {
        return Err("--resume requires --checkpoint-dir DIR".to_string());
    }
    if let Some(n) = flag_value(args, "--checkpoint-every") {
        let n: usize = n
            .parse()
            .map_err(|_| "--checkpoint-every must be a number".to_string())?;
        config.crawl = config.crawl.with_checkpoint_every(n);
    }
    if has_flag(args, "--no-static-prune") {
        config.crawl = config.crawl.without_static_prune();
    }
    let verify_prune = has_flag(args, "--verify-prune");
    if verify_prune {
        config.crawl = config.crawl.verifying_prune();
    }
    if has_flag(args, "--equiv-prune") {
        config.crawl = config.crawl.with_equiv_prune();
    }
    let verify_equiv = has_flag(args, "--verify-equiv");
    if verify_equiv {
        config.crawl = config.crawl.verifying_equiv();
    }

    eprintln!(
        "building {} index over {videos} {site} pages…",
        if traditional { "traditional" } else { "AJAX" }
    );
    let mut engine =
        AjaxSearchEngine::build_with_checkpoints(server, &start, config).map_err(|e| {
            format!("{e} (pass a fresh --checkpoint-dir, or drop --resume to start over)")
        })?;
    let r = &engine.report;
    // Two time axes, labeled: virtual_ms is simulated network/CPU time,
    // wall_ms is how long the build really took on this machine.
    eprintln!(
        "crawled {} pages / {} states; {} AJAX calls ({} cached); \
         virtual_ms {:.1} (simulated), wall_ms {:.1} (host); \
         index {:.1} KiB over {} shards",
        r.pages_crawled,
        r.total_states,
        r.crawl.ajax_network_calls,
        r.crawl.cache_hits,
        r.virtual_makespan as f64 / 1e3,
        r.build_wall_micros as f64 / 1e3,
        r.index_bytes as f64 / 1024.0,
        r.shards,
    );
    if r.crawl.pruned_events > 0 || r.crawl.script_errors > 0 {
        eprintln!(
            "static analysis: {} events pruned, {} script errors{}",
            r.crawl.pruned_events,
            r.crawl.script_errors,
            if verify_prune {
                format!(", {} verify mismatches", r.crawl.prune_mismatches)
            } else {
                String::new()
            },
        );
    }
    if verify_prune && r.crawl.prune_mismatches > 0 {
        return Err(format!(
            "--verify-prune found {} soundness mismatches: statically-pruned \
             events changed application state",
            r.crawl.prune_mismatches
        ));
    }
    if r.crawl.equiv_pruned_events > 0 || r.crawl.commute_pruned_events > 0 {
        eprintln!(
            "equivalence pruning: {} events claimed by class verdicts, {} by \
             commutativity{}",
            r.crawl.equiv_pruned_events,
            r.crawl.commute_pruned_events,
            if verify_equiv {
                format!(", {} verify mismatches", r.crawl.equiv_mismatches)
            } else {
                String::new()
            },
        );
    }
    if verify_equiv && r.crawl.equiv_mismatches > 0 {
        return Err(format!(
            "--verify-equiv found {} mismatches: events claimed barren by \
             equivalence/commutativity actually changed application state",
            r.crawl.equiv_mismatches
        ));
    }
    if r.checkpoint.writes > 0 || r.checkpoint.resumed {
        eprintln!(
            "checkpoints: {} snapshots ({:.1} ms wall){}",
            r.checkpoint.writes,
            r.checkpoint.write_wall_micros as f64 / 1e3,
            if r.checkpoint.resumed {
                format!(
                    ", resumed with {} pages restored",
                    r.checkpoint.pages_restored
                )
            } else {
                String::new()
            },
        );
    }
    print_resilience(r);
    write_report_json(args, r)?;

    // Persist as a single merged index (simplest portable artifact).
    let mut builder = IndexBuilder::new();
    if let Some(max) = max_states {
        builder = builder.with_max_states(max);
    }
    for model in &engine.models {
        let pagerank = engine.graph.pagerank.get(&model.url).copied();
        builder.add_model(model, pagerank);
    }
    let index = builder.build();
    let t_save = std::time::Instant::now();
    save_index(out, &index).map_err(|e| e.to_string())?;
    let save_wall = t_save.elapsed();
    if trace_out.is_some() || profile {
        // The atomic commit runs on the wall clock, but the exported trace
        // is a virtual-time record that must be byte-identical across
        // same-seed runs — so the span is an instant marker after
        // everything on the timeline (deterministic args only); the wall
        // cost is printed on the `saved …` line below instead.
        let t_base = engine
            .spans
            .iter()
            .map(|s| s.start + s.dur)
            .max()
            .unwrap_or(0);
        engine.spans.push(ajax_obs::SpanEvent {
            name: "persist.commit",
            track: 0,
            start: t_base,
            dur: 0,
            args: vec![
                (
                    "bytes",
                    ajax_obs::AttrValue::U64(index.approx_bytes() as u64),
                ),
                ("states", ajax_obs::AttrValue::U64(index.total_states)),
            ],
        });
    }
    write_trace(trace_out, profile, &engine)?;
    let on_disk = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    eprintln!(
        "saved {} terms / {} states ({:.1} KiB resident, {:.1} KiB on disk as a v4 segment) \
         to {out} (commit {:.1} ms wall)",
        index.term_count(),
        index.total_states,
        index.approx_bytes() as f64 / 1024.0,
        on_disk as f64 / 1024.0,
        save_wall.as_micros() as f64 / 1e3,
    );
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let path = flag_value(args, "--index").ok_or("--index FILE is required")?;
    let text = args
        .iter()
        .skip_while(|a| *a != "--index")
        .nth(2)
        .or_else(|| args.last().filter(|a| !a.starts_with("--")))
        .ok_or("missing query text")?;

    let index = load_index(path).map_err(|e| e.to_string())?;
    let query = Query::parse(text);
    let t0 = std::time::Instant::now();
    let results = search(&index, &query, &RankWeights::default());
    let elapsed = t0.elapsed();

    // Query evaluation happens on the host, so this is *wall* time — unlike
    // the build phase's virtual_ms, which comes from the simulated clock.
    println!(
        "{} results for {text:?} in wall_ms {:.3}",
        results.len(),
        elapsed.as_secs_f64() * 1e3
    );
    for (rank, r) in results.iter().take(10).enumerate() {
        println!(
            "{:>3}. {:.4}  {}  state {}",
            rank + 1,
            r.score,
            r.url,
            r.doc.state
        );
    }
    Ok(())
}

/// Builds an in-memory index and serves queries through `ajax-serve`:
/// one line per query from `--workload FILE` or stdin, top-3 results each,
/// and a JSON metrics snapshot once the input is exhausted.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    use std::io::BufRead;

    let videos: u32 = flag_value(args, "--videos")
        .unwrap_or("60")
        .parse()
        .map_err(|_| "--videos must be a number".to_string())?;
    let workers: usize = flag_value(args, "--workers")
        .unwrap_or("2")
        .parse()
        .map_err(|_| "--workers must be a number".to_string())?;
    let cache: usize = flag_value(args, "--cache")
        .unwrap_or("256")
        .parse()
        .map_err(|_| "--cache must be a number".to_string())?;
    let max_in_flight: usize = flag_value(args, "--max-in-flight")
        .unwrap_or("64")
        .parse()
        .map_err(|_| "--max-in-flight must be a number".to_string())?;
    let deadline_ms: Option<u64> = flag_value(args, "--deadline-ms")
        .map(|v| {
            v.parse()
                .map_err(|_| "--deadline-ms must be a number".to_string())
        })
        .transpose()?;

    let distributed: Option<usize> = flag_value(args, "--distributed")
        .map(|v| {
            v.parse()
                .map_err(|_| "--distributed must be a number".to_string())
        })
        .transpose()?;
    if distributed == Some(0) {
        return Err("--distributed needs at least 1 shard".to_string());
    }

    let spec = VidShareSpec::small(videos);
    let start = Url::parse(&spec.watch_url(0));
    let site = Arc::new(VidShareServer::new(spec));
    eprintln!("building AJAX index over {videos} videos…");
    let mut engine_config = EngineConfig::ajax(videos as usize);
    // Distributed mode re-partitions the crawled models itself, so keep them.
    engine_config.keep_models = distributed.is_some();
    let engine = AjaxSearchEngine::build(site, &start, engine_config);

    let serve_config = ServeConfig::default()
        .with_workers_per_shard(workers)
        .with_cache_capacity(cache)
        .with_max_in_flight(max_in_flight)
        .with_deadline_micros(deadline_ms.map(|ms| ms * 1_000));

    if let Some(shards) = distributed {
        return serve_distributed(args, engine, shards, serve_config);
    }

    eprintln!(
        "serving {} states over {} shards ({} workers, cache {cache}, max in-flight {max_in_flight})",
        engine.report.total_states, engine.report.shards, engine.report.shards * workers,
    );
    let server = engine.into_server(serve_config);

    let input: Box<dyn BufRead> = match flag_value(args, "--workload") {
        Some(path) => Box::new(std::io::BufReader::new(
            std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?,
        )),
        None => Box::new(std::io::BufReader::new(std::io::stdin())),
    };
    for line in input.lines() {
        let line = line.map_err(|e| e.to_string())?;
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        print_response(&server, text, None)?;
    }

    println!("{}", server.metrics_json());
    Ok(())
}

/// Runs one query through `server`, printing the top-3; when `single` is
/// given (a retained in-process engine), additionally verifies the response
/// is bit-identical to single-process evaluation.
fn print_response(
    server: &ajax_serve::ShardServer,
    text: &str,
    single: Option<&AjaxSearchEngine>,
) -> Result<(), String> {
    match server.search(text) {
        Ok(resp) => {
            let tag = if resp.from_cache {
                " [cached]"
            } else if resp.degraded {
                " [degraded]"
            } else {
                ""
            };
            println!(
                "{} results for {text:?} in {:.3} ms{tag}",
                resp.results.len(),
                resp.latency_micros as f64 / 1e3
            );
            for (rank, r) in resp.results.iter().take(3).enumerate() {
                println!(
                    "{:>3}. {:.4}  {}  state {}",
                    rank + 1,
                    r.score,
                    r.url,
                    r.doc.state
                );
            }
            if let Some(engine) = single {
                let reference = engine.search(text);
                if let Some(diff) = diff_results(&resp.results, &reference) {
                    return Err(format!(
                        "--verify-single: {text:?} diverges from single-process \
                         evaluation: {diff}"
                    ));
                }
            }
        }
        Err(e) => println!("shed {text:?}: {e}"),
    }
    Ok(())
}

/// Compares a distributed response against single-process results:
/// bit-identical means same documents, same order, same score bits. The
/// `shard` field and `doc.page` (an index into the owning partition's page
/// table) are partition-relative provenance and legitimately differ between
/// partitionings; the partition-invariant document identity is
/// `(url, doc.state)`.
fn diff_results(got: &[BrokerResult], want: &[BrokerResult]) -> Option<String> {
    if got.len() != want.len() {
        return Some(format!("{} results vs {}", got.len(), want.len()));
    }
    for (i, (g, w)) in got.iter().zip(want.iter()).enumerate() {
        if g.url != w.url || g.doc.state != w.doc.state {
            return Some(format!(
                "rank {i}: {} state {} vs {} state {}",
                g.url, g.doc.state, w.url, w.doc.state
            ));
        }
        if g.score.to_bits() != w.score.to_bits() {
            return Some(format!(
                "rank {i}: score bits differ ({:.17e} vs {:.17e})",
                g.score, w.score
            ));
        }
    }
    None
}

/// The `serve --distributed N` path: re-partition the crawled models into
/// `shards` contiguous chunks, fork one `ajax-search shard` child per chunk,
/// and coordinate queries over TCP. The engine stays alive for
/// `--verify-single` comparisons.
fn serve_distributed(
    args: &[String],
    engine: AjaxSearchEngine,
    shards: usize,
    serve_config: ServeConfig,
) -> Result<(), String> {
    use std::io::BufRead;

    let base_port: Option<u16> = flag_value(args, "--port")
        .map(|v| {
            v.parse()
                .map_err(|_| "--port must be a port number".to_string())
        })
        .transpose()?;
    let hedge_after_micros: Option<u64> = flag_value(args, "--hedge-ms")
        .map(|v| {
            v.parse::<u64>()
                .map(|ms| ms * 1_000)
                .map_err(|_| "--hedge-ms must be a number".to_string())
        })
        .transpose()?;
    let verify_single = has_flag(args, "--verify-single");

    let partitions = partition_models(
        &engine.models,
        |url| engine.graph.pagerank.get(url).copied(),
        shards,
        None,
    );
    let exe = std::env::current_exe().map_err(|e| format!("locate own binary: {e}"))?;
    eprintln!(
        "forking {shards} shard processes ({} states total)…",
        engine.report.total_states
    );
    let mut cluster = DistCluster::launch_processes(
        &exe,
        partitions,
        engine.weights(),
        ClusterConfig {
            serve: serve_config,
            hedge_after_micros,
            chaos: None,
        },
        base_port,
    )
    .map_err(|e| e.to_string())?;
    eprintln!(
        "coordinator up: {} shards, {} states via transport",
        cluster.shard_count(),
        cluster.server.total_states(),
    );

    let single = verify_single.then_some(&engine);
    let mut queries = 0usize;
    if has_flag(args, "--table74") {
        // The thesis' Table 7.4 workload: 100 queries over the synthetic
        // sites' phrase pool.
        for spec in query_workload() {
            print_response(&cluster.server, &spec.text, single)?;
            queries += 1;
        }
    } else {
        let input: Box<dyn BufRead> = match flag_value(args, "--workload") {
            Some(path) => Box::new(std::io::BufReader::new(
                std::fs::File::open(path).map_err(|e| format!("open {path}: {e}"))?,
            )),
            None => Box::new(std::io::BufReader::new(std::io::stdin())),
        };
        for line in input.lines() {
            let line = line.map_err(|e| e.to_string())?;
            let text = line.trim();
            if text.is_empty() {
                continue;
            }
            print_response(&cluster.server, text, single)?;
            queries += 1;
        }
    }

    println!("{}", cluster.server.metrics_json());
    if verify_single {
        eprintln!("verified {queries} responses bit-identical to single-process serve");
    }
    cluster.shutdown();
    Ok(())
}

/// Process-mode shard server: load one index partition and answer queries
/// over the wire until killed. Prints `LISTENING <addr>` on stdout once
/// bound — the coordinator parses this to learn ephemeral ports.
fn cmd_shard(args: &[String]) -> Result<(), String> {
    use std::io::Write;

    let path = flag_value(args, "--index").ok_or("--index FILE is required")?;
    let shard_id: usize = flag_value(args, "--shard-id")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--shard-id must be a number".to_string())?;
    let port: u16 = flag_value(args, "--port")
        .unwrap_or("0")
        .parse()
        .map_err(|_| "--port must be a port number".to_string())?;

    let index = load_index(path).map_err(|e| e.to_string())?;
    let listener = ajax_dist::bind_shard("127.0.0.1", port).map_err(|e| e.to_string())?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("shard listener address: {e}"))?;
    println!("LISTENING {addr}");
    std::io::stdout()
        .flush()
        .map_err(|e| format!("flush banner: {e}"))?;
    eprintln!(
        "shard {shard_id}: {} states / {} terms on {addr}",
        index.total_states,
        index.term_count()
    );
    ajax_dist::serve_shard(listener, Arc::new(index), shard_id);
    Ok(())
}

/// Static analysis without a crawl: fetch every page's initial document,
/// run the effect/diagnostics pass, and print the findings. Exits nonzero
/// when any error-severity diagnostic fires (the CI analyze-smoke gate).
fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let videos: u32 = flag_value(args, "--videos")
        .unwrap_or("20")
        .parse()
        .map_err(|_| "--videos must be a number".to_string())?;
    let site = flag_value(args, "--site").unwrap_or("vidshare");
    let json = has_flag(args, "--json");
    let effects = has_flag(args, "--effects");

    let (server, urls): (Arc<dyn Server>, Vec<String>) = match site {
        "vidshare" => {
            let spec = VidShareSpec::small(videos);
            let urls = (0..videos).map(|v| spec.watch_url(v)).collect();
            (Arc::new(VidShareServer::new(spec)), urls)
        }
        "news" => {
            let spec = NewsSpec::small(videos);
            let urls = (0..videos).map(|p| spec.page_url(p)).collect();
            (Arc::new(NewsShareServer::new(spec)), urls)
        }
        "gallery" => {
            let spec = GallerySpec::small(videos);
            let urls = (0..videos).map(|a| spec.page_url(a)).collect();
            (Arc::new(GalleryServer::new(spec)), urls)
        }
        other => {
            return Err(format!(
                "--site must be vidshare, news or gallery, got {other:?}"
            ))
        }
    };

    let analysis = analyze_site(server.as_ref(), &urls);
    if json {
        println!(
            "{}",
            serde_json::to_string_pretty(&analysis).map_err(|e| e.to_string())?
        );
    } else {
        for page in &analysis.pages {
            println!(
                "{}: {} functions, {} bindings ({} prunable), {} script errors",
                page.url, page.functions, page.bindings, page.pure_bindings, page.script_errors
            );
            for d in &page.diagnostics {
                println!("  {}[{}] {}: {}", d.severity, d.code, d.subject, d.message);
            }
            if effects {
                for b in &page.binding_reports {
                    let class = b
                        .class
                        .map(|c| format!("class {c}"))
                        .unwrap_or_else(|| "unparsed".to_string());
                    println!(
                        "  effects {:?} [{class}]: writes {{{}}} reads {{{}}} xhr {{{}}} \
                         globals r{{{}}} w{{{}}}",
                        b.code,
                        b.writes.join(", "),
                        b.reads.join(", "),
                        b.xhr_urls.join(", "),
                        b.globals_read.join(", "),
                        b.globals_written.join(", "),
                    );
                }
                for c in &page.equiv_classes {
                    println!(
                        "  class {}: {} members, signature {}",
                        c.id,
                        c.members.len(),
                        c.signature
                    );
                }
                println!("  commutativity ('+' = provably order-independent):");
                for (code, row) in page.commute.codes.iter().zip(&page.commute.rows) {
                    println!("    {row}  {code:?}");
                }
            }
        }
        println!(
            "{} pages: {} errors, {} warnings, {} infos",
            analysis.pages.len(),
            analysis.errors,
            analysis.warnings,
            analysis.infos
        );
    }
    if analysis.has_errors() {
        return Err(format!(
            "static analysis found {} error-severity diagnostics",
            analysis.errors
        ));
    }
    Ok(())
}

/// `ajax-search fsck FILE|DIR` — validate persisted artifacts (indexes,
/// model files, checkpoint journals) without loading them into an engine.
/// Reports, per file: OK, legacy (readable but pre-frame, no checksum),
/// repairable damage (a stale `.tmp` from an interrupted commit, or a torn
/// checkpoint superseded by a valid older snapshot), or fatal damage.
/// Exits nonzero only on fatal damage.
fn cmd_fsck(args: &[String]) -> Result<(), String> {
    use ajax_crawl::durable::{self, Inspection};
    use std::path::{Path, PathBuf};

    let target = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .ok_or("fsck needs a FILE or DIR to check")?;
    let target = Path::new(target);
    let files: Vec<PathBuf> = if target.is_dir() {
        let mut entries: Vec<PathBuf> = std::fs::read_dir(target)
            .map_err(|e| format!("read {}: {e}", target.display()))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.is_file())
            .collect();
        entries.sort();
        entries
    } else if target.is_file() {
        vec![target.to_path_buf()]
    } else {
        return Err(format!("{}: no such file or directory", target.display()));
    };

    let is_checkpoint = |p: &Path| {
        p.file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.starts_with("checkpoint-") && n.ends_with(".ajx"))
    };
    // A torn checkpoint is only fatal if no *other* snapshot in the same
    // journal is intact — the journal keeps the previous generation around
    // precisely so resume can fall back to it.
    let valid_checkpoints = files
        .iter()
        .filter(|p| is_checkpoint(p))
        .filter(|p| matches!(durable::inspect(p), Ok(Inspection::Ok { .. })))
        .count();

    let (mut ok, mut legacy, mut repairable, mut fatal) = (0u32, 0u32, 0u32, 0u32);
    for path in &files {
        let name = path.display();
        if path.extension().is_some_and(|e| e == "tmp") {
            println!("REPAIRABLE {name}: stale temp file from an interrupted commit — delete it");
            repairable += 1;
            continue;
        }
        match durable::inspect(path) {
            Ok(Inspection::Ok {
                magic,
                version,
                payload_len,
            }) => {
                // Frame-valid index files are further classified by format
                // version: only the current v4 segment is fully OK; a v3
                // (JSON) frame is readable but previous-generation; any
                // other version is unreadable by this build.
                if magic == ajax_index::INDEX_MAGIC {
                    match version {
                        ajax_index::INDEX_FORMAT_VERSION => {
                            println!(
                                "OK         {name}: {magic} v{version} (mmap-able segment), \
                                 {payload_len} payload bytes, checksum verified"
                            );
                            ok += 1;
                        }
                        ajax_index::INDEX_V3_VERSION => {
                            println!(
                                "LEGACY     {name}: {magic} v{version} (JSON) — still \
                                 loadable; rewrite with the current build for the \
                                 compressed mmap-able v4 segment"
                            );
                            legacy += 1;
                        }
                        other => {
                            println!(
                                "FATAL      {name}: {magic} v{other} is not readable by \
                                 this build (reads v4 and v3) — rebuild with \
                                 `ajax-search build`"
                            );
                            fatal += 1;
                        }
                    }
                } else {
                    println!("OK         {name}: {magic} v{version}, {payload_len} payload bytes, checksum verified");
                    ok += 1;
                }
            }
            Ok(Inspection::Legacy { bytes }) => {
                println!(
                    "LEGACY     {name}: unframed ({bytes} bytes) — readable, but has no \
                     checksum; rewrite with the current build for crash safety"
                );
                legacy += 1;
            }
            Err(e) => {
                if is_checkpoint(path) && valid_checkpoints > 0 {
                    println!(
                        "REPAIRABLE {name}: {e} — an intact snapshot exists, resume will \
                         fall back to it"
                    );
                    repairable += 1;
                } else {
                    println!("FATAL      {name}: {e}");
                    fatal += 1;
                }
            }
        }
    }
    println!(
        "{} files: {ok} ok, {legacy} legacy, {repairable} repairable, {fatal} fatal",
        files.len()
    );
    if fatal > 0 {
        return Err(format!(
            "{fatal} file(s) fatally damaged — rebuild them with `ajax-search build`"
        ));
    }
    Ok(())
}

fn cmd_demo() -> Result<(), String> {
    let spec = VidShareSpec::small(60);
    let start = Url::parse(&spec.watch_url(0));
    let server = Arc::new(VidShareServer::new(spec));
    let engine = AjaxSearchEngine::build(server, &start, EngineConfig::ajax(60));
    println!(
        "demo index: {} pages, {} states, {} shards",
        engine.report.pages_crawled, engine.report.total_states, engine.report.shards
    );
    for q in ["wow", "our song", "morcheeba mysterious video"] {
        let results = engine.search(q);
        println!("\n{q:?} → {} results", results.len());
        for r in results.iter().take(3) {
            println!("   {:.4}  {}  state {}", r.score, r.url, r.doc.state);
        }
    }
    Ok(())
}
