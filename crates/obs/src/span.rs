//! The span recorder: a flight-recorder ring of completed spans.
//!
//! Spans are *closed* records — the caller samples its clock before and
//! after the region of interest and pushes `(name, start, end, args)`.
//! Hierarchy is implicit: a child span's `[start, end]` range nests inside
//! its parent's on the same track, which is exactly how Chrome's trace
//! viewer and Perfetto reconstruct flame charts from `ph:"X"` events.

use ajax_net::Micros;
use std::collections::VecDeque;

/// Default flight-recorder capacity (events). Old events are evicted first,
/// so the ring always holds the most recent window of activity.
pub const DEFAULT_CAPACITY: usize = 1 << 17;

/// One span attribute value. Numbers stay numbers in the Chrome export so
/// Perfetto can aggregate them; strings are escaped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    U64(u64),
    Str(String),
}

impl AttrValue {
    /// Convenience constructor for string attributes.
    pub fn str(s: impl Into<String>) -> Self {
        AttrValue::Str(s.into())
    }
}

/// A completed span: `[start, start+dur]` virtual microseconds on `track`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Span kind, e.g. `"crawl.page"` or `"shard.eval"`. The prefix before
    /// the first `.` becomes the Chrome event category.
    pub name: &'static str,
    /// Display track (Chrome `tid`): one per process line / shard so
    /// parallel overlap is visible.
    pub track: u32,
    /// Start timestamp (virtual µs unless the producer runs on wall clock).
    pub start: Micros,
    /// Duration in µs (0 for instant markers such as `hotnode.hit`).
    pub dur: Micros,
    /// Key=value attributes.
    pub args: Vec<(&'static str, AttrValue)>,
}

/// The bounded ring of recorded spans.
#[derive(Debug, Default)]
pub struct SpanLog {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
    track: u32,
}

impl SpanLog {
    /// An empty log bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity: capacity.max(1),
            dropped: 0,
            track: 0,
        }
    }

    /// Sets the track stamped on subsequently pushed spans.
    pub fn set_track(&mut self, track: u32) {
        self.track = track;
    }

    /// Records a completed span. When the ring is full the oldest event is
    /// evicted (flight-recorder semantics) and `dropped` incremented.
    pub fn push(
        &mut self,
        name: &'static str,
        start: Micros,
        end: Micros,
        args: Vec<(&'static str, AttrValue)>,
    ) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(SpanEvent {
            name,
            track: self.track,
            start,
            dur: end.saturating_sub(start),
            args,
        });
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded (or everything was drained).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Drains the recorded spans in insertion order.
    pub fn take(&mut self) -> Vec<SpanEvent> {
        self.events.drain(..).collect()
    }
}

/// The recording handle threaded through instrumented code. `Off` is the
/// zero-cost default: every method is a single discriminant check and the
/// disabled path never allocates — call sites additionally gate attribute
/// `Vec` construction behind [`Recorder::is_on`].
#[derive(Debug, Default)]
pub enum Recorder {
    /// Tracing disabled: all calls are no-ops.
    #[default]
    Off,
    /// Tracing enabled into the contained flight-recorder ring.
    On(SpanLog),
}

impl Recorder {
    /// A disabled recorder.
    pub fn off() -> Self {
        Recorder::Off
    }

    /// An enabled recorder with the default flight-recorder capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled recorder bounded at `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Recorder::On(SpanLog::with_capacity(capacity))
    }

    /// True when spans are being recorded. Gate attribute construction on
    /// this so the disabled path allocates nothing.
    #[inline]
    pub fn is_on(&self) -> bool {
        matches!(self, Recorder::On(_))
    }

    /// Records a completed span with attributes. No-op (and no allocation
    /// beyond the caller-built `args`) when disabled.
    #[inline]
    pub fn push(
        &mut self,
        name: &'static str,
        start: Micros,
        end: Micros,
        args: Vec<(&'static str, AttrValue)>,
    ) {
        if let Recorder::On(log) = self {
            log.push(name, start, end, args);
        }
    }

    /// Records an attribute-free span.
    #[inline]
    pub fn push0(&mut self, name: &'static str, start: Micros, end: Micros) {
        if let Recorder::On(log) = self {
            log.push(name, start, end, Vec::new());
        }
    }

    /// Sets the track stamped on subsequent spans (no-op when disabled).
    pub fn set_track(&mut self, track: u32) {
        if let Recorder::On(log) = self {
            log.set_track(track);
        }
    }

    /// Drains recorded spans (empty when disabled).
    pub fn take(&mut self) -> Vec<SpanEvent> {
        match self {
            Recorder::Off => Vec::new(),
            Recorder::On(log) => log.take(),
        }
    }

    /// Events evicted by the ring so far (0 when disabled).
    pub fn dropped(&self) -> u64 {
        match self {
            Recorder::Off => 0,
            Recorder::On(log) => log.dropped(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_recorder_records_nothing() {
        let mut r = Recorder::off();
        r.push0("crawl.page", 0, 10);
        r.set_track(3);
        assert!(!r.is_on());
        assert!(r.take().is_empty());
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn spans_record_in_order_with_track_and_args() {
        let mut r = Recorder::enabled();
        r.set_track(2);
        r.push(
            "xhr.fetch",
            5,
            17,
            vec![
                ("url", AttrValue::str("/a")),
                ("status", AttrValue::U64(200)),
            ],
        );
        r.push0("hotnode.hit", 20, 20);
        let spans = r.take();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "xhr.fetch");
        assert_eq!(spans[0].track, 2);
        assert_eq!(spans[0].start, 5);
        assert_eq!(spans[0].dur, 12);
        assert_eq!(spans[0].args[1], ("status", AttrValue::U64(200)));
        assert_eq!(spans[1].dur, 0);
        assert!(r.take().is_empty(), "take drains");
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = Recorder::with_capacity(3);
        for i in 0..5u64 {
            r.push0("crawl.event", i, i + 1);
        }
        assert_eq!(r.dropped(), 2);
        let spans = r.take();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].start, 2, "oldest two evicted");
        assert_eq!(spans[2].start, 4);
    }

    #[test]
    fn end_before_start_saturates_to_zero_duration() {
        let mut r = Recorder::enabled();
        r.push0("crawl.page", 10, 5);
        assert_eq!(r.take()[0].dur, 0);
    }
}
