//! Per-phase profile rollup: aggregates recorded spans by kind into
//! count / total / mean / p95 rows — the table `ajax-search build --profile`
//! prints. Quantiles come from the shared [`LatencyHistogram`], so they are
//! power-of-two bucket upper bounds; count/total/mean are exact.

use crate::histogram::LatencyHistogram;
use crate::span::SpanEvent;
use std::collections::BTreeMap;

/// One rendered rollup row.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Span kind (`SpanEvent::name`).
    pub kind: String,
    /// Spans of this kind.
    pub count: u64,
    /// Summed duration in µs (exact).
    pub total_micros: u64,
    /// Mean duration in µs (exact).
    pub mean_micros: f64,
    /// Approximate p95 duration in µs (bucket upper bound).
    pub p95_micros: u64,
}

/// Aggregation of a span list by kind, sorted alphabetically (deterministic).
#[derive(Debug, Default)]
pub struct ProfileRollup {
    rows: BTreeMap<&'static str, LatencyHistogram>,
}

impl ProfileRollup {
    /// Builds the rollup from recorded spans.
    pub fn from_events(events: &[SpanEvent]) -> Self {
        let mut rows: BTreeMap<&'static str, LatencyHistogram> = BTreeMap::new();
        for e in events {
            rows.entry(e.name).or_default().record(e.dur);
        }
        Self { rows }
    }

    /// True when no spans were aggregated.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rollup rows, sorted by span kind.
    pub fn rows(&self) -> Vec<ProfileRow> {
        self.rows
            .iter()
            .map(|(kind, h)| ProfileRow {
                kind: kind.to_string(),
                count: h.count(),
                total_micros: h.total(),
                mean_micros: h.mean(),
                p95_micros: h.quantile(0.95),
            })
            .collect()
    }

    /// Renders the rollup as an aligned text table.
    pub fn render(&self) -> String {
        let rows = self.rows();
        let kind_w = rows
            .iter()
            .map(|r| r.kind.len())
            .chain(["span kind".len()])
            .max()
            .unwrap_or(9);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<kind_w$}  {:>9}  {:>12}  {:>10}  {:>10}\n",
            "span kind", "count", "total ms", "mean µs", "p95 µs"
        ));
        out.push_str(&format!(
            "{:-<kind_w$}  {:->9}  {:->12}  {:->10}  {:->10}\n",
            "", "", "", "", ""
        ));
        for r in &rows {
            out.push_str(&format!(
                "{:<kind_w$}  {:>9}  {:>12.3}  {:>10.1}  {:>10}\n",
                r.kind,
                r.count,
                r.total_micros as f64 / 1e3,
                r.mean_micros,
                r.p95_micros
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    #[test]
    fn rollup_aggregates_by_kind() {
        let mut r = Recorder::enabled();
        r.push0("crawl.page", 0, 100);
        r.push0("crawl.page", 100, 300);
        r.push0("xhr.fetch", 10, 20);
        let spans = r.take();
        let rollup = ProfileRollup::from_events(&spans);
        let rows = rollup.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].kind, "crawl.page", "sorted alphabetically");
        assert_eq!(rows[0].count, 2);
        assert_eq!(rows[0].total_micros, 300);
        assert!((rows[0].mean_micros - 150.0).abs() < 1e-9);
        assert_eq!(rows[1].count, 1);
        assert_eq!(rows[1].total_micros, 10);
    }

    #[test]
    fn render_contains_header_and_rows() {
        let mut r = Recorder::enabled();
        r.push0("serve.query", 0, 1000);
        let table = ProfileRollup::from_events(&r.take()).render();
        assert!(table.contains("span kind"));
        assert!(table.contains("serve.query"));
        assert!(table.contains("p95"));
    }

    #[test]
    fn empty_rollup_renders_header_only() {
        let rollup = ProfileRollup::from_events(&[]);
        assert!(rollup.is_empty());
        assert_eq!(rollup.render().lines().count(), 2);
    }
}
