//! # ajax-obs
//!
//! Observability for the AJAX Crawl pipeline: a structured span tracer
//! stamped on the **virtual clock** ([`ajax_net::Micros`]) with a bounded
//! flight-recorder ring buffer, plus two exporters:
//!
//! * [`chrome_trace_json`] — a Chrome `trace_event` JSON file, loadable in
//!   `chrome://tracing` or [Perfetto](https://ui.perfetto.dev);
//! * [`ProfileRollup`] — a per-span-kind count / total / mean / p95 table,
//!   built on the generalized [`LatencyHistogram`] (lifted out of
//!   `ajax-serve`'s metrics registry).
//!
//! Spans are recorded through a [`Recorder`], an enum with a no-op `Off`
//! variant: the disabled path is a single branch and performs **no
//! allocation** (call sites gate attribute construction behind
//! [`Recorder::is_on`]). Because every timestamp comes from the caller's
//! deterministic virtual clock and the ring is filled single-threaded, two
//! same-seed runs emit byte-identical traces.

mod chrome;
mod histogram;
mod profile;
mod span;

pub use chrome::{chrome_trace_json, chrome_trace_json_named, validate_chrome_trace, TraceStats};
pub use histogram::{LatencyHistogram, BUCKETS};
pub use profile::{ProfileRollup, ProfileRow};
pub use span::{AttrValue, Recorder, SpanEvent, SpanLog, DEFAULT_CAPACITY};
