//! Chrome `trace_event` export and shape validation.
//!
//! The emitter writes the JSON by hand with a fixed field order and integer
//! timestamps, so equal span lists serialize to byte-identical files — the
//! property the determinism checks (`exp_fault_sweep`, the CI trace-smoke
//! job) diff on. The output is the documented "JSON Object Format":
//! `{"traceEvents":[...]}` with `ph:"X"` complete events, which both
//! `chrome://tracing` and Perfetto load directly.
//!
//! The validator is a self-contained minimal JSON parser (the vendored
//! `serde_json` has no dynamic `Value` type) that checks each event carries
//! the fields the Chrome trace-event format requires.

use crate::span::{AttrValue, SpanEvent};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escapes a string for inclusion in a JSON document.
fn escape_json(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_event(out: &mut String, e: &SpanEvent) {
    out.push_str("{\"name\":\"");
    escape_json(out, e.name);
    let cat = e.name.split('.').next().unwrap_or(e.name);
    out.push_str("\",\"cat\":\"");
    escape_json(out, cat);
    let _ = write!(
        out,
        "\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
        e.start, e.dur, e.track
    );
    if !e.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in e.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_json(out, k);
            out.push_str("\":");
            match v {
                AttrValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                AttrValue::Str(s) => {
                    out.push('"');
                    escape_json(out, s);
                    out.push('"');
                }
            }
        }
        out.push('}');
    }
    out.push('}');
}

/// Serializes spans as a Chrome trace-event JSON document (byte-deterministic
/// for equal inputs). Events appear in input order; viewers sort by `ts`.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    chrome_trace_json_named(events, &[])
}

/// Like [`chrome_trace_json`], with `thread_name` metadata naming the given
/// tracks (e.g. `(0, "line 0")`) so Perfetto labels the rows.
pub fn chrome_trace_json_named(events: &[SpanEvent], track_names: &[(u32, &str)]) -> String {
    let mut out = String::with_capacity(64 + events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    for (track, name) in track_names {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\"args\":{{\"name\":\""
        );
        escape_json(&mut out, name);
        out.push_str("\"}}");
    }
    for e in events {
        if !first {
            out.push(',');
        }
        first = false;
        write_event(&mut out, e);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}\n");
    out
}

/// Summary returned by [`validate_chrome_trace`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStats {
    /// Total events, metadata included.
    pub events: usize,
    /// `ph:"X"` complete events.
    pub complete_events: usize,
    /// Distinct complete-event names.
    pub span_kinds: BTreeSet<String>,
    /// Distinct `tid` values among complete events.
    pub tracks: BTreeSet<u64>,
}

/// Parses `json` and checks it against the Chrome trace-event shape: a root
/// object with a `traceEvents` array whose elements are objects carrying
/// `name`/`ph`/`pid`/`tid`, with numeric `ts` and `dur` on every `ph:"X"`
/// event. Returns per-kind counts on success.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let value = json::parse(json)?;
    let root = value.as_object().ok_or("root is not an object")?;
    let events = root
        .iter()
        .find(|(k, _)| k == "traceEvents")
        .map(|(_, v)| v)
        .ok_or("missing traceEvents")?
        .as_array()
        .ok_or("traceEvents is not an array")?;
    let mut stats = TraceStats {
        events: events.len(),
        complete_events: 0,
        span_kinds: BTreeSet::new(),
        tracks: BTreeSet::new(),
    };
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let field = |key: &str| obj.iter().find(|(k, _)| k == key).map(|(_, v)| v);
        let name = field("name")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string name"))?;
        let ph = field("ph")
            .and_then(json::Value::as_str)
            .ok_or_else(|| format!("event {i}: missing string ph"))?;
        let tid = field("tid")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing numeric tid"))?;
        field("pid")
            .and_then(json::Value::as_u64)
            .ok_or_else(|| format!("event {i}: missing numeric pid"))?;
        match ph {
            "X" => {
                field("ts")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("event {i}: complete event missing numeric ts"))?;
                field("dur")
                    .and_then(json::Value::as_u64)
                    .ok_or_else(|| format!("event {i}: complete event missing numeric dur"))?;
                stats.complete_events += 1;
                stats.span_kinds.insert(name.to_string());
                stats.tracks.insert(tid);
            }
            "M" => {}
            other => return Err(format!("event {i}: unexpected ph {other:?}")),
        }
    }
    Ok(stats)
}

/// A minimal JSON parser, just enough to validate trace files offline.
mod json {
    pub enum Value {
        Null,
        #[allow(dead_code)] // parsed but never inspected by the validator
        Bool(bool),
        Num(f64),
        Str(String),
        Arr(Vec<Value>),
        Obj(Vec<(String, Value)>),
    }

    impl Value {
        pub fn as_object(&self) -> Option<&[(String, Value)]> {
            match self {
                Value::Obj(fields) => Some(fields),
                _ => None,
            }
        }
        pub fn as_array(&self) -> Option<&[Value]> {
            match self {
                Value::Arr(items) => Some(items),
                _ => None,
            }
        }
        pub fn as_str(&self) -> Option<&str> {
            match self {
                Value::Str(s) => Some(s),
                _ => None,
            }
        }
        pub fn as_u64(&self) -> Option<u64> {
            match self {
                Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
                _ => None,
            }
        }
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!("expected {:?} at byte {}", b as char, self.pos))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                _ => Err(format!("unexpected byte at {}", self.pos)),
            }
        }

        fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(word.as_bytes()) {
                self.pos += word.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
            {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .ok()
                .and_then(|s| s.parse::<f64>().ok())
                .map(Value::Num)
                .ok_or_else(|| format!("bad number at byte {start}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'b') => out.push('\u{8}'),
                            Some(b'f') => out.push('\u{c}'),
                            Some(b'u') => {
                                let hex = self
                                    .bytes
                                    .get(self.pos + 1..self.pos + 5)
                                    .and_then(|h| std::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .ok_or("bad \\u escape")?;
                                // Surrogate pairs are not needed for our own
                                // escapes (only control chars use \u).
                                out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                                self.pos += 4;
                            }
                            _ => return Err(format!("bad escape at byte {}", self.pos)),
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|_| "invalid utf-8".to_string())?;
                        let c = rest.chars().next().unwrap();
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Arr(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    _ => return Err(format!("expected , or ] at byte {}", self.pos)),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut fields = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Obj(fields));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let value = self.value()?;
                fields.push((key, value));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Obj(fields));
                    }
                    _ => return Err(format!("expected , or }} at byte {}", self.pos)),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Recorder;

    fn sample_spans() -> Vec<SpanEvent> {
        let mut r = Recorder::enabled();
        r.push(
            "crawl.page",
            0,
            100,
            vec![("url", AttrValue::str("http://x/?a=\"1\""))],
        );
        r.set_track(3);
        r.push("xhr.fetch", 10, 40, vec![("status", AttrValue::U64(200))]);
        r.take()
    }

    #[test]
    fn emitted_trace_validates() {
        let json = chrome_trace_json_named(&sample_spans(), &[(0, "line 0"), (3, "line 3")]);
        let stats = validate_chrome_trace(&json).expect("valid trace");
        assert_eq!(stats.events, 4, "2 metadata + 2 spans");
        assert_eq!(stats.complete_events, 2);
        assert!(stats.span_kinds.contains("crawl.page"));
        assert_eq!(stats.tracks.iter().copied().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn equal_spans_serialize_byte_identically() {
        let a = chrome_trace_json(&sample_spans());
        let b = chrome_trace_json(&sample_spans());
        assert_eq!(a, b);
    }

    #[test]
    fn strings_are_escaped() {
        let json = chrome_trace_json(&sample_spans());
        assert!(json.contains("a=\\\"1\\\""));
        validate_chrome_trace(&json).expect("escaped quotes still parse");
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[]);
        let stats = validate_chrome_trace(&json).expect("valid");
        assert_eq!(stats.events, 0);
    }

    #[test]
    fn malformed_traces_are_rejected() {
        assert!(validate_chrome_trace("[]").is_err(), "root must be object");
        assert!(validate_chrome_trace("{\"traceEvents\":{}}").is_err());
        assert!(
            validate_chrome_trace("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err(),
            "events need name/ts/dur/pid/tid"
        );
        assert!(
            validate_chrome_trace("{\"traceEvents\":[]").is_err(),
            "truncated"
        );
    }
}
