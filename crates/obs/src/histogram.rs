//! A fixed-bucket, power-of-two latency histogram, generalized out of
//! `ajax-serve`'s metrics registry so both the serving metrics and the
//! profile rollup share one implementation. `record` is wait-free;
//! percentile reads are approximate (upper bound of the bucket containing
//! the requested rank), which is plenty for p50/p95/p99 over exponentially
//! spaced buckets.

use ajax_net::Micros;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: bucket `i` holds samples with
/// `value < 2^i` µs (bucket 0 holds exact zeros), which covers ~36 minutes
/// in the last bucket — more than any sane latency.
pub const BUCKETS: usize = 32;

/// The histogram. All updates are relaxed atomics, so it can be shared
/// across threads behind an `Arc` without locks.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    fn bucket_of(micros: Micros) -> usize {
        // 0 → bucket 0; otherwise the position of the highest set bit + 1,
        // capped to the last bucket.
        (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
    }

    /// Records one sample.
    pub fn record(&self, micros: Micros) {
        self.buckets[Self::bucket_of(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(micros, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples in µs.
    pub fn total(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean in µs (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.total() as f64 / n as f64
        }
    }

    /// Approximate `q`-quantile (`0.0..=1.0`) in µs: the upper bound of the
    /// bucket where the cumulative count reaches `ceil(q·n)`, clamped to
    /// rank 1 so `q = 0.0` reads the fastest bucket rather than nothing.
    pub fn quantile(&self, q: f64) -> Micros {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return if i == 0 { 0 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// Per-bucket counts (`[i]` counts samples `< 2^i` µs, `[0]` zeros).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(LatencyHistogram::bucket_of(0), 0);
        assert_eq!(LatencyHistogram::bucket_of(1), 1);
        assert_eq!(LatencyHistogram::bucket_of(2), 2);
        assert_eq!(LatencyHistogram::bucket_of(3), 2);
        assert_eq!(LatencyHistogram::bucket_of(4), 3);
        assert_eq!(LatencyHistogram::bucket_of(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn quantiles_over_known_samples() {
        let h = LatencyHistogram::default();
        // 90 fast samples (~8 µs → bucket 4, upper bound 16) and 10 slow
        // (~1000 µs → bucket 10, upper bound 1024).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 16);
        assert_eq!(h.quantile(0.90), 16);
        assert_eq!(h.quantile(0.95), 1024);
        assert_eq!(h.quantile(0.99), 1024);
        let mean = h.mean();
        assert!((mean - (90.0 * 8.0 + 10.0 * 1000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero_at_every_quantile() {
        let h = LatencyHistogram::default();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = LatencyHistogram::default();
        h.record(100); // bucket 7, upper bound 128
        assert_eq!(h.quantile(0.0), 128, "q=0 clamps to rank 1");
        assert_eq!(h.quantile(0.5), 128);
        assert_eq!(h.quantile(1.0), 128);
        assert_eq!(h.mean(), 100.0);
    }

    #[test]
    fn single_zero_sample_reads_zero() {
        let h = LatencyHistogram::default();
        h.record(0);
        assert_eq!(h.quantile(0.0), 0);
        assert_eq!(h.quantile(1.0), 0);
    }

    #[test]
    fn all_samples_in_last_bucket() {
        let h = LatencyHistogram::default();
        for _ in 0..5 {
            h.record(u64::MAX);
        }
        let cap = 1u64 << (BUCKETS - 1);
        assert_eq!(h.quantile(0.0), cap);
        assert_eq!(h.quantile(0.95), cap);
        assert_eq!(h.quantile(1.0), cap);
        assert_eq!(h.bucket_counts()[BUCKETS - 1], 5);
    }

    #[test]
    fn extreme_quantiles_bound_the_distribution() {
        let h = LatencyHistogram::default();
        h.record(1); // bucket 1 → upper bound 2
        h.record(1000); // bucket 10 → upper bound 1024
        assert_eq!(h.quantile(0.0), 2, "q=0.0 is the fastest bucket");
        assert_eq!(h.quantile(1.0), 1024, "q=1.0 is the slowest bucket");
    }
}
