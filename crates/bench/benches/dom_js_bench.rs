//! Criterion bench: DOM substrate (parse / serialize / normalize+hash) and
//! JS substrate (parse / event-handler execution) on a real VidShare page.

use ajax_dom::parse_document;
use ajax_js::{Interpreter, NoopHook, NullHost};
use ajax_net::server::{Request, Server};
use ajax_webgen::{VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_dom(c: &mut Criterion) {
    let server = VidShareServer::new(VidShareSpec::small(50));
    let html = server.handle(&Request::get("/watch?v=3")).body;
    let doc = parse_document(&html);

    let mut group = c.benchmark_group("dom");
    group.throughput(Throughput::Bytes(html.len() as u64));
    group.bench_function("parse_watch_page", |b| {
        b.iter(|| black_box(parse_document(black_box(&html))))
    });
    group.bench_function("serialize", |b| b.iter(|| black_box(doc.to_html())));
    group.bench_function("normalize_and_hash", |b| {
        b.iter(|| black_box(doc.content_hash()))
    });
    group.bench_function("clone_snapshot", |b| b.iter(|| black_box(doc.clone())));
    group.finish();
}

fn bench_js(c: &mut Criterion) {
    let src = r#"
        var total = 0;
        function inner(x) { return x * 2 + 1; }
        function run() {
            for (var i = 0; i < 100; i++) { total += inner(i); }
            return total;
        }
    "#;
    let mut group = c.benchmark_group("js");
    group.bench_function("parse_program", |b| {
        b.iter(|| black_box(ajax_js::parse_program(black_box(src)).unwrap()))
    });
    group.bench_function("run_loop_100", |b| {
        b.iter(|| {
            let mut interp = Interpreter::new();
            interp
                .load_program(src, &mut NullHost, &mut NoopHook)
                .unwrap();
            black_box(interp.eval("run()", &mut NullHost, &mut NoopHook).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_dom, bench_js);
criterion_main!(benches);
