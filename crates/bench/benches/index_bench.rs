//! Criterion bench: index construction from crawled models and tokenizer
//! throughput (the indexing phase of §6.4).

use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::IndexBuilder;
use ajax_index::tokenize::tokenize;
use ajax_net::{LatencyModel, Server};
use ajax_webgen::{VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn bench_index(c: &mut Criterion) {
    let spec = VidShareSpec::small(100);
    let urls: Vec<String> = (0..100).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));
    let models = MpCrawler::new(
        server as Arc<dyn Server>,
        LatencyModel::Zero,
        CrawlConfig::ajax(),
    )
    .crawl(&partition_urls(&urls, 50))
    .into_models();
    let text_bytes: usize = models.iter().map(|m| m.text_bytes()).sum();

    let mut group = c.benchmark_group("index");
    group.throughput(Throughput::Bytes(text_bytes as u64));
    group.bench_function("build_100_pages", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new();
            for m in &models {
                builder.add_model(m, None);
            }
            black_box(builder.build())
        })
    });
    group.bench_function("build_traditional_view", |b| {
        b.iter(|| {
            let mut builder = IndexBuilder::new().with_max_states(1);
            for m in &models {
                builder.add_model(m, None);
            }
            black_box(builder.build())
        })
    });

    let sample: String = models
        .iter()
        .flat_map(|m| m.states.iter())
        .map(|s| s.text.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    group.throughput(Throughput::Bytes(sample.len() as u64));
    group.bench_function("tokenize_corpus", |b| {
        b.iter(|| black_box(tokenize(black_box(&sample))))
    });
    group.finish();
}

criterion_group!(benches, bench_index);
criterion_main!(benches);
