//! Criterion bench: per-page crawl cost of the three crawler flavours
//! (wall-clock compute; the virtual network is free here so the benchmark
//! isolates parsing, JS execution, hashing and model maintenance).
//!
//! `ajax_hotnode_traced` repeats the hot-node flavour with the `ajax-obs`
//! flight recorder enabled; comparing it against `ajax_hotnode` measures the
//! tracing overhead, and the gap between `ajax_hotnode` here and its
//! pre-tracing baseline is the *disabled* recorder's cost (expected: noise).

use ajax_crawl::crawler::{CrawlConfig, Crawler};
use ajax_net::{LatencyModel, Server, Url};
use ajax_obs::Recorder;
use ajax_webgen::{video_meta, VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_crawl(c: &mut Criterion) {
    let spec = VidShareSpec::small(50);
    let multi = (0..50)
        .find(|&v| video_meta(&spec, v).comment_pages >= 4)
        .expect("multi-page video");
    let url = Url::parse(&spec.watch_url(multi));
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));

    let mut group = c.benchmark_group("crawl_page");
    for (name, config) in [
        ("traditional", CrawlConfig::traditional()),
        ("ajax_hotnode", CrawlConfig::ajax()),
        ("ajax_no_cache", CrawlConfig::ajax_no_cache()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut crawler = Crawler::new(
                    Arc::clone(&server) as Arc<dyn Server>,
                    LatencyModel::Zero,
                    config.clone(),
                );
                black_box(crawler.crawl_page(black_box(&url)).expect("crawl"))
            })
        });
    }
    group.bench_function("ajax_hotnode_traced", |b| {
        b.iter(|| {
            let mut crawler = Crawler::new(
                Arc::clone(&server) as Arc<dyn Server>,
                LatencyModel::Zero,
                CrawlConfig::ajax(),
            )
            .with_recorder(Recorder::enabled());
            let stats = crawler.crawl_page(black_box(&url)).expect("crawl");
            black_box(crawler.take_spans());
            black_box(stats)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_crawl);
criterion_main!(benches);
