//! Criterion bench: query latency on a 200-page index — single keyword,
//! conjunction, and sharded (broker) evaluation. Backs Table 7.5 / Fig 7.9.

use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::shard::QueryBroker;
use ajax_net::{LatencyModel, Server};
use ajax_webgen::{VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn build_corpus(n: u32) -> (InvertedIndex, QueryBroker) {
    let spec = VidShareSpec::small(n);
    let urls: Vec<String> = (0..n).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));
    let models = MpCrawler::new(
        server as Arc<dyn Server>,
        LatencyModel::Zero,
        CrawlConfig::ajax(),
    )
    .crawl(&partition_urls(&urls, 50))
    .into_models();

    let mut single = IndexBuilder::new();
    for m in &models {
        single.add_model(m, None);
    }
    let shards: Vec<InvertedIndex> = models
        .chunks(50)
        .map(|chunk| {
            let mut b = IndexBuilder::new();
            for m in chunk {
                b.add_model(m, None);
            }
            b.build()
        })
        .collect();
    (single.build(), QueryBroker::new(shards))
}

fn bench_query(c: &mut Criterion) {
    let (index, broker) = build_corpus(200);
    let weights = RankWeights::default();
    let mut group = c.benchmark_group("query");

    for (name, text) in [
        ("keyword_hot", "wow"),
        ("keyword_cold", "whistle"),
        ("conjunction_2", "our song"),
        ("conjunction_3", "sexy can i"),
    ] {
        let q = Query::parse(text);
        group.bench_function(name, |b| {
            b.iter(|| black_box(search(&index, black_box(&q), &weights)))
        });
    }

    let q = Query::parse("wow");
    group.bench_function("broker_keyword_hot", |b| {
        b.iter(|| black_box(broker.search(black_box(&q))))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
