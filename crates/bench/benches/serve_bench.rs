//! Criterion bench: the `ajax-serve` serving path — closed-loop throughput
//! over the 100-query VidShare workload through the sequential broker, the
//! worker-pool server (cache off), and the server with a warm result cache.

use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::Query;
use ajax_index::shard::QueryBroker;
use ajax_net::{LatencyModel, Server};
use ajax_serve::{ServeConfig, ShardServer};
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::sync::Arc;

fn build_shards(n: u32) -> Vec<InvertedIndex> {
    let spec = VidShareSpec::small(n);
    let urls: Vec<String> = (0..n).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));
    let models = MpCrawler::new(
        server as Arc<dyn Server>,
        LatencyModel::Zero,
        CrawlConfig::ajax(),
    )
    .crawl(&partition_urls(&urls, 25))
    .into_models();
    models
        .chunks(25)
        .map(|chunk| {
            let mut b = IndexBuilder::new();
            for m in chunk {
                b.add_model(m, None);
            }
            b.build()
        })
        .collect()
}

fn bench_serve(c: &mut Criterion) {
    let workload: Vec<Query> = query_phrases().iter().map(|q| Query::parse(q)).collect();
    let n_queries = workload.len() as u64;

    let broker = QueryBroker::new(build_shards(100));
    let uncached = ShardServer::new(
        QueryBroker::new(build_shards(100)),
        ServeConfig::default().with_cache_capacity(0),
    );
    let cached = ShardServer::new(
        QueryBroker::new(build_shards(100)),
        ServeConfig::default().with_cache_capacity(256),
    );
    // Warm the cache once so the cached flavour measures pure hits.
    for q in &workload {
        cached.search_query(q).expect("admitted");
    }

    let mut group = c.benchmark_group("serve");
    group.throughput(Throughput::Elements(n_queries));
    group.sample_size(10);
    group.bench_function("sequential_broker", |b| {
        b.iter(|| {
            for q in &workload {
                black_box(broker.search(black_box(q)));
            }
        })
    });
    group.bench_function("worker_pool_uncached", |b| {
        b.iter(|| {
            for q in &workload {
                black_box(uncached.search_query(black_box(q)).expect("admitted"));
            }
        })
    });
    group.bench_function("worker_pool_cache_hits", |b| {
        b.iter(|| {
            for q in &workload {
                black_box(cached.search_query(black_box(q)).expect("admitted"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_serve);
criterion_main!(benches);
