//! Criterion bench: the discrete-event scheduler and the real (threaded)
//! parallel crawl — the machinery behind Table 7.3 / Fig 7.8.

use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_net::sched::{simulate, Segment, Task};
use ajax_net::{LatencyModel, Server};
use ajax_webgen::{VidShareServer, VidShareSpec};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::sync::Arc;

fn bench_sched(c: &mut Criterion) {
    let tasks: Vec<Task> = (0..1_000)
        .map(|i| {
            Task::new(vec![
                Segment::Cpu(100 + (i % 37) * 13),
                Segment::Net(900 + (i % 53) * 29),
                Segment::Cpu(50),
            ])
        })
        .collect();
    let mut group = c.benchmark_group("sched");
    for lines in [1usize, 4, 16] {
        group.bench_function(format!("simulate_1000x{lines}"), |b| {
            b.iter(|| black_box(simulate(black_box(&tasks), lines, 2)))
        });
    }
    group.finish();
}

fn bench_mp_crawl(c: &mut Criterion) {
    let spec = VidShareSpec::small(16);
    let urls: Vec<String> = (0..16).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));
    let partitions = partition_urls(&urls, 4);

    let mut group = c.benchmark_group("mp_crawl_16_pages");
    group.sample_size(10);
    for lines in [1usize, 4] {
        group.bench_function(format!("{lines}_lines"), |b| {
            b.iter(|| {
                let mp = MpCrawler::new(
                    Arc::clone(&server) as Arc<dyn Server>,
                    LatencyModel::Zero,
                    CrawlConfig::ajax(),
                )
                .with_proc_lines(lines);
                black_box(mp.crawl(black_box(&partitions)))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched, bench_mp_crawl);
criterion_main!(benches);
