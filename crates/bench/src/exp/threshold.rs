//! Crawling thresholds (§7.6–7.7): Fig 7.10 (relative result throughput vs
//! number of indexed states) and Fig 7.11 (1 − RelRecall vs number of
//! indexed states).

use crate::exp::queries::QueryData;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use serde::Serialize;
use std::time::Instant;

/// One sample per index depth.
#[derive(Debug, Clone, Serialize)]
pub struct DepthSample {
    pub max_states: usize,
    pub indexed_states: u64,
    pub total_results: u64,
    pub total_query_ms: f64,
    /// Mean over queries of `1 − |R_1(q)| / |R_s(q)|`.
    pub one_minus_rel_recall: f64,
}

/// Fig 7.10 + Fig 7.11 data.
#[derive(Debug, Clone, Serialize)]
pub struct ThresholdData {
    pub samples: Vec<DepthSample>,
}

/// Builds one index per depth (1..=11 states) from the same crawled models
/// and evaluates the 100-query workload on each.
pub fn collect(data: &QueryData) -> ThresholdData {
    let weights = RankWeights::default();
    let queries: Vec<Query> = data.queries.iter().map(|q| Query::parse(&q.text)).collect();

    let build = |max_states: usize| -> InvertedIndex {
        let mut b = IndexBuilder::new().with_max_states(max_states);
        for model in &data.models {
            b.add_model(model, None);
        }
        b.build()
    };

    // Result counts on the depth-1 index (the traditional baseline of the
    // RelRecall definition, formula 7.1).
    let depth_one = build(1);
    let base_counts: Vec<usize> = queries
        .iter()
        .map(|q| search(&depth_one, q, &weights).len())
        .collect();

    let samples = (1..=11usize)
        .map(|depth| {
            let index = build(depth);
            let mut total_results = 0u64;
            let counts: Vec<usize> = queries
                .iter()
                .map(|q| search(&index, q, &weights).len())
                .collect();
            // Repeat the whole workload several times and take the fastest
            // pass: wall-clock noise would otherwise dominate the series.
            let total_query_ms = (0..7)
                .map(|_| {
                    let t0 = Instant::now();
                    for q in &queries {
                        std::hint::black_box(search(&index, q, &weights).len());
                    }
                    t0.elapsed().as_secs_f64() * 1e3
                })
                .fold(f64::INFINITY, f64::min);
            for &c in &counts {
                total_results += c as u64;
            }
            // Mean 1 − RelRecall over queries with any results at this depth.
            let mut rel_sum = 0.0;
            let mut rel_n = 0u32;
            for (base, now) in base_counts.iter().zip(counts.iter()) {
                if *now > 0 {
                    rel_sum += 1.0 - (*base as f64 / *now as f64);
                    rel_n += 1;
                }
            }
            DepthSample {
                max_states: depth,
                indexed_states: index.total_states,
                total_results,
                total_query_ms,
                one_minus_rel_recall: if rel_n == 0 {
                    0.0
                } else {
                    rel_sum / f64::from(rel_n)
                },
            }
        })
        .collect();
    ThresholdData { samples }
}

impl ThresholdData {
    /// Renders Fig 7.10: relative result throughput (AJAX at depth *s* vs
    /// the traditional depth-1 index).
    pub fn render_fig7_10(&self) -> String {
        let base = &self.samples[0];
        let base_tput = base.total_results as f64 / base.total_query_ms.max(1e-9);
        let mut t = crate::util::TableFmt::new(vec![
            "max states",
            "indexed states",
            "results",
            "throughput (results/ms)",
            "relative vs trad",
        ]);
        for s in &self.samples {
            let tput = s.total_results as f64 / s.total_query_ms.max(1e-9);
            t.row(vec![
                s.max_states.to_string(),
                s.indexed_states.to_string(),
                s.total_results.to_string(),
                format!("{tput:.1}"),
                format!("{:.2}", tput / base_tput.max(1e-9)),
            ]);
        }
        format!(
            "Fig 7.10 — Result throughput vs number of crawled states\n{}\n\
             paper reference: relative throughput decreases with indexed states;\n\
             a 0.4 threshold suggests crawling ~5 states\n",
            t.render()
        )
    }

    /// Renders Fig 7.11: the recall gain saturating with depth.
    pub fn render_fig7_11(&self) -> String {
        let mut t = crate::util::TableFmt::new(vec!["max states", "1 - RelRecall", "bar"]);
        for s in &self.samples {
            let bar = "#".repeat((s.one_minus_rel_recall * 40.0).round() as usize);
            t.row(vec![
                s.max_states.to_string(),
                format!("{:.3}", s.one_minus_rel_recall),
                bar,
            ]);
        }
        format!(
            "Fig 7.11 — 1 − RelRecall (traditional/AJAX) vs number of states\n{}\n\
             paper reference: grows with states, gradient decreases; a 0.7 threshold\n\
             suggests ~4 states suffice\n",
            t.render()
        )
    }

    /// Monotonicity check used by tests: recall gain never decreases.
    pub fn recall_monotone(&self) -> bool {
        self.samples
            .windows(2)
            .all(|w| w[1].one_minus_rel_recall >= w[0].one_minus_rel_recall - 1e-9)
    }
}
