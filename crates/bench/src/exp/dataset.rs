//! Dataset statistics (§7.1): Table 7.1 (YouTube10000 statistics),
//! Fig 7.1 (distribution of videos by comment-page count) and Fig 7.2
//! (states/events growth with crawled videos).

use crate::exp::crawl_perf::CrawlPerfData;
use crate::scale::Scale;
use crate::util::{aggregate, TableFmt};
use ajax_webgen::video_meta;
use serde::Serialize;

// ---- Table 7.1 -------------------------------------------------------------

/// Table 7.1: statistics of the crawled dataset.
#[derive(Debug, Clone, Serialize)]
pub struct Table71 {
    pub pages: u32,
    pub total_states: u64,
    pub total_events: u64,
    pub avg_events_per_page: f64,
    pub events_leading_to_network: u64,
    pub reduction_vs_all_events: f64,
}

/// Computes Table 7.1 from the AJAX crawl.
pub fn table7_1(data: &CrawlPerfData) -> Table71 {
    let ajax = aggregate(&data.ajax);
    Table71 {
        pages: data.ajax.len() as u32,
        total_states: ajax.states,
        total_events: ajax.events_fired,
        avg_events_per_page: ajax.events_fired as f64 / data.ajax.len() as f64,
        events_leading_to_network: ajax.ajax_network_calls,
        reduction_vs_all_events: 1.0
            - ajax.ajax_network_calls as f64 / ajax.events_fired.max(1) as f64,
    }
}

impl Table71 {
    /// Renders the paper's rows.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec!["Parameter", "Value"]);
        t.row(vec!["Number of Pages".to_string(), self.pages.to_string()]);
        t.row(vec![
            "Total Number of States".to_string(),
            self.total_states.to_string(),
        ]);
        t.row(vec![
            "Total Number of Events".to_string(),
            self.total_events.to_string(),
        ]);
        t.row(vec![
            "Avg. Number of Events per Page".to_string(),
            format!("{:.3}", self.avg_events_per_page),
        ]);
        t.row(vec![
            "Events leading to Network Communication".to_string(),
            self.events_leading_to_network.to_string(),
        ]);
        format!(
            "Table 7.1 — Dataset statistics\n{}\n\
             paper reference: 10000 pages, 41572 states, 187980 events, 18.798 events/page,\n\
             37349 network events (~80% reduction; here {:.0}%)\n",
            t.render(),
            self.reduction_vs_all_events * 100.0
        )
    }
}

// ---- Fig 7.1 ---------------------------------------------------------------

/// Fig 7.1: distribution of videos over comment-page counts.
#[derive(Debug, Clone, Serialize)]
pub struct Fig71 {
    /// `counts[k-1]` = number of videos with `k` comment pages.
    pub counts: Vec<u32>,
}

/// Computes the distribution from the generator's ground truth (the paper's
/// figure is likewise a dataset statistic, not a crawler measurement).
pub fn fig7_1(scale: &Scale) -> Fig71 {
    let spec = scale.spec();
    let max = spec.max_comment_pages as usize;
    let mut counts = vec![0u32; max];
    for video in 0..scale.crawl_pages.min(spec.num_videos) {
        let pages = video_meta(&spec, video).comment_pages as usize;
        counts[pages - 1] += 1;
    }
    Fig71 { counts }
}

impl Fig71 {
    /// Renders the histogram with ASCII bars.
    pub fn render(&self) -> String {
        let total: u32 = self.counts.iter().sum();
        let peak = self.counts.iter().copied().max().unwrap_or(1).max(1);
        let mut out = String::from("Fig 7.1 — Videos per number of comment pages\n");
        for (i, count) in self.counts.iter().enumerate() {
            let bar = "#".repeat((count * 40 / peak) as usize);
            out.push_str(&format!("{:>3} pages  {:>6}  {}\n", i + 1, count, bar));
        }
        out.push_str(&format!(
            "total {total} videos; paper reference: mode at 1 page, long tail\n"
        ));
        out
    }
}

// ---- Fig 7.2 ---------------------------------------------------------------

/// Fig 7.2: cumulative states and events vs number of crawled videos.
#[derive(Debug, Clone, Serialize)]
pub struct Fig72 {
    /// `(videos, states, events)` at each subset boundary.
    pub rows: Vec<(u32, u64, u64)>,
}

/// Prefix-sums the AJAX per-page stats at the scale's growth subsets.
pub fn fig7_2(scale: &Scale, data: &CrawlPerfData) -> Fig72 {
    let mut rows = Vec::new();
    let mut states = 0u64;
    let mut events = 0u64;
    let mut boundaries = scale.growth_subsets.iter().peekable();
    for (i, page) in data.ajax.iter().enumerate() {
        states += page.states;
        events += page.events_fired;
        let n = (i + 1) as u32;
        if boundaries.peek() == Some(&&n) {
            rows.push((n, states, events));
            boundaries.next();
        }
    }
    Fig72 { rows }
}

impl Fig72 {
    /// Renders the growth series.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec!["videos", "states", "events"]);
        for (videos, states, events) in &self.rows {
            t.row(vec![
                videos.to_string(),
                states.to_string(),
                events.to_string(),
            ]);
        }
        format!(
            "Fig 7.2 — States and events vs crawled videos\n{}\n\
             paper reference: events grow faster than states\n",
            t.render()
        )
    }
}
