//! Index-layout performance (this repo's columnar-index PR, not a thesis
//! figure): build throughput (states/sec, bytes/state with honest
//! capacities), query latency (p50/p95 over the 100-query webgen workload),
//! and the measured kernel speedup over the frozen pre-columnar reference
//! (`ajax_index::reference`) — on both synthetic sites.
//!
//! The standalone binary additionally writes `BENCH_index.json` at the
//! working directory root, seeding the repo's perf-baseline trajectory.

use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::model::AppModel;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::{build_index_parallel, planned_build_path, IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::reference::{ref_search, RefIndex, RefIndexBuilder};
use ajax_index::{load_index, save_index, save_index_v3};
use ajax_net::Server;
use ajax_webgen::{query_workload, NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Timed query passes over the workload (each pass evaluates all 100
/// queries); latency percentiles come from the pooled per-query samples.
const QUERY_REPS: usize = 3;
/// Index-build repetitions; the reported time is the fastest (least noisy).
const BUILD_REPS: usize = 3;
/// Cold-start (open → first query) repetitions; the reported time is the
/// fastest. Repeats run against a warm page cache, so this isolates the
/// *decode* cost difference — v3 must deserialize the whole JSON payload,
/// v4 maps the segment and decodes nothing up front.
const COLD_REPS: usize = 3;

/// The corpus scale the committed v4 on-disk ceilings were measured at —
/// the CI bench-smoke invocation (`exp_index_perf --pages 40`). The gate
/// only fires at this scale: bytes/state shifts with corpus size as the
/// dictionary amortizes.
const V4_BASELINE_PAGES: u32 = 40;
/// Committed v4 bytes/state ceilings per site at [`V4_BASELINE_PAGES`]
/// (measured value + ~25% headroom). A run at the baseline scale that
/// regresses above its ceiling aborts the bench, failing CI — encoder
/// bloat cannot land silently.
const V4_BYTES_PER_STATE_CEILING: &[(&str, f64)] = &[("vidshare", 1110.0), ("news", 737.0)];

/// One site's build + query measurements.
#[derive(Debug, Clone, Serialize)]
pub struct SitePerf {
    pub site: String,
    pub pages: usize,
    pub states: u64,
    pub terms: usize,
    /// Honest resident size: dictionary strings, posting columns, position
    /// arena, page tables — content bytes, identical across build paths.
    pub index_bytes: usize,
    pub bytes_per_state: f64,
    /// On-disk size of the same index persisted as a legacy v3 (framed
    /// JSON) artifact.
    pub v3_disk_bytes: u64,
    /// On-disk size persisted as the current v4 compressed segment.
    pub v4_disk_bytes: u64,
    /// `v4_disk_bytes / states` — the number the committed CI ceiling
    /// ([`V4_BYTES_PER_STATE_CEILING`]) gates.
    pub v4_bytes_per_state: f64,
    /// `v3_disk_bytes / v4_disk_bytes` (> 1 means v4 is smaller).
    pub v4_compression_vs_v3: f64,
    /// Cold start, v3: open + full JSON deserialize + first workload query.
    pub cold_start_v3_micros: f64,
    /// Cold start, v4: open + mmap + first workload query (postings decode
    /// lazily, so this is near-constant in corpus size).
    pub cold_start_v4_micros: f64,
    /// `cold_start_v3_micros / cold_start_v4_micros` (> 1: v4 faster).
    pub cold_start_speedup: f64,
    /// Sequential single-threaded build, best of [`BUILD_REPS`].
    pub build_ms: f64,
    pub build_states_per_sec: f64,
    /// Same corpus through `build_index_parallel` with 4 segment builders.
    pub parallel_build_ms: f64,
    /// Which path `build_index_parallel` actually took ("serial" when the
    /// corpus is under the min-states threshold, "parallel" otherwise) —
    /// small corpora fall back, so `parallel_build_ms` may be timing the
    /// serial builder.
    pub build_path: String,
    /// Pooled per-query wall latency over the 100-query workload.
    pub query_p50_micros: f64,
    pub query_p95_micros: f64,
    /// Total results across one pass of the workload (sanity anchor: must
    /// match the reference engine exactly).
    pub total_results: u64,
}

/// The columnar kernel vs the pre-columnar reference on the same corpus
/// and workload.
#[derive(Debug, Clone, Serialize)]
pub struct KernelSpeedup {
    pub site: String,
    /// Full-workload wall time on the frozen reference implementation.
    pub reference_ms: f64,
    /// Full-workload wall time on the columnar kernel.
    pub columnar_ms: f64,
    /// `reference_ms / columnar_ms` (> 1 means the kernel is faster).
    pub speedup: f64,
}

/// The whole experiment: per-site rows plus the vidshare kernel speedup.
#[derive(Debug, Clone, Serialize)]
pub struct IndexPerfData {
    pub sites: Vec<SitePerf>,
    pub kernel: KernelSpeedup,
}

fn crawl(server: Arc<dyn Server>, urls: &[String]) -> Vec<AppModel> {
    let partitions = partition_urls(urls, 50);
    let mp = MpCrawler::new(server, latency(), CrawlConfig::ajax());
    mp.crawl(&partitions).into_models()
}

fn build_once(models: &[AppModel]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for m in models {
        b.add_model(m, None);
    }
    b.build()
}

fn build_ref(models: &[AppModel]) -> RefIndex {
    let mut b = RefIndexBuilder::new();
    for m in models {
        b.add_model(m, None);
    }
    b.build()
}

/// `q`-quantile of pooled samples (nearest-rank on the sorted pool).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// Cold-start probe: persist `index` in both on-disk formats, then time
/// open → first workload query for each. Before timing, the mmap-loaded v4
/// index is checked **bit-identical** to the in-memory build over the whole
/// workload (which the equivalence suite pins to the frozen reference
/// oracle). Returns `(v3_disk, v4_disk, v3_micros, v4_micros)`.
fn measure_cold_start(
    site: &str,
    index: &InvertedIndex,
    queries: &[Query],
    weights: &RankWeights,
) -> (u64, u64, f64, f64) {
    let dir = std::env::temp_dir();
    let pid = std::process::id();
    let v3_path = dir.join(format!("ajax-bench-{pid}-{site}.v3.ajx"));
    let v4_path = dir.join(format!("ajax-bench-{pid}-{site}.v4.ajx"));
    save_index_v3(&v3_path, index).expect("persist v3 artifact");
    save_index(&v4_path, index).expect("persist v4 artifact");
    let v3_disk = std::fs::metadata(&v3_path).expect("v3 metadata").len();
    let v4_disk = std::fs::metadata(&v4_path).expect("v4 metadata").len();

    let mapped = load_index(&v4_path).expect("load v4 artifact");
    for q in queries {
        let mem = search(index, q, weights);
        let map = search(&mapped, q, weights);
        assert_eq!(
            mem.len(),
            map.len(),
            "{site}: result count for {:?}",
            q.terms
        );
        for (a, b) in mem.iter().zip(map.iter()) {
            assert_eq!(a.url, b.url, "{site}: url for {:?}", q.terms);
            assert_eq!(a.doc, b.doc, "{site}: doc for {:?}", q.terms);
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{site}: score bits for {:?}",
                q.terms
            );
        }
    }
    drop(mapped);

    let probe = &queries[0];
    let expected = search(index, probe, weights).len();
    let time_open = |path: &std::path::Path| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..COLD_REPS {
            let t0 = Instant::now();
            let loaded = load_index(path).expect("load persisted index");
            let results = search(&loaded, probe, weights);
            best = best.min(t0.elapsed().as_secs_f64());
            // Both backings must answer the probe query identically, or the
            // two cold-start numbers are not measuring the same work.
            assert_eq!(results.len(), expected, "cold-start result drift ({site})");
            std::hint::black_box(results.len());
        }
        best * 1e6
    };
    let v3_micros = time_open(&v3_path);
    let v4_micros = time_open(&v4_path);
    let _ = std::fs::remove_file(&v3_path);
    let _ = std::fs::remove_file(&v4_path);
    (v3_disk, v4_disk, v3_micros, v4_micros)
}

fn measure_site(site: &str, models: &[AppModel], queries: &[Query]) -> SitePerf {
    // Build throughput: fastest of BUILD_REPS sequential builds.
    let mut build_s = f64::INFINITY;
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        let index = build_once(models);
        build_s = build_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(index.total_states);
    }
    let index = build_once(models);

    let mut parallel_s = f64::INFINITY;
    let refs: Vec<(&AppModel, Option<f64>)> = models.iter().map(|m| (m, None)).collect();
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        let par = build_index_parallel(&refs, None, 4);
        parallel_s = parallel_s.min(t0.elapsed().as_secs_f64());
        // Canonical layout + content-derived sizing: both build paths must
        // report the same resident footprint (this regressed once, when
        // `approx_bytes` summed `Vec::capacity` and the answer depended on
        // each path's reallocation history).
        assert_eq!(
            par.approx_bytes(),
            index.approx_bytes(),
            "serial and parallel builds must report identical approx_bytes ({site})"
        );
        std::hint::black_box(par.total_states);
    }

    // Query latency: pooled per-query samples across QUERY_REPS passes.
    let weights = RankWeights::default();
    let mut samples = Vec::with_capacity(queries.len() * QUERY_REPS);
    let mut total_results = 0u64;
    for rep in 0..QUERY_REPS {
        for q in queries {
            let t0 = Instant::now();
            let results = search(&index, q, &weights);
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            if rep == 0 {
                total_results += results.len() as u64;
            }
            std::hint::black_box(results.len());
        }
    }

    let states = index.total_states;
    let bytes = index.approx_bytes();
    let (v3_disk, v4_disk, cold_v3, cold_v4) = measure_cold_start(site, &index, queries, &weights);
    SitePerf {
        site: site.to_string(),
        pages: models.len(),
        states,
        terms: index.term_count(),
        index_bytes: bytes,
        bytes_per_state: bytes as f64 / states.max(1) as f64,
        v3_disk_bytes: v3_disk,
        v4_disk_bytes: v4_disk,
        v4_bytes_per_state: v4_disk as f64 / states.max(1) as f64,
        v4_compression_vs_v3: v3_disk as f64 / (v4_disk as f64).max(1.0),
        cold_start_v3_micros: cold_v3,
        cold_start_v4_micros: cold_v4,
        cold_start_speedup: cold_v3 / cold_v4.max(1e-9),
        build_ms: build_s * 1e3,
        build_states_per_sec: states as f64 / build_s.max(1e-12),
        parallel_build_ms: parallel_s * 1e3,
        build_path: planned_build_path(&refs, None, 4).as_str().to_string(),
        query_p50_micros: percentile(&mut samples, 0.50),
        query_p95_micros: percentile(&mut samples, 0.95),
        total_results,
    }
}

fn measure_speedup(site: &str, models: &[AppModel], queries: &[Query]) -> KernelSpeedup {
    let index = build_once(models);
    let reference = build_ref(models);
    let weights = RankWeights::default();

    // Sanity: the two engines must agree result-for-result before their
    // times are comparable.
    for q in queries {
        let new = search(&index, q, &weights);
        let old = ref_search(&reference, q, &weights);
        assert_eq!(new.len(), old.len(), "engines disagree on {:?}", q.terms);
    }

    let time_workload = |f: &dyn Fn(&Query) -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..QUERY_REPS {
            let t0 = Instant::now();
            let mut n = 0usize;
            for q in queries {
                n += f(q);
            }
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(n);
        }
        best * 1e3
    };
    let columnar_ms = time_workload(&|q| search(&index, q, &weights).len());
    let reference_ms = time_workload(&|q| ref_search(&reference, q, &weights).len());

    KernelSpeedup {
        site: site.to_string(),
        reference_ms,
        columnar_ms,
        speedup: reference_ms / columnar_ms.max(1e-12),
    }
}

/// Crawls `pages` pages of each site and measures everything.
pub fn collect(pages: u32) -> IndexPerfData {
    let queries: Vec<Query> = query_workload()
        .iter()
        .map(|spec| Query::parse(&spec.text))
        .collect();

    eprintln!("[index_perf] crawling {pages} vidshare pages…");
    let vid_spec = VidShareSpec::small(pages);
    let vid_urls: Vec<String> = (0..pages).map(|v| vid_spec.watch_url(v)).collect();
    let vid_models = crawl(Arc::new(VidShareServer::new(vid_spec)), &vid_urls);

    eprintln!("[index_perf] crawling {pages} news pages…");
    let news_spec = NewsSpec::small(pages);
    let news_urls: Vec<String> = (0..pages).map(|p| news_spec.page_url(p)).collect();
    let news_models = crawl(Arc::new(NewsShareServer::new(news_spec)), &news_urls);

    eprintln!("[index_perf] measuring builds and queries…");
    let sites = vec![
        measure_site("vidshare", &vid_models, &queries),
        measure_site("news", &news_models, &queries),
    ];
    if pages == V4_BASELINE_PAGES {
        enforce_v4_ceilings(&sites);
    }
    let kernel = measure_speedup("vidshare", &vid_models, &queries);
    IndexPerfData { sites, kernel }
}

/// Aborts the bench when a site's v4 on-disk density regresses above its
/// committed ceiling. Only meaningful at [`V4_BASELINE_PAGES`]; `collect`
/// gates the call.
fn enforce_v4_ceilings(sites: &[SitePerf]) {
    for s in sites {
        let Some((_, ceiling)) = V4_BYTES_PER_STATE_CEILING
            .iter()
            .find(|(name, _)| *name == s.site)
        else {
            continue;
        };
        assert!(
            s.v4_bytes_per_state <= *ceiling,
            "v4 segment regression: {} packs {:.1} B/state on disk, above the \
             committed ceiling of {:.1} B/state at --pages {} — the encoder got \
             fatter; fix it or re-commit the baseline deliberately",
            s.site,
            s.v4_bytes_per_state,
            ceiling,
            V4_BASELINE_PAGES,
        );
        eprintln!(
            "[index_perf] v4 baseline ok: {} {:.1} B/state <= ceiling {:.1}",
            s.site, s.v4_bytes_per_state, ceiling
        );
    }
}

impl IndexPerfData {
    /// Renders the per-site table and the kernel-speedup line.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec![
            "site",
            "pages",
            "states",
            "terms",
            "KiB",
            "B/state",
            "v4 KiB",
            "v4 B/st",
            "v3/v4",
            "cold v3 µs",
            "cold v4 µs",
            "cold x",
            "build ms",
            "states/s",
            "par ms",
            "path",
            "q p50 µs",
            "q p95 µs",
            "results",
        ]);
        for s in &self.sites {
            t.row(vec![
                s.site.clone(),
                s.pages.to_string(),
                s.states.to_string(),
                s.terms.to_string(),
                format!("{:.1}", s.index_bytes as f64 / 1024.0),
                format!("{:.1}", s.bytes_per_state),
                format!("{:.1}", s.v4_disk_bytes as f64 / 1024.0),
                format!("{:.1}", s.v4_bytes_per_state),
                format!("x{:.1}", s.v4_compression_vs_v3),
                format!("{:.0}", s.cold_start_v3_micros),
                format!("{:.0}", s.cold_start_v4_micros),
                format!("x{:.1}", s.cold_start_speedup),
                format!("{:.2}", s.build_ms),
                format!("{:.0}", s.build_states_per_sec),
                format!("{:.2}", s.parallel_build_ms),
                s.build_path.clone(),
                format!("{:.1}", s.query_p50_micros),
                format!("{:.1}", s.query_p95_micros),
                s.total_results.to_string(),
            ]);
        }
        let cold: String = self
            .sites
            .iter()
            .map(|s| {
                format!(
                    "cold start ({}): v4 mmap {:.0} µs vs v3 deserialize {:.0} µs (x{:.1}); \
                     on disk v4 packs x{:.1} tighter than v3\n",
                    s.site,
                    s.cold_start_v4_micros,
                    s.cold_start_v3_micros,
                    s.cold_start_speedup,
                    s.v4_compression_vs_v3,
                )
            })
            .collect();
        format!(
            "Index performance — columnar layout, 100-query workload (wall clock)\n{}\n\
             {cold}\
             kernel speedup ({}): x{:.2} over the pre-columnar reference \
             ({:.2} ms → {:.2} ms for the full workload)\n",
            t.render(),
            self.kernel.site,
            self.kernel.speedup,
            self.kernel.reference_ms,
            self.kernel.columnar_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.50), 3.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        assert_eq!(percentile([].as_mut_slice(), 0.5), 0.0);
    }

    #[test]
    fn tiny_run_produces_sane_numbers() {
        let data = collect(6);
        assert_eq!(data.sites.len(), 2);
        for s in &data.sites {
            assert_eq!(s.pages, 6);
            assert!(s.states >= s.pages as u64);
            assert!(s.terms > 0);
            assert!(s.index_bytes > 0);
            assert!(s.bytes_per_state > 0.0);
            assert!(s.build_states_per_sec > 0.0);
            assert!(s.query_p95_micros >= s.query_p50_micros);
            // 6 pages is far below the min-states threshold.
            assert_eq!(s.build_path, "serial");
            // On-disk + cold-start columns: the v4 segment must exist, be
            // smaller than the v3 JSON, and open in measurable time.
            assert!(s.v4_disk_bytes > 0);
            assert!(s.v4_disk_bytes < s.v3_disk_bytes);
            assert!(s.v4_bytes_per_state > 0.0);
            assert!(s.v4_compression_vs_v3 > 1.0);
            assert!(s.cold_start_v3_micros > 0.0);
            assert!(s.cold_start_v4_micros > 0.0);
        }
        assert!(data.kernel.speedup > 0.0);
        assert!(data.render().contains("kernel speedup"));
        assert!(data.render().contains("cold start"));
    }
}
