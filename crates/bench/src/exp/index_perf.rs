//! Index-layout performance (this repo's columnar-index PR, not a thesis
//! figure): build throughput (states/sec, bytes/state with honest
//! capacities), query latency (p50/p95 over the 100-query webgen workload),
//! and the measured kernel speedup over the frozen pre-columnar reference
//! (`ajax_index::reference`) — on both synthetic sites.
//!
//! The standalone binary additionally writes `BENCH_index.json` at the
//! working directory root, seeding the repo's perf-baseline trajectory.

use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::model::AppModel;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::{build_index_parallel, planned_build_path, IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use ajax_index::reference::{ref_search, RefIndex, RefIndexBuilder};
use ajax_net::Server;
use ajax_webgen::{query_workload, NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Timed query passes over the workload (each pass evaluates all 100
/// queries); latency percentiles come from the pooled per-query samples.
const QUERY_REPS: usize = 3;
/// Index-build repetitions; the reported time is the fastest (least noisy).
const BUILD_REPS: usize = 3;

/// One site's build + query measurements.
#[derive(Debug, Clone, Serialize)]
pub struct SitePerf {
    pub site: String,
    pub pages: usize,
    pub states: u64,
    pub terms: usize,
    /// Honest resident size: dictionary strings, posting columns, position
    /// arena, page tables — capacities, not lengths.
    pub index_bytes: usize,
    pub bytes_per_state: f64,
    /// Sequential single-threaded build, best of [`BUILD_REPS`].
    pub build_ms: f64,
    pub build_states_per_sec: f64,
    /// Same corpus through `build_index_parallel` with 4 segment builders.
    pub parallel_build_ms: f64,
    /// Which path `build_index_parallel` actually took ("serial" when the
    /// corpus is under the min-states threshold, "parallel" otherwise) —
    /// small corpora fall back, so `parallel_build_ms` may be timing the
    /// serial builder.
    pub build_path: String,
    /// Pooled per-query wall latency over the 100-query workload.
    pub query_p50_micros: f64,
    pub query_p95_micros: f64,
    /// Total results across one pass of the workload (sanity anchor: must
    /// match the reference engine exactly).
    pub total_results: u64,
}

/// The columnar kernel vs the pre-columnar reference on the same corpus
/// and workload.
#[derive(Debug, Clone, Serialize)]
pub struct KernelSpeedup {
    pub site: String,
    /// Full-workload wall time on the frozen reference implementation.
    pub reference_ms: f64,
    /// Full-workload wall time on the columnar kernel.
    pub columnar_ms: f64,
    /// `reference_ms / columnar_ms` (> 1 means the kernel is faster).
    pub speedup: f64,
}

/// The whole experiment: per-site rows plus the vidshare kernel speedup.
#[derive(Debug, Clone, Serialize)]
pub struct IndexPerfData {
    pub sites: Vec<SitePerf>,
    pub kernel: KernelSpeedup,
}

fn crawl(server: Arc<dyn Server>, urls: &[String]) -> Vec<AppModel> {
    let partitions = partition_urls(urls, 50);
    let mp = MpCrawler::new(server, latency(), CrawlConfig::ajax());
    mp.crawl(&partitions).into_models()
}

fn build_once(models: &[AppModel]) -> InvertedIndex {
    let mut b = IndexBuilder::new();
    for m in models {
        b.add_model(m, None);
    }
    b.build()
}

fn build_ref(models: &[AppModel]) -> RefIndex {
    let mut b = RefIndexBuilder::new();
    for m in models {
        b.add_model(m, None);
    }
    b.build()
}

/// `q`-quantile of pooled samples (nearest-rank on the sorted pool).
fn percentile(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

fn measure_site(site: &str, models: &[AppModel], queries: &[Query]) -> SitePerf {
    // Build throughput: fastest of BUILD_REPS sequential builds.
    let mut build_s = f64::INFINITY;
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        let index = build_once(models);
        build_s = build_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(index.total_states);
    }
    let index = build_once(models);

    let mut parallel_s = f64::INFINITY;
    let refs: Vec<(&AppModel, Option<f64>)> = models.iter().map(|m| (m, None)).collect();
    for _ in 0..BUILD_REPS {
        let t0 = Instant::now();
        let par = build_index_parallel(&refs, None, 4);
        parallel_s = parallel_s.min(t0.elapsed().as_secs_f64());
        std::hint::black_box(par.total_states);
    }

    // Query latency: pooled per-query samples across QUERY_REPS passes.
    let weights = RankWeights::default();
    let mut samples = Vec::with_capacity(queries.len() * QUERY_REPS);
    let mut total_results = 0u64;
    for rep in 0..QUERY_REPS {
        for q in queries {
            let t0 = Instant::now();
            let results = search(&index, q, &weights);
            samples.push(t0.elapsed().as_secs_f64() * 1e6);
            if rep == 0 {
                total_results += results.len() as u64;
            }
            std::hint::black_box(results.len());
        }
    }

    let states = index.total_states;
    let bytes = index.approx_bytes();
    SitePerf {
        site: site.to_string(),
        pages: models.len(),
        states,
        terms: index.term_count(),
        index_bytes: bytes,
        bytes_per_state: bytes as f64 / states.max(1) as f64,
        build_ms: build_s * 1e3,
        build_states_per_sec: states as f64 / build_s.max(1e-12),
        parallel_build_ms: parallel_s * 1e3,
        build_path: planned_build_path(&refs, None, 4).as_str().to_string(),
        query_p50_micros: percentile(&mut samples, 0.50),
        query_p95_micros: percentile(&mut samples, 0.95),
        total_results,
    }
}

fn measure_speedup(site: &str, models: &[AppModel], queries: &[Query]) -> KernelSpeedup {
    let index = build_once(models);
    let reference = build_ref(models);
    let weights = RankWeights::default();

    // Sanity: the two engines must agree result-for-result before their
    // times are comparable.
    for q in queries {
        let new = search(&index, q, &weights);
        let old = ref_search(&reference, q, &weights);
        assert_eq!(new.len(), old.len(), "engines disagree on {:?}", q.terms);
    }

    let time_workload = |f: &dyn Fn(&Query) -> usize| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..QUERY_REPS {
            let t0 = Instant::now();
            let mut n = 0usize;
            for q in queries {
                n += f(q);
            }
            best = best.min(t0.elapsed().as_secs_f64());
            std::hint::black_box(n);
        }
        best * 1e3
    };
    let columnar_ms = time_workload(&|q| search(&index, q, &weights).len());
    let reference_ms = time_workload(&|q| ref_search(&reference, q, &weights).len());

    KernelSpeedup {
        site: site.to_string(),
        reference_ms,
        columnar_ms,
        speedup: reference_ms / columnar_ms.max(1e-12),
    }
}

/// Crawls `pages` pages of each site and measures everything.
pub fn collect(pages: u32) -> IndexPerfData {
    let queries: Vec<Query> = query_workload()
        .iter()
        .map(|spec| Query::parse(&spec.text))
        .collect();

    eprintln!("[index_perf] crawling {pages} vidshare pages…");
    let vid_spec = VidShareSpec::small(pages);
    let vid_urls: Vec<String> = (0..pages).map(|v| vid_spec.watch_url(v)).collect();
    let vid_models = crawl(Arc::new(VidShareServer::new(vid_spec)), &vid_urls);

    eprintln!("[index_perf] crawling {pages} news pages…");
    let news_spec = NewsSpec::small(pages);
    let news_urls: Vec<String> = (0..pages).map(|p| news_spec.page_url(p)).collect();
    let news_models = crawl(Arc::new(NewsShareServer::new(news_spec)), &news_urls);

    eprintln!("[index_perf] measuring builds and queries…");
    let sites = vec![
        measure_site("vidshare", &vid_models, &queries),
        measure_site("news", &news_models, &queries),
    ];
    let kernel = measure_speedup("vidshare", &vid_models, &queries);
    IndexPerfData { sites, kernel }
}

impl IndexPerfData {
    /// Renders the per-site table and the kernel-speedup line.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec![
            "site",
            "pages",
            "states",
            "terms",
            "KiB",
            "B/state",
            "build ms",
            "states/s",
            "par ms",
            "path",
            "q p50 µs",
            "q p95 µs",
            "results",
        ]);
        for s in &self.sites {
            t.row(vec![
                s.site.clone(),
                s.pages.to_string(),
                s.states.to_string(),
                s.terms.to_string(),
                format!("{:.1}", s.index_bytes as f64 / 1024.0),
                format!("{:.1}", s.bytes_per_state),
                format!("{:.2}", s.build_ms),
                format!("{:.0}", s.build_states_per_sec),
                format!("{:.2}", s.parallel_build_ms),
                s.build_path.clone(),
                format!("{:.1}", s.query_p50_micros),
                format!("{:.1}", s.query_p95_micros),
                s.total_results.to_string(),
            ]);
        }
        format!(
            "Index performance — columnar layout, 100-query workload (wall clock)\n{}\n\
             kernel speedup ({}): x{:.2} over the pre-columnar reference \
             ({:.2} ms → {:.2} ms for the full workload)\n",
            t.render(),
            self.kernel.site,
            self.kernel.speedup,
            self.kernel.reference_ms,
            self.kernel.columnar_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(percentile(&mut v, 0.50), 3.0);
        assert_eq!(percentile(&mut v, 1.0), 5.0);
        assert_eq!(percentile(&mut [].as_mut_slice(), 0.5), 0.0);
    }

    #[test]
    fn tiny_run_produces_sane_numbers() {
        let data = collect(6);
        assert_eq!(data.sites.len(), 2);
        for s in &data.sites {
            assert_eq!(s.pages, 6);
            assert!(s.states >= s.pages as u64);
            assert!(s.terms > 0);
            assert!(s.index_bytes > 0);
            assert!(s.bytes_per_state > 0.0);
            assert!(s.build_states_per_sec > 0.0);
            assert!(s.query_p95_micros >= s.query_p50_micros);
            // 6 pages is far below the min-states threshold.
            assert_eq!(s.build_path, "serial");
        }
        assert!(data.kernel.speedup > 0.0);
        assert!(data.render().contains("kernel speedup"));
    }
}
