//! Distributed serving (the `ajax-dist` subsystem): QPS scaling across
//! shard counts, tail latency under an injected slow shard, and the effect
//! of hedged requests — all over the thesis' 100-query VidShare workload.
//!
//! Three phases, each against in-process (thread-mode) shard servers
//! speaking the real TCP protocol through the coordinator:
//!
//! 1. **scaling** — the workload runs through 1-, 2- and 4-shard clusters
//!    (result cache off, so every query crosses the wire and evaluates);
//!    each cluster's merged results are checked bit-identical to an
//!    in-process broker over the same corpus.
//! 2. **fault injection** — a 2-shard cluster where every reply chunk from
//!    shard 1 is slowed through a [`ajax_net::FaultProxy`]; p99 is measured
//!    with hedging off, then with hedging on (the hedge path re-issues on a
//!    direct connection, bypassing the chaos proxy), results identical in
//!    both runs.
//! 3. **determinism** — two independently launched 2-shard clusters run the
//!    workload; every merged result list must be bit-identical.

use crate::util::TableFmt;
use ajax_crawl::model::AppModel;
use ajax_dist::{partition_models, ClusterConfig, DistCluster};
use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_index::{BrokerResult, Query, QueryBroker, RankWeights};
use ajax_net::{Fault, FaultPlan, FaultRule, ProxyConfig, Url};
use ajax_serve::ServeConfig;
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

/// Seed for the fault plan (the sweep is deterministic given this).
const FAULT_SEED: u64 = 11;
/// Every reply chunk from the slow shard sleeps `(factor - 1) ×
/// slow_chunk_micros`.
const SLOW_FACTOR: f64 = 20.0;
/// Hedge fires this long after ship when a shard hasn't answered.
const HEDGE_AFTER_MICROS: u64 = 2_000;

/// One shard-count cell of the scaling phase.
#[derive(Debug, Clone, Serialize)]
pub struct ShardScaling {
    pub shards: usize,
    pub queries: usize,
    pub wall_micros: u64,
    pub qps: f64,
    pub p50_micros: f64,
    pub p99_micros: f64,
    /// Merged results bit-identical to the in-process broker (documents,
    /// order, score bits).
    pub matches_single_process: bool,
}

/// The slow-shard cell: p99 with hedging off vs on.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCell {
    pub shards: usize,
    pub slow_factor: f64,
    pub hedge_after_micros: u64,
    pub p99_hedge_off_micros: f64,
    pub p99_hedge_on_micros: f64,
    /// Hedge requests actually issued during the hedge-on run.
    pub hedges_fired: u64,
    /// Both runs returned complete (non-degraded) result sets — hedging
    /// affects latency, never results.
    pub full_results: bool,
}

/// The whole experiment.
#[derive(Debug, Clone, Serialize)]
pub struct DistributedData {
    pub videos: u64,
    pub queries: u64,
    pub scaling: Vec<ShardScaling>,
    pub fault: FaultCell,
    /// Two independent cluster launches produced bit-identical merged
    /// results for the entire workload.
    pub deterministic: bool,
}

struct Corpus {
    models: Vec<AppModel>,
    pagerank: std::collections::HashMap<String, f64>,
    weights: RankWeights,
}

fn build_corpus(videos: u32) -> Corpus {
    let spec = VidShareSpec::small(videos);
    let start = Url::parse(&spec.watch_url(0));
    let site = Arc::new(VidShareServer::new(spec));
    let mut config = EngineConfig::ajax(videos as usize);
    config.keep_models = true;
    let engine = AjaxSearchEngine::build(site, &start, config);
    Corpus {
        pagerank: engine.graph.pagerank.clone(),
        weights: engine.weights(),
        models: engine.models,
    }
}

fn launch(corpus: &Corpus, shards: usize, config: ClusterConfig) -> DistCluster {
    let partitions = partition_models(
        &corpus.models,
        |url| corpus.pagerank.get(url).copied(),
        shards,
        None,
    );
    DistCluster::launch_threads(partitions, corpus.weights, config).expect("cluster launch")
}

/// Serving config for honest QPS: cache off, admission uncapped.
fn bench_serve_config() -> ServeConfig {
    ServeConfig::default()
        .with_cache_capacity(0)
        .with_max_in_flight(usize::MAX)
}

/// Runs the workload sequentially, returning (per-query µs, merged results,
/// any degraded).
fn run_workload(
    cluster: &DistCluster,
    workload: &[&str],
) -> (Vec<f64>, Vec<Vec<BrokerResult>>, bool) {
    let mut samples = Vec::with_capacity(workload.len());
    let mut all_results = Vec::with_capacity(workload.len());
    let mut degraded = false;
    for q in workload {
        let t0 = std::time::Instant::now();
        let resp = cluster.server.search(q).expect("admitted");
        samples.push(t0.elapsed().as_secs_f64() * 1e6);
        degraded |= resp.degraded;
        all_results.push(resp.results);
    }
    (samples, all_results, degraded)
}

/// Partition-invariant bit-equality of two merged result lists: same
/// documents (`url`, `doc.state`), same order, same score bits. `shard` and
/// `doc.page` are partition-relative provenance and excluded.
fn results_identical(a: &[Vec<BrokerResult>], b: &[Vec<BrokerResult>]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b.iter()).all(|(ra, rb)| {
            ra.len() == rb.len()
                && ra.iter().zip(rb.iter()).all(|(x, y)| {
                    x.url == y.url
                        && x.doc.state == y.doc.state
                        && x.score.to_bits() == y.score.to_bits()
                })
        })
}

fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    sorted[((sorted.len() - 1) as f64 * q).round() as usize]
}

/// Runs all three phases over `videos` VidShare pages.
pub fn collect(videos: u32) -> DistributedData {
    let workload = query_phrases();
    let corpus = build_corpus(videos);

    // In-process reference: a single broker over the whole corpus.
    let mut broker = QueryBroker::new(partition_models(
        &corpus.models,
        |url| corpus.pagerank.get(url).copied(),
        1,
        None,
    ));
    broker.weights = corpus.weights;
    let reference: Vec<Vec<BrokerResult>> = workload
        .iter()
        .map(|q| broker.search(&Query::parse(q)))
        .collect();

    // Phase 1: QPS scaling across shard counts.
    let mut scaling = Vec::new();
    for shards in [1usize, 2, 4] {
        eprintln!("[distributed] scaling: {shards} shard(s)…");
        let mut cluster = launch(
            &corpus,
            shards,
            ClusterConfig {
                serve: bench_serve_config(),
                hedge_after_micros: None,
                chaos: None,
            },
        );
        let t0 = std::time::Instant::now();
        let (samples, results, _) = run_workload(&cluster, workload);
        let wall_micros = t0.elapsed().as_micros() as u64;
        cluster.shutdown();
        scaling.push(ShardScaling {
            shards,
            queries: workload.len(),
            wall_micros,
            qps: workload.len() as f64 / (wall_micros as f64 / 1e6).max(1e-9),
            p50_micros: percentile(&samples, 0.50),
            p99_micros: percentile(&samples, 0.99),
            matches_single_process: results_identical(&results, &reference),
        });
    }

    // Phase 2: slow shard 1, hedging off vs on.
    let chaos = ProxyConfig::new(FaultPlan::new(FAULT_SEED).with_rule(FaultRule::matching(
        "shard1/reply",
        1.0,
        Fault::Slow {
            factor: SLOW_FACTOR,
        },
    )));
    eprintln!("[distributed] fault cell: slow shard, hedging off…");
    let mut slow_off = launch(
        &corpus,
        2,
        ClusterConfig {
            serve: bench_serve_config(),
            hedge_after_micros: None,
            chaos: Some(chaos.clone()),
        },
    );
    let (off_samples, off_results, off_degraded) = run_workload(&slow_off, workload);
    slow_off.shutdown();

    eprintln!("[distributed] fault cell: slow shard, hedging on…");
    let mut slow_on = launch(
        &corpus,
        2,
        ClusterConfig {
            serve: bench_serve_config(),
            hedge_after_micros: Some(HEDGE_AFTER_MICROS),
            chaos: Some(chaos),
        },
    );
    let (on_samples, on_results, on_degraded) = run_workload(&slow_on, workload);
    let hedges_fired = slow_on.hedges_fired();
    slow_on.shutdown();

    let fault = FaultCell {
        shards: 2,
        slow_factor: SLOW_FACTOR,
        hedge_after_micros: HEDGE_AFTER_MICROS,
        p99_hedge_off_micros: percentile(&off_samples, 0.99),
        p99_hedge_on_micros: percentile(&on_samples, 0.99),
        hedges_fired,
        full_results: !off_degraded
            && !on_degraded
            && results_identical(&off_results, &reference)
            && results_identical(&on_results, &reference),
    };

    // Phase 3: determinism — two independent launches, identical output.
    eprintln!("[distributed] determinism: second 2-shard launch…");
    let mut first = launch(
        &corpus,
        2,
        ClusterConfig {
            serve: bench_serve_config(),
            hedge_after_micros: None,
            chaos: None,
        },
    );
    let (_, run_a, _) = run_workload(&first, workload);
    first.shutdown();
    let mut second = launch(
        &corpus,
        2,
        ClusterConfig {
            serve: bench_serve_config(),
            hedge_after_micros: None,
            chaos: None,
        },
    );
    let (_, run_b, _) = run_workload(&second, workload);
    second.shutdown();

    DistributedData {
        videos: videos as u64,
        queries: workload.len() as u64,
        scaling,
        fault,
        deterministic: results_identical(&run_a, &run_b),
    }
}

impl DistributedData {
    /// All correctness invariants hold: every shard count matched the
    /// in-process broker, the fault cell kept full results, and two
    /// launches agreed bit-for-bit.
    pub fn all_consistent(&self) -> bool {
        self.scaling.iter().all(|s| s.matches_single_process)
            && self.fault.full_results
            && self.deterministic
    }

    /// Renders the scaling table and the fault/hedging summary.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec![
            "shards", "queries", "QPS", "p50 µs", "p99 µs", "= single",
        ]);
        for s in &self.scaling {
            t.row(vec![
                s.shards.to_string(),
                s.queries.to_string(),
                format!("{:.0}", s.qps),
                format!("{:.1}", s.p50_micros),
                format!("{:.1}", s.p99_micros),
                if s.matches_single_process {
                    "yes"
                } else {
                    "NO"
                }
                .to_string(),
            ]);
        }
        format!(
            "Distributed serving — doc-partitioned shards over TCP, {} queries\n{}\n\
             slow-shard fault (x{:.0} on shard 1 replies): p99 {:.1} ms hedge-off \
             → {:.1} ms hedge-on ({} hedges fired, full results: {})\n\
             determinism across launches: {}\n",
            self.queries,
            t.render(),
            self.fault.slow_factor,
            self.fault.p99_hedge_off_micros / 1e3,
            self.fault.p99_hedge_on_micros / 1e3,
            self.fault.hedges_fired,
            if self.fault.full_results { "yes" } else { "NO" },
            if self.deterministic { "yes" } else { "NO" },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criteria of the distributed subsystem at test scale:
    /// bit-identical results for every shard count, hedging fires under a
    /// slow shard without changing results, determinism across launches.
    #[test]
    fn distributed_meets_acceptance_criteria() {
        let data = collect(10);
        assert_eq!(data.scaling.len(), 3);
        for s in &data.scaling {
            assert!(
                s.matches_single_process,
                "{} shards diverged from the in-process broker",
                s.shards
            );
            assert!(s.qps > 0.0);
        }
        assert!(
            data.fault.hedges_fired > 0,
            "a uniformly slow shard must trigger hedges"
        );
        assert!(data.fault.full_results, "hedging must not change results");
        assert!(data.deterministic, "launches must agree bit-for-bit");
        assert!(data.all_consistent());
        assert!(data.render().contains("Distributed serving"));
    }
}
