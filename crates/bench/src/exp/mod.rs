//! One module per evaluation experiment (thesis ch. 7), plus the serving
//! experiment for the `ajax-serve` subsystem.

pub mod caching;
pub mod crawl_perf;
pub mod dataset;
pub mod distributed;
pub mod durability;
pub mod faults;
pub mod index_perf;
pub mod parallel;
pub mod pruning;
pub mod queries;
pub mod serving;
pub mod threshold;
