//! One module per evaluation experiment (thesis ch. 7).

pub mod caching;
pub mod crawl_perf;
pub mod dataset;
pub mod parallel;
pub mod queries;
pub mod threshold;
