//! Crawling performance (§7.2): Table 7.2 (overhead of AJAX crawling),
//! Fig 7.3 (distribution of crawling times), Fig 7.4 (influence of the
//! number of states).

use crate::scale::Scale;
use crate::util::{aggregate, crawl_serial, secs, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, PageStats};
use serde::Serialize;

/// Per-page stats of the two serial crawls everything in §7.1/§7.2 derives
/// from.
pub struct CrawlPerfData {
    pub trad: Vec<PageStats>,
    pub ajax: Vec<PageStats>,
}

/// Crawls `scale.crawl_pages` pages traditionally and with the full AJAX
/// (hot-node) crawler.
pub fn collect(scale: &Scale) -> CrawlPerfData {
    let server = crate::util::server(&scale.spec());
    eprintln!(
        "[crawl_perf] crawling {} pages traditionally…",
        scale.crawl_pages
    );
    let trad = crawl_serial(&server, scale.crawl_pages, CrawlConfig::traditional());
    eprintln!(
        "[crawl_perf] crawling {} pages with AJAX…",
        scale.crawl_pages
    );
    let ajax = crawl_serial(&server, scale.crawl_pages, CrawlConfig::ajax());
    CrawlPerfData { trad, ajax }
}

// ---- Table 7.2 ------------------------------------------------------------

/// Table 7.2: crawling times and overhead of AJAX crawling.
#[derive(Debug, Clone, Serialize)]
pub struct Table72 {
    pub pages: u32,
    pub trad_total_ms: f64,
    pub ajax_total_ms: f64,
    pub trad_mean_page_ms: f64,
    pub ajax_mean_page_ms: f64,
    pub ajax_mean_state_ms: f64,
    pub overhead_per_page: f64,
    pub overhead_per_state: f64,
}

/// Computes Table 7.2 from the collected data.
pub fn table7_2(data: &CrawlPerfData) -> Table72 {
    let trad = aggregate(&data.trad);
    let ajax = aggregate(&data.ajax);
    let pages = data.trad.len() as f64;
    let trad_total_ms = trad.crawl_micros as f64 / 1e3;
    let ajax_total_ms = ajax.crawl_micros as f64 / 1e3;
    let ajax_mean_state_ms = ajax_total_ms / ajax.states as f64;
    let trad_mean_page_ms = trad_total_ms / pages;
    Table72 {
        pages: data.trad.len() as u32,
        trad_total_ms,
        ajax_total_ms,
        trad_mean_page_ms,
        ajax_mean_page_ms: ajax_total_ms / pages,
        ajax_mean_state_ms,
        overhead_per_page: ajax_total_ms / trad_total_ms,
        overhead_per_state: ajax_mean_state_ms / trad_mean_page_ms,
    }
}

impl Table72 {
    /// Renders the paper's rows.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec!["", "Trad. (ms)", "AJAX (ms)", "AJAX/Trad"]);
        t.row(vec![
            "Total time".to_string(),
            format!("{:.0}", self.trad_total_ms),
            format!("{:.0}", self.ajax_total_ms),
            format!("x{:.2}", self.overhead_per_page),
        ]);
        t.row(vec![
            "Mean per page".to_string(),
            format!("{:.2}", self.trad_mean_page_ms),
            format!("{:.2}", self.ajax_mean_page_ms),
            format!("x{:.2}", self.overhead_per_page),
        ]);
        t.row(vec![
            "Mean per state".to_string(),
            format!("{:.2}", self.trad_mean_page_ms),
            format!("{:.2}", self.ajax_mean_state_ms),
            format!("x{:.2}", self.overhead_per_state),
        ]);
        format!(
            "Table 7.2 — Crawling Times and Overhead of AJAX Crawling ({} pages)\n{}\n\
             paper reference: x9.43 per page, x2.27 per state\n",
            self.pages,
            t.render()
        )
    }
}

// ---- Fig 7.3 ---------------------------------------------------------------

/// Fig 7.3: distribution of per-page AJAX crawling times.
#[derive(Debug, Clone, Serialize)]
pub struct Fig73 {
    /// Bucket upper bounds in seconds (last bucket is open-ended).
    pub bucket_bounds_s: Vec<f64>,
    pub counts: Vec<u32>,
}

/// Histograms per-page crawl times into 5-second-style buckets (scaled to
/// the virtual latency so the shape matches the paper's: most pages in the
/// first bucket).
pub fn fig7_3(data: &CrawlPerfData) -> Fig73 {
    // Buckets relative to the median traditional page time ⇒ scale-free.
    let bounds_s: Vec<f64> = vec![0.25, 0.5, 1.0, 2.0, 4.0, 8.0, f64::INFINITY];
    let mut counts = vec![0u32; bounds_s.len()];
    for page in &data.ajax {
        let s = page.crawl_micros as f64 / 1e6;
        let idx = bounds_s
            .iter()
            .position(|b| s <= *b)
            .unwrap_or(bounds_s.len() - 1);
        counts[idx] += 1;
    }
    Fig73 {
        bucket_bounds_s: bounds_s,
        counts,
    }
}

impl Fig73 {
    /// Renders the histogram.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec!["crawl time (s)", "pages"]);
        let mut lower = 0.0;
        for (bound, count) in self.bucket_bounds_s.iter().zip(self.counts.iter()) {
            let label = if bound.is_infinite() {
                format!("> {lower}")
            } else {
                format!("{lower} – {bound}")
            };
            t.row(vec![label, count.to_string()]);
            lower = *bound;
        }
        format!(
            "Fig 7.3 — Distribution of per-page AJAX crawling times\n{}\n\
             paper reference: most pages crawl quickly; only many-state pages are slow\n",
            t.render()
        )
    }
}

// ---- Fig 7.4 ---------------------------------------------------------------

/// Fig 7.4: crawl time vs number of states, with and without network time.
#[derive(Debug, Clone, Serialize)]
pub struct Fig74 {
    /// One row per state count: (states, pages, mean total s, mean CPU-only s).
    pub rows: Vec<(u64, u32, f64, f64)>,
}

/// Groups pages by state count and averages their total and network-deducted
/// crawl times.
pub fn fig7_4(data: &CrawlPerfData) -> Fig74 {
    let mut grouped: std::collections::BTreeMap<u64, (u32, u64, u64)> =
        std::collections::BTreeMap::new();
    for page in &data.ajax {
        let entry = grouped.entry(page.states).or_default();
        entry.0 += 1;
        entry.1 += page.crawl_micros;
        entry.2 += page.cpu_micros;
    }
    Fig74 {
        rows: grouped
            .into_iter()
            .map(|(states, (pages, total, cpu))| {
                (
                    states,
                    pages,
                    total as f64 / pages as f64 / 1e6,
                    cpu as f64 / pages as f64 / 1e6,
                )
            })
            .collect(),
    }
}

impl Fig74 {
    /// Renders the two series.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec![
            "states",
            "pages",
            "mean crawl (s)",
            "mean w/o network (s)",
        ]);
        for (states, pages, total, cpu) in &self.rows {
            t.row(vec![
                states.to_string(),
                pages.to_string(),
                format!("{total:.2}"),
                format!("{cpu:.2}"),
            ]);
        }
        format!(
            "Fig 7.4 — Crawling time vs number of crawled states\n{}\n\
             paper reference: both curves grow linearly with the state count\n",
            t.render()
        )
    }

    /// Least-squares slope sanity measure: Pearson correlation between state
    /// count and mean crawl time (should be strongly positive / linear).
    pub fn correlation(&self) -> f64 {
        let n = self.rows.len() as f64;
        if n < 2.0 {
            return 1.0;
        }
        let xs: Vec<f64> = self.rows.iter().map(|r| r.0 as f64).collect();
        let ys: Vec<f64> = self.rows.iter().map(|r| r.2).collect();
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
        let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
        let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
        cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
    }
}

/// Convenience: everything in §7.2 as one printout.
pub fn render_all(data: &CrawlPerfData) -> String {
    format!(
        "{}\n{}\n{}",
        table7_2(data).render(),
        fig7_3(data).render(),
        fig7_4(data).render()
    )
}

/// Short human summary line used by `exp_all`.
pub fn summary(data: &CrawlPerfData) -> String {
    let t = table7_2(data);
    format!(
        "AJAX overhead: x{:.2} per page, x{:.2} per state (paper: x9.43 / x2.27); total {} s vs {} s",
        t.overhead_per_page,
        t.overhead_per_state,
        secs((t.ajax_total_ms * 1e3) as u64),
        secs((t.trad_total_ms * 1e3) as u64),
    )
}
