//! Durability overhead: what the checkpoint journal costs the crawl.
//!
//! For each snapshot cadence (`0` = checkpointing off) the whole site is
//! crawled by the `MpCrawler` and timed on the *wall* clock — checkpoint
//! commits are real fsync + rename work, so unlike the virtual-time crawl
//! metrics their cost only shows up in wall time. Each cell reports
//! pages/sec, the slowdown factor against the checkpointing-off baseline,
//! and verifies the durability invariant that matters most: the crawled
//! models are identical whether or not the journal is on.

use crate::util::{latency, TableFmt};
use ajax_crawl::checkpoint::{config_fingerprint, Checkpointer};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::{MpCrawler, MpReport};
use ajax_crawl::partition::{partition_urls, Partition};
use ajax_net::Server;
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// One cadence cell.
#[derive(Debug, Clone, Serialize)]
pub struct DurabilityCell {
    /// Snapshot cadence in pages; 0 means checkpointing off.
    pub checkpoint_every: usize,
    /// Pages crawled.
    pub pages: usize,
    /// Snapshots committed (including the final flush).
    pub snapshots: u64,
    /// Best-of-`repeats` wall time for the whole crawl (+ flush), µs.
    pub wall_micros: u64,
    /// Wall time spent inside checkpoint commits for that best run, µs.
    pub checkpoint_wall_micros: u64,
    /// Crawl throughput on the wall clock.
    pub pages_per_sec: f64,
    /// Slowdown vs the checkpointing-off baseline (1.0 = free).
    pub overhead_factor: f64,
    /// True when the crawled models match the baseline run exactly.
    pub output_identical: bool,
}

/// The full cadence sweep.
#[derive(Debug, Clone, Serialize)]
pub struct DurabilitySweep {
    pub videos: u32,
    pub repeats: u32,
    pub cells: Vec<DurabilityCell>,
}

/// Crawls the site once, journaling to a scratch dir when `every > 0`.
/// Returns the report, the wall time of crawl+flush, and the checkpoint
/// stats (zeroed when off).
fn run_once(
    server: &Arc<VidShareServer>,
    partitions: &[Partition],
    every: usize,
    scratch: &std::path::Path,
) -> (MpReport, u64, ajax_crawl::checkpoint::CheckpointStats) {
    let config = CrawlConfig::ajax().with_checkpoint_every(every.max(1));
    let mut mp = MpCrawler::new(
        Arc::clone(server) as Arc<dyn Server>,
        latency(),
        config.clone(),
    )
    .with_proc_lines(4);

    let ckpt = (every > 0).then(|| {
        Arc::new(
            Checkpointer::fresh(scratch, every, config_fingerprint(&config, &["bench"]))
                .expect("open checkpoint journal"),
        )
    });
    if let Some(c) = &ckpt {
        mp = mp.with_checkpointing(Arc::clone(c), HashMap::new());
    }

    let t0 = Instant::now();
    let report = mp.crawl(partitions);
    let stats = match &ckpt {
        Some(c) => c.flush().expect("flush checkpoint journal"),
        None => ajax_crawl::checkpoint::CheckpointStats::default(),
    };
    let wall = t0.elapsed().as_micros() as u64;
    (report, wall, stats)
}

/// True when two reports crawled the same models (durability must never
/// change what is crawled, only how it is persisted).
fn models_identical(a: &MpReport, b: &MpReport) -> bool {
    a.partitions.len() == b.partitions.len()
        && a.partitions.iter().zip(&b.partitions).all(|(pa, pb)| {
            pa.models.len() == pb.models.len()
                && pa.models.iter().zip(&pb.models).all(|(ma, mb)| {
                    ma.url == mb.url && ma.states == mb.states && ma.transitions == mb.transitions
                })
        })
}

/// Sweeps the cadences over a `videos`-page VidShare site, timing each cell
/// `repeats` times and keeping the fastest run.
pub fn collect(videos: u32, cadences: &[usize], repeats: u32) -> DurabilitySweep {
    let spec = VidShareSpec::small(videos);
    let server = Arc::new(VidShareServer::new(spec.clone()));
    let urls: Vec<String> = (0..videos).map(|v| spec.watch_url(v)).collect();
    let partitions = partition_urls(&urls, 50);
    let scratch =
        std::env::temp_dir().join(format!("ajax_bench_durability_{}", std::process::id()));

    let mut baseline: Option<(MpReport, f64)> = None;
    let mut cells = Vec::new();
    for &every in cadences {
        eprintln!("[durability] checkpoint_every = {every}…");
        let mut best: Option<(MpReport, u64, ajax_crawl::checkpoint::CheckpointStats)> = None;
        for _ in 0..repeats.max(1) {
            let run = run_once(&server, &partitions, every, &scratch);
            if best.as_ref().is_none_or(|b| run.1 < b.1) {
                best = Some(run);
            }
        }
        let (report, wall, stats) = best.expect("at least one repeat");
        let pages_per_sec = urls.len() as f64 / (wall.max(1) as f64 / 1e6);
        let (overhead_factor, output_identical) = match &baseline {
            Some((base_report, base_pps)) => (
                base_pps / pages_per_sec,
                models_identical(base_report, &report),
            ),
            None => (1.0, true),
        };
        cells.push(DurabilityCell {
            checkpoint_every: every,
            pages: urls.len(),
            snapshots: stats.writes,
            wall_micros: wall,
            checkpoint_wall_micros: stats.write_wall_micros,
            pages_per_sec,
            overhead_factor,
            output_identical,
        });
        if baseline.is_none() {
            baseline = Some((report, pages_per_sec));
        }
    }
    std::fs::remove_dir_all(&scratch).ok();
    DurabilitySweep {
        videos,
        repeats,
        cells,
    }
}

impl DurabilitySweep {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let mut table = TableFmt::new(vec![
            "every",
            "snapshots",
            "wall (ms)",
            "ckpt (ms)",
            "pages/sec",
            "overhead",
            "output",
        ]);
        for c in &self.cells {
            table.row(vec![
                if c.checkpoint_every == 0 {
                    "off".to_string()
                } else {
                    c.checkpoint_every.to_string()
                },
                c.snapshots.to_string(),
                format!("{:.2}", c.wall_micros as f64 / 1e3),
                format!("{:.2}", c.checkpoint_wall_micros as f64 / 1e3),
                format!("{:.0}", c.pages_per_sec),
                format!("{:.2}x", c.overhead_factor),
                if c.output_identical {
                    "identical"
                } else {
                    "DRIFT"
                }
                .to_string(),
            ]);
        }
        format!(
            "Durability overhead — checkpointed crawl over {} videos (best of {})\n{}",
            self.videos,
            self.repeats,
            table.render()
        )
    }

    /// True when every checkpointed cell crawled exactly the baseline's
    /// models — the journal must be invisible in the output.
    pub fn no_output_drift(&self) -> bool {
        self.cells.iter().all(|c| c.output_identical)
    }
}
