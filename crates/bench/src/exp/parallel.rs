//! Parallelization (§7.4): Table 7.3 (parallel crawling times, traditional
//! vs AJAX) and Fig 7.8 (parallel vs non-parallel mean crawling time per
//! video).

use crate::scale::Scale;
use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_net::Server;
use serde::Serialize;
use std::sync::Arc;

/// Timing results for one crawl flavour.
#[derive(Debug, Clone, Serialize)]
pub struct FlavourTiming {
    pub flavour: String,
    pub pages: u32,
    pub states: u64,
    /// Virtual serial time (1 process line).
    pub serial_micros: u64,
    /// Virtual makespan with `proc_lines` lines.
    pub parallel_micros: u64,
}

impl FlavourTiming {
    pub fn serial_mean_page_s(&self) -> f64 {
        self.serial_micros as f64 / 1e6 / self.pages as f64
    }
    pub fn parallel_mean_page_s(&self) -> f64 {
        self.parallel_micros as f64 / 1e6 / self.pages as f64
    }
    pub fn parallel_mean_state_s(&self) -> f64 {
        self.parallel_micros as f64 / 1e6 / self.states as f64
    }
}

/// Table 7.3 + Fig 7.8 data.
#[derive(Debug, Clone, Serialize)]
pub struct ParallelData {
    pub proc_lines: usize,
    pub cores: usize,
    pub traditional: FlavourTiming,
    pub ajax: FlavourTiming,
}

/// Runs the parallel crawl (4 process lines, 2 cores — the thesis machine)
/// for both flavours.
pub fn collect(scale: &Scale) -> ParallelData {
    collect_with(scale, 4, 2)
}

/// Parameterized variant (used by the ablation bench).
pub fn collect_with(scale: &Scale, proc_lines: usize, cores: usize) -> ParallelData {
    let spec = scale.spec();
    let server = crate::util::server(&spec);
    let urls: Vec<String> = (0..scale.crawl_pages).map(|v| spec.watch_url(v)).collect();
    let partitions = partition_urls(&urls, 50);

    let run = |config: CrawlConfig, flavour: &str| -> FlavourTiming {
        eprintln!(
            "[parallel] {flavour}: {} pages over {proc_lines} lines…",
            urls.len()
        );
        let mp = MpCrawler::new(Arc::clone(&server) as Arc<dyn Server>, latency(), config)
            .with_proc_lines(proc_lines)
            .with_cores(cores);
        let report = mp.crawl(&partitions);
        FlavourTiming {
            flavour: flavour.to_string(),
            pages: urls.len() as u32,
            states: report.aggregate.states,
            serial_micros: report.virtual_serial,
            parallel_micros: report.virtual_makespan,
        }
    };

    ParallelData {
        proc_lines,
        cores,
        traditional: run(CrawlConfig::traditional(), "traditional"),
        ajax: run(CrawlConfig::ajax(), "ajax"),
    }
}

impl ParallelData {
    /// Renders Table 7.3.
    pub fn render_table7_3(&self) -> String {
        let t = &self.traditional;
        let a = &self.ajax;
        let mut table = TableFmt::new(vec![
            "",
            "Parallel Trad. (s)",
            "Parallel AJAX (s)",
            "AJAX/Trad",
        ]);
        table.row(vec![
            "Total time".to_string(),
            format!("{:.0}", t.parallel_micros as f64 / 1e6),
            format!("{:.0}", a.parallel_micros as f64 / 1e6),
            format!(
                "x{:.2}",
                a.parallel_micros as f64 / t.parallel_micros as f64
            ),
        ]);
        table.row(vec![
            "Mean per page".to_string(),
            format!("{:.3}", t.parallel_mean_page_s()),
            format!("{:.3}", a.parallel_mean_page_s()),
            format!(
                "x{:.2}",
                a.parallel_mean_page_s() / t.parallel_mean_page_s()
            ),
        ]);
        table.row(vec![
            "Mean per state".to_string(),
            format!("{:.3}", t.parallel_mean_page_s()),
            format!("{:.3}", a.parallel_mean_state_s()),
            format!(
                "x{:.2}",
                a.parallel_mean_state_s() / t.parallel_mean_page_s()
            ),
        ]);
        format!(
            "Table 7.3 — Parallel crawling times ({} lines, {} cores)\n{}\n\
             paper reference: x8.80 per page, x2.11 per state\n",
            self.proc_lines,
            self.cores,
            table.render()
        )
    }

    /// Renders Fig 7.8.
    pub fn render_fig7_8(&self) -> String {
        let mut table = TableFmt::new(vec![
            "flavour",
            "non-parallel mean/video (s)",
            "parallel mean/video (s)",
            "speedup",
        ]);
        for f in [&self.traditional, &self.ajax] {
            table.row(vec![
                f.flavour.clone(),
                format!("{:.3}", f.serial_mean_page_s()),
                format!("{:.3}", f.parallel_mean_page_s()),
                format!("x{:.2}", f.serial_micros as f64 / f.parallel_micros as f64),
            ]);
        }
        format!(
            "Fig 7.8 — Effect of parallelization on mean crawling time per video\n{}\n\
             paper reference: 4 process lines cut crawl times consistently with the\n\
             degree of parallelization (network-bound ⇒ near-linear)\n",
            table.render()
        )
    }
}
