//! Concurrent query serving (the `ajax-serve` subsystem): throughput of the
//! shard-worker-pool server vs the single-threaded `QueryBroker`, result-
//! cache effectiveness on a repeated workload, and overload accounting.
//!
//! Three phases over the thesis' 100-query VidShare workload (Table 7.4):
//!
//! 1. **throughput** — the 100 queries run once through the sequential
//!    broker, with each `(query, shard)` evaluation individually timed.
//!    Those per-shard costs are then replayed through the repo's virtual
//!    scheduler ([`ajax_net::simulate`]): one process line per worker, one
//!    core per worker — the deterministic timing axis every experiment in
//!    this repo reports on (wall-clock numbers are also collected, but on a
//!    small host the virtual model is the meaningful one). The model covers
//!    shard evaluation — the dominant, parallelized cost; the global-idf
//!    merge stays on the caller in both flavours.
//! 2. **caching** — a fresh server runs the workload twice; the second pass
//!    should be answered from the LRU result cache.
//! 3. **overload** — client threads hammer a server whose admission gate is
//!    capped far below the offered load; every request must come back as a
//!    result or a typed `Overloaded` error (zero lost).

use crate::util::TableFmt;
use ajax_engine::{AjaxSearchEngine, EngineConfig};
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::Query;
use ajax_index::shard::{eval_shard, QueryBroker};
use ajax_net::{simulate, Segment, Task, Url};
use ajax_serve::{ServeConfig, ServeError, ShardServer};
use ajax_webgen::queries::query_phrases;
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

/// Serving-experiment results.
#[derive(Debug, Clone, Serialize)]
pub struct ServingData {
    pub videos: u64,
    pub shards: u64,
    pub workers: u64,
    pub queries: u64,
    /// Virtual (simulated) evaluation time of the workload, single worker.
    pub virtual_serial_nanos: u64,
    /// Virtual makespan with `workers` workers (one per shard).
    pub virtual_parallel_nanos: u64,
    /// `virtual_serial / virtual_parallel` — the throughput multiplier.
    pub virtual_speedup: f64,
    /// Informational wall-clock numbers (noisy; host-dependent).
    pub sequential_wall_micros: u64,
    pub server_wall_micros: u64,
    /// Cache phase: hit rate over two passes of the workload (pass 2 should
    /// hit on every repeated query).
    pub repeat_hit_rate: f64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Overload phase: accounting across `burst_clients` closed-loop
    /// clients against a capacity-2 admission gate.
    pub burst_clients: u64,
    pub burst_issued: u64,
    pub burst_completed: u64,
    pub burst_shed: u64,
    /// `issued − completed − shed`; the zero-lost-queries invariant.
    pub burst_lost: u64,
}

/// Default collection: 4 shards × 1 worker (the "4 workers" configuration),
/// sized by the experiment scale.
pub fn collect(scale: &crate::scale::Scale) -> ServingData {
    collect_with(scale.query_pages.min(200), 4, 8)
}

/// Parameterized collection: `videos` pages, `shards` single-worker pools,
/// `burst_clients` overload clients.
pub fn collect_with(videos: u32, shards: usize, burst_clients: usize) -> ServingData {
    let workload = query_phrases();

    // Build the corpus once; shard it `shards`-ways ourselves so the worker
    // count is exactly what the experiment says.
    eprintln!("[serving] building index over {videos} videos…");
    let spec = VidShareSpec::small(videos);
    let start = Url::parse(&spec.watch_url(0));
    let site = Arc::new(VidShareServer::new(spec));
    let mut config = EngineConfig::ajax(videos as usize);
    config.keep_models = true;
    let engine = AjaxSearchEngine::build(site, &start, config);
    let pagerank = engine.graph.pagerank.clone();
    let models = engine.models;
    let per_shard = models.len().div_ceil(shards.max(1));
    let build_shards = || -> Vec<InvertedIndex> {
        models
            .chunks(per_shard.max(1))
            .map(|chunk| {
                let mut b = IndexBuilder::new();
                for m in chunk {
                    b.add_model(m, pagerank.get(&m.url).copied());
                }
                b.build()
            })
            .collect()
    };

    // Phase 1: sequential pass, timing every (query, shard) evaluation.
    eprintln!(
        "[serving] sequential baseline over {} queries…",
        workload.len()
    );
    let broker = QueryBroker::new(build_shards());
    let shard_count = broker.shard_count();
    let weights = broker.weights;
    let mut eval_tasks = Vec::with_capacity(workload.len() * shard_count);
    let wall0 = std::time::Instant::now();
    for q in workload {
        let query = Query::parse(q);
        for s in 0..shard_count {
            let shard = broker.shard(s).expect("shard");
            let t0 = std::time::Instant::now();
            let _ = eval_shard(shard, s, &query, &weights);
            let nanos = (t0.elapsed().as_nanos() as u64).max(1);
            eval_tasks.push(Task::new(vec![Segment::Cpu(nanos)]));
        }
        let _ = broker.search(&query);
    }
    let sequential_wall_micros = wall0.elapsed().as_micros() as u64;

    // Replay the measured costs through the virtual scheduler: 1 line/core
    // (serial) vs one line+core per worker (the shard pools).
    let serial = simulate(&eval_tasks, 1, 1);
    let parallel = simulate(&eval_tasks, shard_count, shard_count);
    let virtual_speedup = serial.makespan as f64 / parallel.makespan.max(1) as f64;

    // Closed-loop multi-client wall-clock run through the real server
    // (informational): `burst_clients` threads split the workload evenly,
    // admission uncapped, cache off so every query evaluates.
    let server = Arc::new(ShardServer::new(
        QueryBroker::new(build_shards()),
        ServeConfig::default()
            .with_cache_capacity(0)
            .with_max_in_flight(usize::MAX),
    ));
    let wall1 = std::time::Instant::now();
    std::thread::scope(|scope| {
        for c in 0..burst_clients.max(1) {
            let server = Arc::clone(&server);
            scope.spawn(move || {
                for (i, q) in workload.iter().enumerate() {
                    if i % burst_clients.max(1) == c {
                        server.search(q).expect("admitted");
                    }
                }
            });
        }
    });
    let server_wall_micros = wall1.elapsed().as_micros() as u64;

    // Phase 2: repeated workload against a fresh cached server.
    eprintln!("[serving] cache phase (2 × {} queries)…", workload.len());
    let cached = ShardServer::new(
        QueryBroker::new(build_shards()),
        ServeConfig::default().with_cache_capacity(workload.len()),
    );
    for _pass in 0..2 {
        for q in workload {
            cached.search(q).expect("admitted");
        }
    }
    let cache_snap = cached.metrics_snapshot();

    // Phase 3: overload burst against a capacity-2 admission gate.
    eprintln!("[serving] overload burst ({burst_clients} clients)…");
    let burst = Arc::new(ShardServer::new(
        QueryBroker::new(build_shards()),
        ServeConfig::default()
            .with_max_in_flight(2)
            .with_cache_capacity(0),
    ));
    let per_client = workload.len();
    let (completed, shed) = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst_clients)
            .map(|c| {
                let burst = Arc::clone(&burst);
                scope.spawn(move || {
                    let mut ok = 0u64;
                    let mut shed = 0u64;
                    for i in 0..per_client {
                        match burst.search(workload[(c + i) % workload.len()]) {
                            Ok(_) => ok += 1,
                            Err(ServeError::Overloaded { .. }) => shed += 1,
                            Err(e) => panic!("unexpected serve error: {e}"),
                        }
                    }
                    (ok, shed)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("burst client"))
            .fold((0u64, 0u64), |(a, b), (ca, cs)| (a + ca, b + cs))
    });
    let issued = (burst_clients * per_client) as u64;

    ServingData {
        videos: videos as u64,
        shards: shard_count as u64,
        workers: shard_count as u64,
        queries: workload.len() as u64,
        virtual_serial_nanos: serial.makespan,
        virtual_parallel_nanos: parallel.makespan,
        virtual_speedup,
        sequential_wall_micros,
        server_wall_micros,
        repeat_hit_rate: cache_snap.cache_hit_rate,
        cache_hits: cache_snap.cache_hits,
        cache_misses: cache_snap.cache_misses,
        burst_clients: burst_clients as u64,
        burst_issued: issued,
        burst_completed: completed,
        burst_shed: shed,
        burst_lost: issued - completed - shed,
    }
}

impl ServingData {
    /// Renders the serving summary table.
    pub fn render(&self) -> String {
        let mut table = TableFmt::new(vec!["metric", "value"]);
        table.row(vec![
            "workload".to_string(),
            format!(
                "{} queries / {} videos / {} shards",
                self.queries, self.videos, self.shards
            ),
        ]);
        table.row(vec![
            "virtual serial eval".to_string(),
            format!("{:.2} ms", self.virtual_serial_nanos as f64 / 1e6),
        ]);
        table.row(vec![
            format!("virtual makespan ({} workers)", self.workers),
            format!("{:.2} ms", self.virtual_parallel_nanos as f64 / 1e6),
        ]);
        table.row(vec![
            "virtual speedup".to_string(),
            format!("x{:.2}", self.virtual_speedup),
        ]);
        table.row(vec![
            "wall: sequential broker".to_string(),
            format!("{:.2} ms", self.sequential_wall_micros as f64 / 1e3),
        ]);
        table.row(vec![
            "wall: server closed-loop".to_string(),
            format!("{:.2} ms", self.server_wall_micros as f64 / 1e3),
        ]);
        table.row(vec![
            "repeat-workload cache hit rate".to_string(),
            format!(
                "{:.0}% ({} hits / {} misses)",
                self.repeat_hit_rate * 100.0,
                self.cache_hits,
                self.cache_misses
            ),
        ]);
        table.row(vec![
            "overload burst".to_string(),
            format!(
                "{} issued = {} completed + {} shed ({} lost)",
                self.burst_issued, self.burst_completed, self.burst_shed, self.burst_lost
            ),
        ]);
        format!(
            "Serving — worker-pool throughput, cache, and admission control\n{}\n\
             invariants: speedup ≥ 2 at 4 workers; hit rate > 0; 0 lost\n",
            table.render()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance criteria of the serving subsystem, at test scale:
    /// ≥2× virtual throughput at 4 workers, cache hits on the repeated
    /// phase, and zero lost queries under the burst.
    #[test]
    fn serving_meets_acceptance_criteria() {
        let data = collect_with(24, 4, 6);
        assert_eq!(data.shards, 4);
        assert!(
            data.virtual_speedup >= 2.0,
            "virtual speedup x{:.2} below 2 at 4 workers",
            data.virtual_speedup
        );
        assert!(
            data.repeat_hit_rate > 0.0,
            "repeated workload must hit the cache"
        );
        assert!(
            data.cache_hits >= data.queries,
            "second pass should hit throughout"
        );
        assert_eq!(
            data.burst_lost, 0,
            "every burst request must be accounted for"
        );
        assert_eq!(data.burst_issued, data.burst_completed + data.burst_shed);
        assert!(!data.render().is_empty());
    }
}
