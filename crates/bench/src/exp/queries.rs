//! Query processing (§7.5): Table 7.4 (the query workload and its
//! cardinalities), Table 7.5 (query processing times) and Fig 7.9 (query
//! throughput, traditional vs AJAX).

use crate::scale::Scale;
use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::model::AppModel;
use ajax_crawl::parallel::MpCrawler;
use ajax_crawl::partition::partition_urls;
use ajax_index::invert::{IndexBuilder, InvertedIndex};
use ajax_index::query::{search, Query, RankWeights};
use ajax_net::Server;
use ajax_webgen::{ground_truth, query_workload, QuerySpec};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Crawled models + the two indexes the query experiments compare.
pub struct QueryData {
    pub models: Vec<AppModel>,
    /// 1 state/page (what traditional crawling indexes).
    pub trad_index: InvertedIndex,
    /// All crawled states.
    pub ajax_index: InvertedIndex,
    pub queries: Vec<QuerySpec>,
}

/// Crawls `scale.query_pages` pages once and builds both indexes.
pub fn collect(scale: &Scale) -> QueryData {
    let spec = scale.spec();
    let server = crate::util::server(&spec);
    let urls: Vec<String> = (0..scale.query_pages).map(|v| spec.watch_url(v)).collect();
    let partitions = partition_urls(&urls, 50);
    eprintln!("[queries] crawling {} pages…", urls.len());
    let mp = MpCrawler::new(
        Arc::clone(&server) as Arc<dyn Server>,
        latency(),
        CrawlConfig::ajax(),
    );
    let models = mp.crawl(&partitions).into_models();

    eprintln!("[queries] building the two indexes…");
    let build = |max_states: Option<usize>| -> InvertedIndex {
        let mut b = IndexBuilder::new();
        if let Some(m) = max_states {
            b = b.with_max_states(m);
        }
        for model in &models {
            b.add_model(model, None);
        }
        b.build()
    };
    QueryData {
        trad_index: build(Some(1)),
        ajax_index: build(None),
        models,
        queries: query_workload(),
    }
}

// ---- Table 7.4 -------------------------------------------------------------

/// Table 7.4: the sample queries with their occurrence counts.
#[derive(Debug, Clone, Serialize)]
pub struct Table74 {
    /// `(id, query, first-page videos, all-page comments)`.
    pub rows: Vec<(String, String, u32, u32)>,
}

/// Ground-truth occurrence counts for the paper's 11 sample queries.
pub fn table7_4(scale: &Scale) -> Table74 {
    let spec = scale.spec();
    let rows = query_workload()
        .iter()
        .take(11)
        .enumerate()
        .map(|(i, q)| {
            let truth = ground_truth(&spec, scale.query_pages, 11, q);
            (
                format!("Q{}", i + 1),
                q.text.clone(),
                truth.first_page_videos,
                truth.all_page_comments,
            )
        })
        .collect();
    Table74 { rows }
}

impl Table74 {
    /// Renders the paper's table.
    pub fn render(&self) -> String {
        let mut t = TableFmt::new(vec![
            "ID",
            "Query",
            "Occurrences First Page",
            "Occurrences All Pages",
        ]);
        for (id, query, first, all) in &self.rows {
            t.row(vec![
                id.clone(),
                query.clone(),
                first.to_string(),
                all.to_string(),
            ]);
        }
        format!(
            "Table 7.4 — Sample queries and occurrence counts\n{}\n\
             paper reference: all-page counts exceed first-page counts several-fold;\n\
             cardinality decreases with query rank\n",
            t.render()
        )
    }
}

// ---- Table 7.5 / Fig 7.9 ----------------------------------------------------

/// Per-query timing on both indexes.
#[derive(Debug, Clone, Serialize)]
pub struct QueryTimings {
    /// `(id, query, trad_ms, ajax_ms, trad_results, ajax_results)`.
    pub rows: Vec<(String, String, f64, f64, usize, usize)>,
}

/// Runs the 11 sample queries on both indexes, timing wall-clock latency
/// (median of `reps` runs).
pub fn table7_5(data: &QueryData) -> QueryTimings {
    let reps = 15;
    let weights = RankWeights::default();
    let time_query = |index: &InvertedIndex, q: &Query| -> (f64, usize) {
        let mut times: Vec<f64> = (0..reps)
            .map(|_| {
                let t0 = Instant::now();
                let results = search(index, q, &weights);
                let dt = t0.elapsed().as_secs_f64() * 1e3;
                std::hint::black_box(results.len());
                dt
            })
            .collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let median = times[times.len() / 2];
        let count = search(index, q, &weights).len();
        (median, count)
    };

    let rows = data
        .queries
        .iter()
        .take(11)
        .enumerate()
        .map(|(i, spec)| {
            let q = Query::parse(&spec.text);
            let (trad_ms, trad_n) = time_query(&data.trad_index, &q);
            let (ajax_ms, ajax_n) = time_query(&data.ajax_index, &q);
            (
                format!("Q{}", i + 1),
                spec.text.clone(),
                trad_ms,
                ajax_ms,
                trad_n,
                ajax_n,
            )
        })
        .collect();
    QueryTimings { rows }
}

impl QueryTimings {
    /// Renders Table 7.5.
    pub fn render_table7_5(&self) -> String {
        let mut t = TableFmt::new(vec![
            "ID",
            "Query",
            "Trad (ms)",
            "AJAX (ms)",
            "Trad results",
            "AJAX results",
        ]);
        for (id, q, tms, ams, tn, an) in &self.rows {
            t.row(vec![
                id.clone(),
                q.clone(),
                format!("{tms:.3}"),
                format!("{ams:.3}"),
                tn.to_string(),
                an.to_string(),
            ]);
        }
        format!(
            "Table 7.5 — Query processing times (wall clock, median of 15)\n{}\n\
             paper reference: AJAX query times exceed traditional, but return many more results\n",
            t.render()
        )
    }

    /// Renders Fig 7.9 (throughput = results per second).
    pub fn render_fig7_9(&self) -> String {
        let mut t = TableFmt::new(vec!["ID", "Trad (results/s)", "AJAX (results/s)"]);
        for (id, _q, tms, ams, tn, an) in &self.rows {
            let tput = |n: usize, ms: f64| {
                if ms <= 0.0 {
                    0.0
                } else {
                    n as f64 / (ms / 1e3)
                }
            };
            t.row(vec![
                id.clone(),
                format!("{:.0}", tput(*tn, *tms)),
                format!("{:.0}", tput(*an, *ams)),
            ]);
        }
        format!(
            "Fig 7.9 — Throughput of popular queries, traditional vs AJAX search\n{}\n\
             paper reference: traditional throughput is generally higher, for far fewer results\n",
            t.render()
        )
    }

    /// True when every query returned at least as many AJAX results.
    pub fn ajax_superset(&self) -> bool {
        self.rows.iter().all(|(_, _, _, _, tn, an)| an >= tn)
    }
}
