//! Fault sweep: crawl resilience under injected transient faults.
//!
//! For each (seed, fault-rate) cell the whole site is crawled by the
//! `MpCrawler` under `FaultPlan::transient_mix(seed, rate)`, and the cell
//! reports what resilience cost: fetch retries, page re-crawl passes,
//! recovered pages, partial states — and, crucially, how many pages were
//! *lost*. Each cell is also run twice to confirm the run is bit-identical
//! under the same seed (virtual time included) — and, with tracing on, that
//! the serialised span trace of both runs matches byte for byte.

use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::{MpCrawler, MpReport};
use ajax_crawl::partition::{partition_urls, Partition};
use ajax_net::{FaultPlan, Server};
use ajax_obs::chrome_trace_json;
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

/// One (seed, rate) cell of the sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultCell {
    pub seed: u64,
    pub rate: f64,
    /// Pages asked for.
    pub pages: usize,
    /// Pages with no model at the end (must be 0 for transient-only plans).
    pub lost_pages: usize,
    pub quarantined: u64,
    pub recovered: u64,
    pub fetch_retries: u64,
    pub page_retries: u64,
    pub partial_states: u64,
    pub failed_xhr: u64,
    pub backoff_micros: u64,
    pub makespan_micros: u64,
    /// True when a second run with the same seed reproduced the first
    /// bit-for-bit (stats, failures, models, virtual makespan).
    pub deterministic: bool,
    /// True when the two runs' *trace output* (span log serialised to Chrome
    /// `trace_event` JSON) is byte-identical — the flight recorder must be as
    /// reproducible as the stats it annotates.
    pub trace_deterministic: bool,
}

/// The full sweep.
#[derive(Debug, Clone, Serialize)]
pub struct FaultSweep {
    pub videos: u32,
    pub cells: Vec<FaultCell>,
}

fn run_once(
    server: &Arc<VidShareServer>,
    partitions: &[Partition],
    seed: u64,
    rate: f64,
) -> MpReport {
    let mut mp = MpCrawler::new(
        Arc::clone(server) as Arc<dyn Server>,
        latency(),
        CrawlConfig::ajax(),
    )
    .with_proc_lines(4)
    .with_tracing(true);
    if rate > 0.0 {
        mp = mp.with_fault_plan(FaultPlan::transient_mix(seed, rate));
    }
    mp.crawl(partitions)
}

/// True when two reports are observably identical: same aggregate stats,
/// same makespan, and the same models (states and transitions) and failures
/// partition by partition.
fn identical(a: &MpReport, b: &MpReport) -> bool {
    a.aggregate == b.aggregate
        && a.virtual_makespan == b.virtual_makespan
        && a.virtual_serial == b.virtual_serial
        && a.partitions.len() == b.partitions.len()
        && a.partitions.iter().zip(&b.partitions).all(|(pa, pb)| {
            pa.failures == pb.failures
                && pa.models.len() == pb.models.len()
                && pa.models.iter().zip(&pb.models).all(|(ma, mb)| {
                    ma.url == mb.url && ma.states == mb.states && ma.transitions == mb.transitions
                })
        })
}

/// Sweeps `seeds × rates` over a `videos`-page VidShare site.
pub fn collect(videos: u32, seeds: &[u64], rates: &[f64]) -> FaultSweep {
    let spec = VidShareSpec::small(videos);
    let server = Arc::new(VidShareServer::new(spec.clone()));
    let urls: Vec<String> = (0..videos).map(|v| spec.watch_url(v)).collect();
    let partitions = partition_urls(&urls, 50);

    let mut cells = Vec::new();
    for &seed in seeds {
        for &rate in rates {
            eprintln!(
                "[faults] seed {seed}, rate {rate:.0}%…",
                rate = rate * 100.0
            );
            let report = run_once(&server, &partitions, seed, rate);
            let rerun = run_once(&server, &partitions, seed, rate);
            let crawled: usize = report.partitions.iter().map(|p| p.models.len()).sum();
            cells.push(FaultCell {
                seed,
                rate,
                pages: urls.len(),
                lost_pages: urls.len() - crawled,
                quarantined: report.quarantined_pages,
                recovered: report.recovered_pages,
                fetch_retries: report.aggregate.fetch_retries,
                page_retries: report.page_retries,
                partial_states: report.aggregate.partial_states,
                failed_xhr: report.aggregate.failed_xhr,
                backoff_micros: report.aggregate.backoff_micros,
                makespan_micros: report.virtual_makespan,
                deterministic: identical(&report, &rerun),
                trace_deterministic: chrome_trace_json(&report.spans)
                    == chrome_trace_json(&rerun.spans),
            });
        }
    }
    FaultSweep { videos, cells }
}

impl FaultSweep {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let mut table = TableFmt::new(vec![
            "seed",
            "rate",
            "lost",
            "quarantined",
            "recovered",
            "fetch retries",
            "partials",
            "makespan (s)",
            "deterministic",
            "trace",
        ]);
        for c in &self.cells {
            table.row(vec![
                c.seed.to_string(),
                format!("{:.0}%", c.rate * 100.0),
                format!("{}/{}", c.lost_pages, c.pages),
                c.quarantined.to_string(),
                c.recovered.to_string(),
                c.fetch_retries.to_string(),
                c.partial_states.to_string(),
                format!("{:.1}", c.makespan_micros as f64 / 1e6),
                if c.deterministic { "yes" } else { "NO" }.to_string(),
                if c.trace_deterministic { "yes" } else { "NO" }.to_string(),
            ]);
        }
        format!(
            "Fault sweep — resilient crawl over {} videos\n{}",
            self.videos,
            table.render()
        )
    }

    /// True when every cell lost zero pages and reproduced deterministically
    /// — stats *and* trace output alike.
    pub fn all_resilient(&self) -> bool {
        self.cells
            .iter()
            .all(|c| c.lost_pages == 0 && c.deterministic && c.trace_deterministic)
    }
}
