//! Static-prune experiment: what does the static crawl planner buy, and is
//! it sound?
//!
//! For each site (VidShare and NewsShare) the whole site is crawled three
//! ways — planner on (the default), planner off (`--no-static-prune`
//! semantics), and verify mode (pruned events fire anyway and any state
//! change counts as a soundness mismatch). A cell reports events fired,
//! events pruned, virtual makespan, and the two properties the planner
//! must preserve:
//!
//! * **sound** — verify mode observed zero mismatches, and
//! * **model-identical** — the pruned and unpruned crawls produced the same
//!   transition graphs (compared by [`AppModel::graph_signature`], which
//!   ignores timing).
//!
//! [`AppModel::graph_signature`]: ajax_crawl::model::AppModel::graph_signature

use crate::util::{latency, TableFmt};
use ajax_crawl::crawler::CrawlConfig;
use ajax_crawl::parallel::{MpCrawler, MpReport};
use ajax_crawl::partition::{partition_urls, Partition};
use ajax_dom::hash::Fnv64;
use ajax_net::Server;
use ajax_webgen::{
    GalleryServer, GallerySpec, NewsShareServer, NewsSpec, VidShareServer, VidShareSpec,
};
use serde::Serialize;
use std::sync::Arc;

/// One site × three crawl modes.
#[derive(Debug, Clone, Serialize)]
pub struct PruneCell {
    pub site: String,
    pub pages: usize,
    /// Events fired with the planner on / off.
    pub events_pruned_on: u64,
    pub events_no_prune: u64,
    /// Events the planner skipped (planner-on crawl).
    pub pruned_events: u64,
    /// Soundness mismatches observed in verify mode (must be 0).
    pub verify_mismatches: u64,
    /// Virtual makespan with the planner on / off.
    pub makespan_on: u64,
    pub makespan_off: u64,
    /// Transition graphs identical across all three modes.
    pub model_identical: bool,
}

impl PruneCell {
    /// The planner is sound and useful in this cell: nothing diverged and
    /// (when the site has prunable handlers) events were actually saved.
    pub fn sound(&self) -> bool {
        self.verify_mismatches == 0
            && self.model_identical
            && self.events_pruned_on + self.pruned_events == self.events_no_prune
    }
}

/// The full experiment.
#[derive(Debug, Clone, Serialize)]
pub struct PruneReport {
    pub cells: Vec<PruneCell>,
}

fn run(server: Arc<dyn Server>, partitions: &[Partition], config: CrawlConfig) -> MpReport {
    MpCrawler::new(server, latency(), config)
        .with_proc_lines(4)
        .crawl(partitions)
}

/// Timing-independent signature over every crawled page graph
/// (order-independent across partitions).
fn signature(report: &MpReport) -> u64 {
    report
        .partitions
        .iter()
        .flat_map(|p| &p.models)
        .map(|m| {
            let mut h = Fnv64::new();
            h.write_str(&m.url);
            h.write_u64(m.graph_signature());
            h.finish()
        })
        .fold(0u64, |acc, s| acc ^ s)
}

fn collect_site(site: &str, server: Arc<dyn Server>, urls: &[String]) -> PruneCell {
    let partitions = partition_urls(urls, 50);
    eprintln!("[pruning] {site}: planner on…");
    let on = run(Arc::clone(&server), &partitions, CrawlConfig::ajax());
    eprintln!("[pruning] {site}: planner off…");
    let off = run(
        Arc::clone(&server),
        &partitions,
        CrawlConfig::ajax().without_static_prune(),
    );
    eprintln!("[pruning] {site}: verify mode…");
    let verify = run(server, &partitions, CrawlConfig::ajax().verifying_prune());

    PruneCell {
        site: site.to_string(),
        pages: urls.len(),
        events_pruned_on: on.aggregate.events_fired,
        events_no_prune: off.aggregate.events_fired,
        pruned_events: on.aggregate.pruned_events,
        verify_mismatches: verify.aggregate.prune_mismatches,
        makespan_on: on.virtual_makespan,
        makespan_off: off.virtual_makespan,
        model_identical: signature(&on) == signature(&off) && signature(&off) == signature(&verify),
    }
}

/// Runs the experiment over a `videos`-page VidShare site and a
/// `pages`-page NewsShare site.
pub fn collect(videos: u32, pages: u32) -> PruneReport {
    let vid_spec = VidShareSpec::small(videos);
    let vid_urls: Vec<String> = (0..videos).map(|v| vid_spec.watch_url(v)).collect();
    let vid = collect_site(
        "vidshare",
        Arc::new(VidShareServer::new(vid_spec)),
        &vid_urls,
    );

    let news_spec = NewsSpec::small(pages);
    let news_urls: Vec<String> = (0..pages).map(|p| news_spec.page_url(p)).collect();
    let news = collect_site(
        "news",
        Arc::new(NewsShareServer::new(news_spec)),
        &news_urls,
    );

    PruneReport {
        cells: vec![vid, news],
    }
}

impl PruneReport {
    /// Renders the experiment as a table.
    pub fn render(&self) -> String {
        let mut table = TableFmt::new(vec![
            "site",
            "pages",
            "events (prune)",
            "events (no prune)",
            "pruned",
            "mismatches",
            "makespan on (s)",
            "makespan off (s)",
            "model identical",
        ]);
        for c in &self.cells {
            table.row(vec![
                c.site.clone(),
                c.pages.to_string(),
                c.events_pruned_on.to_string(),
                c.events_no_prune.to_string(),
                c.pruned_events.to_string(),
                c.verify_mismatches.to_string(),
                format!("{:.1}", c.makespan_on as f64 / 1e6),
                format!("{:.1}", c.makespan_off as f64 / 1e6),
                if c.model_identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        format!(
            "Static crawl planner — events saved, soundness verified\n{}",
            table.render()
        )
    }

    /// True when every cell is sound (zero mismatches, identical models,
    /// pruned + fired = baseline).
    pub fn all_sound(&self) -> bool {
        self.cells.iter().all(PruneCell::sound)
    }

    /// True when at least one site actually had prunable events — guards
    /// against the experiment silently degenerating into a no-op.
    pub fn any_pruned(&self) -> bool {
        self.cells.iter().any(|c| c.pruned_events > 0)
    }
}

/// One site × three crawl modes for the **equivalence/commutativity**
/// planner (`--equiv-prune` semantics): heuristic off (the baseline),
/// heuristic on, and verify mode (claimed-barren events fire anyway and
/// state changes count as mismatches).
#[derive(Debug, Clone, Serialize)]
pub struct EquivCell {
    pub site: String,
    pub pages: usize,
    /// Events fired with the heuristic on / off.
    pub events_on: u64,
    pub events_off: u64,
    /// Events claimed barren by a class representative's verdict.
    pub equiv_pruned: u64,
    /// Barren verdicts carried across commuting transitions.
    pub commute_pruned: u64,
    /// Claims contradicted in verify mode (must be 0 on the gallery site).
    pub verify_mismatches: u64,
    /// States discovered with the heuristic on / off (must agree).
    pub states_on: usize,
    pub states_off: usize,
    /// Virtual makespan with the heuristic on / off.
    pub makespan_on: u64,
    pub makespan_off: u64,
    /// Transition graphs identical across all three modes.
    pub model_identical: bool,
}

impl EquivCell {
    /// Fraction of baseline events the heuristic skipped, in percent.
    pub fn reduction_pct(&self) -> f64 {
        if self.events_off == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.events_on as f64 / self.events_off as f64)
    }

    /// The heuristic is sound on this cell: verify observed zero
    /// mismatches, the models agree, and every skipped event is accounted
    /// for by exactly one claim.
    pub fn sound(&self) -> bool {
        self.verify_mismatches == 0
            && self.model_identical
            && self.states_on == self.states_off
            && self.events_on + self.equiv_pruned + self.commute_pruned == self.events_off
    }

    /// The acceptance bar: ≥ 40% fewer fired events.
    pub fn meets_target(&self) -> bool {
        self.reduction_pct() >= 40.0
    }
}

fn states(report: &MpReport) -> usize {
    report
        .partitions
        .iter()
        .flat_map(|p| &p.models)
        .map(|m| m.states.len())
        .sum()
}

fn collect_equiv_site(site: &str, server: Arc<dyn Server>, urls: &[String]) -> EquivCell {
    let partitions = partition_urls(urls, 50);
    eprintln!("[equiv] {site}: heuristic off…");
    let off = run(Arc::clone(&server), &partitions, CrawlConfig::ajax());
    eprintln!("[equiv] {site}: heuristic on…");
    let on = run(
        Arc::clone(&server),
        &partitions,
        CrawlConfig::ajax().with_equiv_prune(),
    );
    eprintln!("[equiv] {site}: verify mode…");
    let verify = run(server, &partitions, CrawlConfig::ajax().verifying_equiv());

    EquivCell {
        site: site.to_string(),
        pages: urls.len(),
        events_on: on.aggregate.events_fired,
        events_off: off.aggregate.events_fired,
        equiv_pruned: on.aggregate.equiv_pruned_events,
        commute_pruned: on.aggregate.commute_pruned_events,
        verify_mismatches: verify.aggregate.equiv_mismatches,
        states_on: states(&on),
        states_off: states(&off),
        makespan_on: on.virtual_makespan,
        makespan_off: off.virtual_makespan,
        model_identical: signature(&on) == signature(&off) && signature(&off) == signature(&verify),
    }
}

/// The equivalence-pruning experiment: the redundant-handler Gallery site
/// crawled off / on / verify.
#[derive(Debug, Clone, Serialize)]
pub struct EquivReport {
    pub cells: Vec<EquivCell>,
}

/// Runs the equivalence experiment over an `albums`-page Gallery site.
pub fn collect_equiv(albums: u32) -> EquivReport {
    let spec = GallerySpec::small(albums);
    let urls: Vec<String> = (0..albums).map(|a| spec.page_url(a)).collect();
    let gallery = collect_equiv_site("gallery", Arc::new(GalleryServer::new(spec)), &urls);
    EquivReport {
        cells: vec![gallery],
    }
}

impl EquivReport {
    /// Renders the experiment as a table.
    pub fn render(&self) -> String {
        let mut table = TableFmt::new(vec![
            "site",
            "pages",
            "events (equiv)",
            "events (off)",
            "class claims",
            "commute claims",
            "reduction",
            "mismatches",
            "makespan on (s)",
            "makespan off (s)",
            "model identical",
        ]);
        for c in &self.cells {
            table.row(vec![
                c.site.clone(),
                c.pages.to_string(),
                c.events_on.to_string(),
                c.events_off.to_string(),
                c.equiv_pruned.to_string(),
                c.commute_pruned.to_string(),
                format!("{:.1}%", c.reduction_pct()),
                c.verify_mismatches.to_string(),
                format!("{:.1}", c.makespan_on as f64 / 1e6),
                format!("{:.1}", c.makespan_off as f64 / 1e6),
                if c.model_identical { "yes" } else { "NO" }.to_string(),
            ]);
        }
        format!(
            "Handler equivalence classes + commutativity — events saved, soundness verified\n{}",
            table.render()
        )
    }

    /// True when every cell is sound.
    pub fn all_sound(&self) -> bool {
        self.cells.iter().all(EquivCell::sound)
    }

    /// True when every cell clears the ≥ 40% reduction bar.
    pub fn meets_target(&self) -> bool {
        self.cells.iter().all(EquivCell::meets_target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_sweep_is_sound() {
        let report = collect(6, 3);
        assert!(report.all_sound(), "{}", report.render());
        assert!(report.any_pruned(), "vidshare must have prunable hovers");
        let vid = &report.cells[0];
        assert!(
            vid.events_pruned_on < vid.events_no_prune,
            "pruning must cut fired events on vidshare"
        );
    }

    #[test]
    fn equiv_sweep_is_sound_and_meets_target() {
        let report = collect_equiv(3);
        assert!(report.all_sound(), "{}", report.render());
        assert!(report.meets_target(), "{}", report.render());
        let cell = &report.cells[0];
        assert!(cell.equiv_pruned > 0, "class claims expected");
        assert!(cell.commute_pruned > 0, "commute claims expected");
    }
}
