//! Effects of caching (§7.3): Fig 7.5 (network calls with/without the
//! hot-node policy), Fig 7.6 (network time) and Fig 7.7 (state throughput).

use crate::scale::Scale;
use crate::util::{crawl_serial, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, PageStats};
use serde::Serialize;

/// Per-page stats of the caching and non-caching crawls over the largest
/// cache subset.
pub struct CachingData {
    pub subsets: Vec<u32>,
    pub cached: Vec<PageStats>,
    pub uncached: Vec<PageStats>,
}

/// Crawls the largest subset once per policy; the subset series are prefix
/// sums.
pub fn collect(scale: &Scale) -> CachingData {
    let max = *scale.cache_subsets.iter().max().unwrap_or(&100);
    let server = crate::util::server(&scale.spec());
    eprintln!("[caching] crawling {max} videos WITH the hot-node policy…");
    let cached = crawl_serial(&server, max, CrawlConfig::ajax());
    eprintln!("[caching] crawling {max} videos WITHOUT the policy…");
    let uncached = crawl_serial(&server, max, CrawlConfig::ajax_no_cache());
    CachingData {
        subsets: scale.cache_subsets.clone(),
        cached,
        uncached,
    }
}

/// One cumulative sample per subset per policy.
#[derive(Debug, Clone, Serialize)]
pub struct CachingSeries {
    /// `(videos, without_policy, with_policy)`.
    pub rows: Vec<(u32, f64, f64)>,
    pub metric: String,
}

fn cumulative(data: &CachingData, metric: &str, f: impl Fn(&PageStats) -> f64) -> CachingSeries {
    let series =
        |stats: &[PageStats], n: u32| -> f64 { stats.iter().take(n as usize).map(&f).sum() };
    CachingSeries {
        rows: data
            .subsets
            .iter()
            .map(|&n| (n, series(&data.uncached, n), series(&data.cached, n)))
            .collect(),
        metric: metric.to_string(),
    }
}

/// Fig 7.5: number of AJAX events resulting in network calls.
pub fn fig7_5(data: &CachingData) -> CachingSeries {
    cumulative(data, "AJAX calls hitting the network", |p| {
        p.ajax_network_calls as f64
    })
}

/// Fig 7.6: network time.
pub fn fig7_6(data: &CachingData) -> CachingSeries {
    cumulative(data, "network time (s)", |p| p.network_micros as f64 / 1e6)
}

/// Fig 7.7: state throughput (states crawled per second of crawl time).
pub fn fig7_7(data: &CachingData) -> CachingSeries {
    let throughput = |stats: &[PageStats], n: u32| -> f64 {
        let prefix = &stats[..n as usize];
        let states: u64 = prefix.iter().map(|p| p.states).sum();
        let micros: u64 = prefix.iter().map(|p| p.crawl_micros).sum();
        states as f64 / (micros as f64 / 1e6).max(1e-9)
    };
    CachingSeries {
        rows: data
            .subsets
            .iter()
            .map(|&n| {
                (
                    n,
                    throughput(&data.uncached, n),
                    throughput(&data.cached, n),
                )
            })
            .collect(),
        metric: "state throughput (states/s)".to_string(),
    }
}

impl CachingSeries {
    /// Renders the two curves.
    pub fn render(&self, figure: &str, paper_note: &str) -> String {
        let mut t = TableFmt::new(vec!["videos", "no caching", "hot-node cache"]);
        for (n, without, with) in &self.rows {
            t.row(vec![
                n.to_string(),
                format!("{without:.2}"),
                format!("{with:.2}"),
            ]);
        }
        format!(
            "{figure} — {} with and without the hot-node policy\n{}\npaper reference: {paper_note}\n",
            self.metric,
            t.render()
        )
    }

    /// The improvement factor at the largest subset.
    pub fn final_factor(&self) -> f64 {
        match self.rows.last() {
            Some((_, without, with)) if *with > 0.0 => without / with,
            _ => 1.0,
        }
    }
}
