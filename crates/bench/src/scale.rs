//! Experiment scale.

use ajax_webgen::VidShareSpec;

/// How big to run the experiments.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scale {
    /// A human-readable name (`small` / `paper`).
    pub name: &'static str,
    /// Pages for the crawling-performance experiments (thesis: 10 000).
    pub crawl_pages: u32,
    /// Video-count subsets for Fig 7.2 (thesis: 20…500).
    pub growth_subsets: Vec<u32>,
    /// Video-count subsets for the caching experiments, Figs. 7.5–7.7
    /// (thesis: 10…100).
    pub cache_subsets: Vec<u32>,
    /// Pages for the query-processing experiments (thesis: 2 500).
    pub query_pages: u32,
    /// Site size backing everything.
    pub site_videos: u32,
}

impl Scale {
    /// Laptop scale: same shapes, minutes not hours.
    pub fn small() -> Self {
        Self {
            name: "small",
            crawl_pages: 600,
            growth_subsets: vec![20, 40, 60, 80, 100, 250, 500],
            cache_subsets: vec![10, 20, 40, 60, 80, 100],
            query_pages: 400,
            site_videos: 1_000,
        }
    }

    /// The thesis' scale (YouTube10000; queries on 2 500 pages).
    pub fn paper() -> Self {
        Self {
            name: "paper",
            crawl_pages: 10_000,
            growth_subsets: vec![20, 40, 60, 80, 100, 250, 500],
            cache_subsets: vec![10, 20, 40, 60, 80, 100],
            query_pages: 2_500,
            site_videos: 10_000,
        }
    }

    /// Reads `AJAX_CRAWL_SCALE` (`small` default, `paper` for full size).
    pub fn from_env() -> Self {
        match std::env::var("AJAX_CRAWL_SCALE").as_deref() {
            Ok("paper") | Ok("full") => Self::paper(),
            _ => Self::small(),
        }
    }

    /// The VidShare site spec all experiments share.
    pub fn spec(&self) -> VidShareSpec {
        VidShareSpec {
            num_videos: self.site_videos,
            ..VidShareSpec::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_small() {
        // (Environment not set in the test harness.)
        let s = Scale::from_env();
        assert!(s.crawl_pages <= Scale::paper().crawl_pages);
    }

    #[test]
    fn paper_scale_matches_thesis() {
        let p = Scale::paper();
        assert_eq!(p.crawl_pages, 10_000);
        assert_eq!(p.query_pages, 2_500);
        assert_eq!(p.cache_subsets.last(), Some(&100));
    }
}
