//! # ajax-bench
//!
//! The experiment harness: one module (and one binary) per table/figure of
//! the thesis' ch. 7 evaluation. Every experiment prints the same rows or
//! series the paper reports and writes a JSON dump to
//! `target/experiments/<name>.json`.
//!
//! All timings inside the experiments are **virtual** (from `ajax-net`'s
//! clock), so the regenerated numbers are deterministic; only the
//! query-processing experiments additionally report wall-clock times, as the
//! thesis did. Scale is controlled by the `AJAX_CRAWL_SCALE` environment
//! variable: `small` (default; minutes on a laptop) or `paper` (the thesis'
//! 10 000-video / 2 500-video setup).

pub mod exp;
pub mod scale;
pub mod util;

pub use scale::Scale;
