//! Shared experiment plumbing: crawl helpers, table rendering, JSON dumps.

use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_net::{LatencyModel, Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

/// The latency seed shared by all experiments (determinism).
pub const LATENCY_SEED: u64 = 42;

/// Builds the shared server for a spec.
pub fn server(spec: &VidShareSpec) -> Arc<VidShareServer> {
    Arc::new(VidShareServer::new(spec.clone()))
}

/// The standard latency model of the experiments.
pub fn latency() -> LatencyModel {
    LatencyModel::thesis_default(LATENCY_SEED)
}

/// Crawls videos `0..n` serially with `config`, returning per-page stats in
/// order. Failures panic: the synthetic site must always crawl.
pub fn crawl_serial(server: &Arc<VidShareServer>, n: u32, config: CrawlConfig) -> Vec<PageStats> {
    let mut crawler = Crawler::new(Arc::clone(server) as Arc<dyn Server>, latency(), config);
    (0..n)
        .map(|v| {
            let url = Url::parse(&format!("http://vidshare.example/watch?v={v}"));
            crawler
                .crawl_page(&url)
                .unwrap_or_else(|e| panic!("crawl of video {v} failed: {e}"))
                .stats
        })
        .collect()
}

/// Sums a prefix of per-page stats.
pub fn aggregate(stats: &[PageStats]) -> PageStats {
    let mut total = PageStats::default();
    for s in stats {
        total.merge(s);
    }
    total
}

/// Formats microseconds as seconds with 2 decimals.
pub fn secs(us: u64) -> String {
    format!("{:.2}", us as f64 / 1e6)
}

/// Formats microseconds as milliseconds with 2 decimals.
pub fn millis(us: u64) -> String {
    format!("{:.2}", us as f64 / 1e3)
}

/// Writes an experiment's JSON dump to `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: cannot write {path:?}: {e}");
            } else {
                eprintln!("(json dump: {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Renders a fixed-width table.
pub struct TableFmt {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TableFmt {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Adds a row (must match the header arity).
    pub fn row<S: Into<String>>(&mut self, cells: Vec<S>) -> &mut Self {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(cells.len(), self.header.len(), "row arity");
        self.rows.push(cells);
        self
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(self.rows.iter()) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let fmt_row = |row: &[String]| {
            row.iter()
                .enumerate()
                .map(|(i, cell)| format!("{:>width$}", cell, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TableFmt::new(vec!["a", "long-header"]);
        t.row(vec!["1", "2"]);
        t.row(vec!["100", "20000"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("long-header"));
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(1_500_000), "1.50");
        assert_eq!(millis(2_500), "2.50");
    }

    #[test]
    fn aggregate_sums() {
        let a = PageStats {
            events_fired: 2,
            states: 3,
            ..PageStats::default()
        };
        let total = aggregate(&[a.clone(), a]);
        assert_eq!(total.events_fired, 4);
        assert_eq!(total.states, 6);
    }
}
