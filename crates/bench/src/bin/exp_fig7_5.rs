//! Regenerates Fig 7.5 (AJAX calls reaching the network, ± hot-node policy).
use ajax_bench::exp::caching;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = caching::collect(&scale);
    let fig = caching::fig7_5(&data);
    println!(
        "{}",
        fig.render(
            "Fig 7.5",
            "caching reduces calls ~5x (359 vs 1790 at 100 videos)"
        )
    );
    println!(
        "reduction factor at largest subset: {:.2}x",
        fig.final_factor()
    );
    util::write_json("fig7_5", &fig);
}
