//! Regenerates Table 7.2 (crawling times and overhead of AJAX crawling).
use ajax_bench::exp::crawl_perf;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = crawl_perf::collect(&scale);
    let table = crawl_perf::table7_2(&data);
    println!("{}", table.render());
    util::write_json("table7_2", &table);
}
