//! Regenerates Fig 7.4 (crawl time vs number of states, ± network time).
use ajax_bench::exp::crawl_perf;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = crawl_perf::collect(&scale);
    let fig = crawl_perf::fig7_4(&data);
    println!("{}", fig.render());
    println!("linearity (Pearson r): {:.4}", fig.correlation());
    util::write_json("fig7_4", &fig);
}
