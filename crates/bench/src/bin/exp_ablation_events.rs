//! Ablation: which event types the crawler triggers (§3.2, "irrelevant
//! events"). Compares crawling with clicks only, the default set, and all
//! event types, on coverage (states) and cost (events fired, crawl time).

use ajax_bench::util::{latency, secs, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_dom::EventType;
use ajax_net::{Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Clone, Serialize)]
struct Row {
    config: String,
    events_fired: u64,
    states: u64,
    crawl_s: f64,
}

fn main() {
    let n = 80u32;
    let spec = VidShareSpec::small(n);
    let urls: Vec<String> = (0..n).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));

    let variants: Vec<(&str, Vec<EventType>)> = vec![
        ("clicks only", vec![EventType::Click]),
        (
            "click+dblclick+mouseover",
            vec![EventType::Click, EventType::DblClick, EventType::MouseOver],
        ),
        ("all user events", EventType::user_events().to_vec()),
    ];

    let mut rows = Vec::new();
    for (name, event_types) in variants {
        let mut crawler = Crawler::new(
            Arc::clone(&server) as Arc<dyn Server>,
            latency(),
            CrawlConfig {
                event_types,
                ..CrawlConfig::ajax()
            },
        );
        let mut total = PageStats::default();
        for url in &urls {
            total.merge(&crawler.crawl_page(&Url::parse(url)).expect("crawl").stats);
        }
        rows.push(Row {
            config: name.to_string(),
            events_fired: total.events_fired,
            states: total.states,
            crawl_s: total.crawl_micros as f64 / 1e6,
        });
    }

    let mut t = TableFmt::new(vec!["event set", "events fired", "states", "crawl (s)"]);
    for r in &rows {
        t.row(vec![
            r.config.clone(),
            r.events_fired.to_string(),
            r.states.to_string(),
            format!("{:.1}", r.crawl_s),
        ]);
    }
    println!("Ablation — event-type selection (§3.2)\n{}", t.render());
    println!(
        "VidShare is click-driven: clicks alone already reach {} of {} states\n\
        (total crawl time {} vs {} s)",
        rows[0].states,
        rows[2].states,
        secs((rows[0].crawl_s * 1e6) as u64),
        secs((rows[2].crawl_s * 1e6) as u64),
    );
    ajax_bench::util::write_json("ablation_events", &rows);
}
