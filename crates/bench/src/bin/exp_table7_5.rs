//! Regenerates Table 7.5 (query processing times on both indexes).
use ajax_bench::exp::queries;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = queries::collect(&scale);
    let timings = queries::table7_5(&data);
    println!("{}", timings.render_table7_5());
    util::write_json("table7_5", &timings);
}
