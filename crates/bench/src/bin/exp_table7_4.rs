//! Regenerates Table 7.4 (sample queries and occurrence counts).
use ajax_bench::exp::queries;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let table = queries::table7_4(&scale);
    println!("{}", table.render());
    util::write_json("table7_4", &table);
}
