//! Focused crawling (§7.2.2, ch. 10): crawl a topic slice of the site and
//! compare cost + on-topic recall against the full AJAX crawl.

use ajax_bench::util::{latency, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_crawl::model::AppModel;
use ajax_index::invert::IndexBuilder;
use ajax_index::query::{search, Query, RankWeights};
use ajax_net::{Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Clone, Serialize)]
struct Row {
    config: String,
    states: u64,
    network_calls: u64,
    crawl_s: f64,
    on_topic_results: usize,
    off_topic_results: usize,
}

fn run(server: &Arc<VidShareServer>, n: u32, config: CrawlConfig, name: &str) -> Row {
    let mut crawler = Crawler::new(Arc::clone(server) as Arc<dyn Server>, latency(), config);
    let mut stats = PageStats::default();
    let mut models: Vec<AppModel> = Vec::new();
    for v in 0..n {
        let url = Url::parse(&format!("http://vidshare.example/watch?v={v}"));
        let crawl = crawler.crawl_page(&url).expect("crawl");
        stats.merge(&crawl.stats);
        models.push(crawl.model);
    }
    let mut b = IndexBuilder::new();
    for m in &models {
        b.add_model(m, None);
    }
    let index = b.build();
    let w = RankWeights::default();
    // On-topic: the focus keyword itself. Off-topic control: a generic term.
    let on = search(&index, &Query::parse("dance"), &w).len();
    let off = search(&index, &Query::parse("funny"), &w).len();
    Row {
        config: name.to_string(),
        states: stats.states,
        network_calls: stats.ajax_network_calls,
        crawl_s: stats.crawl_micros as f64 / 1e6,
        on_topic_results: on,
        off_topic_results: off,
    }
}

fn main() {
    let n = 100u32;
    let server = Arc::new(VidShareServer::new(VidShareSpec::small(n)));
    let full = run(&server, n, CrawlConfig::ajax(), "full AJAX crawl");
    let focused = run(
        &server,
        n,
        CrawlConfig::ajax().focused_on(["dance"]),
        "focused on 'dance'",
    );

    let mut t = TableFmt::new(vec![
        "config",
        "states",
        "network calls",
        "crawl (s)",
        "'dance' results",
        "'funny' results",
    ]);
    for r in [&full, &focused] {
        t.row(vec![
            r.config.clone(),
            r.states.to_string(),
            r.network_calls.to_string(),
            format!("{:.1}", r.crawl_s),
            r.on_topic_results.to_string(),
            r.off_topic_results.to_string(),
        ]);
    }
    println!(
        "Focused crawling — cost vs on-topic recall (§7.2.2 / ch. 10)\n{}",
        t.render()
    );
    println!(
        "focused crawl keeps {:.0}% of on-topic results at {:.0}% of the network cost",
        focused.on_topic_results as f64 / full.on_topic_results.max(1) as f64 * 100.0,
        focused.network_calls as f64 / full.network_calls.max(1) as f64 * 100.0,
    );
    ajax_bench::util::write_json("focused", &vec![full, focused]);
}
