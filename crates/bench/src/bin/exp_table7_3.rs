//! Regenerates Table 7.3 (parallel crawling times).
use ajax_bench::exp::parallel;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = parallel::collect(&scale);
    println!("{}", data.render_table7_3());
    util::write_json("table7_3", &data);
}
