//! Runs every ch. 7 experiment (sharing the expensive crawls) and prints all
//! tables/figures. `AJAX_CRAWL_SCALE=paper` for thesis scale.
use ajax_bench::exp::{
    caching, crawl_perf, dataset, distributed, index_perf, parallel, pruning, queries, serving,
    threshold,
};
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    println!("=== AJAX Crawl evaluation — scale '{}' ===\n", scale.name);

    // §7.1/§7.2: one pair of serial crawls powers five experiments.
    let perf = crawl_perf::collect(&scale);
    let t71 = dataset::table7_1(&perf);
    println!("{}", t71.render());
    util::write_json("table7_1", &t71);

    let f71 = dataset::fig7_1(&scale);
    println!("{}", f71.render());
    util::write_json("fig7_1", &f71);

    let f72 = dataset::fig7_2(&scale, &perf);
    println!("{}", f72.render());
    util::write_json("fig7_2", &f72);

    let t72 = crawl_perf::table7_2(&perf);
    println!("{}", t72.render());
    util::write_json("table7_2", &t72);

    let f73 = crawl_perf::fig7_3(&perf);
    println!("{}", f73.render());
    util::write_json("fig7_3", &f73);

    let f74 = crawl_perf::fig7_4(&perf);
    println!("{}", f74.render());
    util::write_json("fig7_4", &f74);

    // §7.3: caching.
    let cache = caching::collect(&scale);
    let f75 = caching::fig7_5(&cache);
    println!("{}", f75.render("Fig 7.5", "caching reduces calls ~5x"));
    util::write_json("fig7_5", &f75);
    let f76 = caching::fig7_6(&cache);
    println!(
        "{}",
        f76.render("Fig 7.6", "network time reduced to ~0.37x")
    );
    util::write_json("fig7_6", &f76);
    let f77 = caching::fig7_7(&cache);
    println!("{}", f77.render("Fig 7.7", "throughput improves ~1.6x"));
    util::write_json("fig7_7", &f77);

    // §7.4: parallelization.
    let par = parallel::collect(&scale);
    println!("{}", par.render_table7_3());
    println!("{}", par.render_fig7_8());
    util::write_json("table7_3", &par);
    util::write_json("fig7_8", &par);

    // §7.5: queries.
    let t74 = queries::table7_4(&scale);
    println!("{}", t74.render());
    util::write_json("table7_4", &t74);

    let qdata = queries::collect(&scale);
    let timings = queries::table7_5(&qdata);
    println!("{}", timings.render_table7_5());
    println!("{}", timings.render_fig7_9());
    util::write_json("table7_5", &timings);
    util::write_json("fig7_9", &timings);

    // Serving subsystem (ajax-serve): worker pools, cache, admission.
    let srv = serving::collect(&scale);
    println!("{}", srv.render());
    util::write_json("serving", &srv);

    // Columnar index: build throughput, query percentiles, kernel speedup.
    let iperf = index_perf::collect(scale.query_pages);
    println!("{}", iperf.render());
    util::write_json("index_perf", &iperf);

    // Distributed serving (ajax-dist): QPS scaling, slow-shard hedging, and
    // the double-launch determinism check (same corpus and seeds ⇒ identical
    // merged results — the exp_fault_sweep discipline applied to serving).
    let dist = distributed::collect(scale.query_pages.min(40));
    println!("{}", dist.render());
    util::write_json("distributed", &dist);
    assert!(
        dist.all_consistent(),
        "distributed serving diverged from single-process results or \
         across launches"
    );

    // Static crawl planner: events saved + soundness cross-check (small
    // fixed sites — the invariants, not the scale, are the point here).
    let prune = pruning::collect(12, 6);
    println!("{}", prune.render());
    util::write_json("static_prune", &prune);
    assert!(prune.all_sound(), "static-prune soundness violated");

    // §7.6/§7.7: thresholds and recall.
    let th = threshold::collect(&qdata);
    println!("{}", th.render_fig7_10());
    println!("{}", th.render_fig7_11());
    util::write_json("fig7_10", &th);
    util::write_json("fig7_11", &th);

    println!("=== summary ===");
    println!("{}", crawl_perf::summary(&perf));
    println!(
        "caching: calls x{:.2} fewer, net time x{:.2} less, throughput x{:.2} more",
        caching::fig7_5(&cache).final_factor(),
        caching::fig7_6(&cache).final_factor(),
        1.0 / caching::fig7_7(&cache).final_factor().max(1e-9),
    );
    println!(
        "parallel ({} lines): AJAX speedup x{:.2}",
        par.proc_lines,
        par.ajax.serial_micros as f64 / par.ajax.parallel_micros as f64
    );
    println!(
        "recall gain at 11 states: {:.3}",
        th.samples
            .last()
            .map(|s| s.one_minus_rel_recall)
            .unwrap_or(0.0)
    );
    println!(
        "serving ({} workers): virtual speedup x{:.2}, cache hit rate {:.0}%, {} lost",
        srv.workers,
        srv.virtual_speedup,
        srv.repeat_hit_rate * 100.0,
        srv.burst_lost
    );
    println!(
        "index kernel ({}): x{:.2} over pre-columnar reference, p50 {:.1} µs / p95 {:.1} µs",
        iperf.kernel.site,
        iperf.kernel.speedup,
        iperf.sites[0].query_p50_micros,
        iperf.sites[0].query_p95_micros,
    );
    println!(
        "distributed: QPS {} at 1/2/4 shards, slow-shard p99 {:.1} → {:.1} ms \
         with hedging ({} hedges), deterministic: {}",
        dist.scaling
            .iter()
            .map(|s| format!("{:.0}", s.qps))
            .collect::<Vec<_>>()
            .join("/"),
        dist.fault.p99_hedge_off_micros / 1e3,
        dist.fault.p99_hedge_on_micros / 1e3,
        dist.fault.hedges_fired,
        dist.deterministic,
    );
}
