//! Distributed-serving experiment: QPS scaling across 1/2/4 shard clusters,
//! p99 under an injected slow shard with hedging off vs on, and
//! determinism across launches. Writes `BENCH_distributed.json` in the
//! working directory (the repo's perf baseline) in addition to the usual
//! `target/experiments/distributed.json` dump. Exits nonzero if any
//! consistency invariant fails.
//!
//! ```sh
//! exp_distributed [--videos N]    # default: the scale's query_pages
//! ```
use ajax_bench::exp::distributed;
use ajax_bench::{util, Scale};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let videos: u32 = args
        .iter()
        .position(|a| a == "--videos")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--videos must be a number"))
        .unwrap_or_else(|| Scale::from_env().query_pages);

    let data = distributed::collect(videos);
    println!("{}", data.render());
    util::write_json("distributed", &data);

    match serde_json::to_string_pretty(&data) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_distributed.json", json) {
                eprintln!("warning: cannot write BENCH_distributed.json: {e}");
            } else {
                eprintln!("(baseline dump: BENCH_distributed.json)");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize baseline: {e}"),
    }

    if data.all_consistent() {
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "FAIL: distributed results diverged from single-process serving \
             or across launches"
        );
        ExitCode::FAILURE
    }
}
