//! Static-prune experiment: crawl VidShare and NewsShare with the static
//! crawl planner on, off, and in verify mode; then crawl the Gallery site
//! with the equivalence/commutativity planner off, on, and in verify mode.
//! Fails (exit 1) on any soundness mismatch, model divergence, if nothing
//! was pruned at all, or if the equivalence planner saves less than 40% of
//! fired events on the redundant-handler site.
//!
//! ```sh
//! exp_static_prune --videos 12 --pages 6 --albums 6
//! ```
use ajax_bench::exp::pruning;
use ajax_bench::util;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str, default: u32) -> u32 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let videos = flag_value(&args, "--videos", 12);
    let pages = flag_value(&args, "--pages", 6);
    let albums = flag_value(&args, "--albums", 6);

    let report = pruning::collect(videos, pages);
    println!("{}", report.render());
    util::write_json("static_prune", &report);

    let equiv = pruning::collect_equiv(albums);
    println!("{}", equiv.render());
    util::write_json("equiv_prune", &equiv);

    let mut ok = true;
    if !(report.all_sound() && report.any_pruned()) {
        eprintln!("FAIL: prune soundness violated or nothing pruned");
        ok = false;
    }
    if !equiv.all_sound() {
        eprintln!("FAIL: equivalence-pruning soundness violated");
        ok = false;
    }
    if !equiv.meets_target() {
        eprintln!("FAIL: equivalence pruning saved less than 40% of fired events");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
