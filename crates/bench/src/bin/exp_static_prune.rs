//! Static-prune experiment: crawl VidShare and NewsShare with the static
//! crawl planner on, off, and in verify mode; fails (exit 1) on any
//! soundness mismatch, model divergence, or if nothing was pruned at all.
//!
//! ```sh
//! exp_static_prune --videos 12 --pages 6
//! ```
use ajax_bench::exp::pruning;
use ajax_bench::util;
use std::process::ExitCode;

fn flag_value(args: &[String], flag: &str, default: u32) -> u32 {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let videos = flag_value(&args, "--videos", 12);
    let pages = flag_value(&args, "--pages", 6);

    let report = pruning::collect(videos, pages);
    println!("{}", report.render());
    util::write_json("static_prune", &report);

    if report.all_sound() && report.any_pruned() {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: prune soundness violated or nothing pruned");
        ExitCode::FAILURE
    }
}
