//! Regenerates Table 7.1 (dataset statistics of the crawled corpus).
use ajax_bench::exp::{crawl_perf, dataset};
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = crawl_perf::collect(&scale);
    let table = dataset::table7_1(&data);
    println!("{}", table.render());
    util::write_json("table7_1", &table);
}
