//! Regenerates Fig 7.9 (query throughput, traditional vs AJAX).
use ajax_bench::exp::queries;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = queries::collect(&scale);
    let timings = queries::table7_5(&data);
    println!("{}", timings.render_fig7_9());
    util::write_json("fig7_9", &timings);
}
