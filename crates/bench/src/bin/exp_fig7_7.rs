//! Regenerates Fig 7.7 (state throughput with and without the policy).
use ajax_bench::exp::caching;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = caching::collect(&scale);
    let fig = caching::fig7_7(&data);
    println!("{}", fig.render("Fig 7.7", "throughput improves ~1.6x"));
    util::write_json("fig7_7", &fig);
}
