//! Regenerates Fig 7.1 (distribution of videos by comment-page count).
use ajax_bench::exp::dataset;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let fig = dataset::fig7_1(&scale);
    println!("{}", fig.render());
    util::write_json("fig7_1", &fig);
}
