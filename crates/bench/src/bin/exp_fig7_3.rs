//! Regenerates Fig 7.3 (distribution of per-page crawling times).
use ajax_bench::exp::crawl_perf;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = crawl_perf::collect(&scale);
    let fig = crawl_perf::fig7_3(&data);
    println!("{}", fig.render());
    util::write_json("fig7_3", &fig);
}
