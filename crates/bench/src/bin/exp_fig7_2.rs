//! Regenerates Fig 7.2 (states and events vs number of crawled videos).
use ajax_bench::exp::{crawl_perf, dataset};
use ajax_bench::{util, Scale};

fn main() {
    let mut scale = Scale::from_env();
    // Fig 7.2 only needs the largest growth subset.
    scale.crawl_pages = scale.growth_subsets.iter().copied().max().unwrap_or(500);
    let data = crawl_perf::collect(&scale);
    let fig = dataset::fig7_2(&scale, &data);
    println!("{}", fig.render());
    util::write_json("fig7_2", &fig);
}
