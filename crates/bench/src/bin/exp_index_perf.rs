//! Index-layout performance: build throughput, query latency percentiles,
//! and the columnar kernel's measured speedup over the pre-columnar
//! reference, on both synthetic sites. Writes `BENCH_index.json` in the
//! working directory (the repo's perf baseline) in addition to the usual
//! `target/experiments/index_perf.json` dump.
//!
//! ```sh
//! exp_index_perf [--pages N]    # default: the scale's query_pages
//! ```
use ajax_bench::exp::index_perf;
use ajax_bench::{util, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pages: u32 = args
        .iter()
        .position(|a| a == "--pages")
        .and_then(|i| args.get(i + 1))
        .map(|v| v.parse().expect("--pages must be a number"))
        .unwrap_or_else(|| Scale::from_env().query_pages);

    let data = index_perf::collect(pages);
    println!("{}", data.render());
    util::write_json("index_perf", &data);

    match serde_json::to_string_pretty(&data) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_index.json", json) {
                eprintln!("warning: cannot write BENCH_index.json: {e}");
            } else {
                eprintln!("(baseline dump: BENCH_index.json)");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize baseline: {e}"),
    }
}
