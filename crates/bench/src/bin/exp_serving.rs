//! Serving-subsystem experiment: worker-pool throughput vs the sequential
//! broker, result-cache hit rate on a repeated workload, and overload
//! accounting under a closed-loop burst.
use ajax_bench::exp::serving;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = serving::collect(&scale);
    println!("{}", data.render());
    util::write_json("serving", &data);
}
