//! Regenerates Fig 7.6 (network time with and without the hot-node policy).
use ajax_bench::exp::caching;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = caching::collect(&scale);
    let fig = caching::fig7_6(&data);
    println!(
        "{}",
        fig.render("Fig 7.6", "network time reduced to ~0.37x")
    );
    util::write_json("fig7_6", &fig);
}
