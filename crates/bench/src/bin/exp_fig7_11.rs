//! Regenerates Fig 7.11 (1 − RelRecall vs number of crawled states).
use ajax_bench::exp::{queries, threshold};
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = queries::collect(&scale);
    let t = threshold::collect(&data);
    println!("{}", t.render_fig7_11());
    util::write_json("fig7_11", &t);
}
