//! Regenerates Fig 7.8 (parallel vs non-parallel mean crawl time per video).
use ajax_bench::exp::parallel;
use ajax_bench::{util, Scale};

fn main() {
    let scale = Scale::from_env();
    let data = parallel::collect(&scale);
    println!("{}", data.render_fig7_8());
    util::write_json("fig7_8", &data);
}
