//! Ablation: hot-node count vs caching benefit.
//!
//! The thesis conjectures (§7.3) that applications with more than one hot
//! node benefit even more from the caching policy. We compare the
//! network-call reduction factor on VidShare (1 hot node, linear comment
//! chain) and NewsShare (2 hot nodes, product-shaped state space).

use ajax_bench::util::{latency, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_net::{Server, Url};
use ajax_webgen::{NewsShareServer, NewsSpec, VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Clone, Serialize)]
struct SiteRow {
    site: String,
    hot_nodes: u64,
    pages: u32,
    uncached_calls: u64,
    cached_calls: u64,
    reduction: f64,
    net_time_factor: f64,
}

fn crawl_site(server: Arc<dyn Server>, urls: &[String], config: CrawlConfig) -> PageStats {
    let mut crawler = Crawler::new(server, latency(), config);
    let mut total = PageStats::default();
    for url in urls {
        total.merge(&crawler.crawl_page(&Url::parse(url)).expect("crawl").stats);
    }
    total
}

fn measure(site: &str, server: Arc<dyn Server>, urls: &[String], max_states: usize) -> SiteRow {
    let base = CrawlConfig::ajax().with_max_states(max_states);
    let cached = crawl_site(Arc::clone(&server), urls, base.clone());
    let uncached = crawl_site(
        server,
        urls,
        CrawlConfig {
            hot_node_policy: false,
            ..base
        },
    );
    assert_eq!(cached.states, uncached.states, "cache must be transparent");
    SiteRow {
        site: site.to_string(),
        hot_nodes: cached.hot_nodes,
        pages: urls.len() as u32,
        uncached_calls: uncached.ajax_network_calls,
        cached_calls: cached.ajax_network_calls,
        reduction: uncached.ajax_network_calls as f64 / cached.ajax_network_calls.max(1) as f64,
        net_time_factor: uncached.network_micros as f64 / cached.network_micros.max(1) as f64,
    }
}

fn main() {
    let n = 60u32;

    let vid_spec = VidShareSpec::small(n);
    let vid_urls: Vec<String> = (0..n).map(|v| vid_spec.watch_url(v)).collect();
    let vid = measure(
        "VidShare (comments)",
        Arc::new(VidShareServer::new(vid_spec)),
        &vid_urls,
        11,
    );

    let news_spec = NewsSpec::small(n);
    let news_urls: Vec<String> = (0..n).map(|p| news_spec.page_url(p)).collect();
    let news = measure(
        "NewsShare (tabs+stories)",
        Arc::new(NewsShareServer::new(news_spec)),
        &news_urls,
        20,
    );

    let mut t = TableFmt::new(vec![
        "site",
        "hot nodes",
        "pages",
        "calls (no cache)",
        "calls (cached)",
        "reduction",
        "net-time factor",
    ]);
    for row in [&vid, &news] {
        t.row(vec![
            row.site.clone(),
            row.hot_nodes.to_string(),
            row.pages.to_string(),
            row.uncached_calls.to_string(),
            row.cached_calls.to_string(),
            format!("x{:.2}", row.reduction),
            format!("x{:.2}", row.net_time_factor),
        ]);
    }
    println!(
        "Ablation — caching benefit vs number of hot nodes (§7.3 conjecture)\n{}",
        t.render()
    );
    println!(
        "conjecture {}: multi-hot-node site reduction x{:.2} vs single x{:.2}",
        if news.reduction >= vid.reduction {
            "SUPPORTED"
        } else {
            "NOT SUPPORTED"
        },
        news.reduction,
        vid.reduction
    );
    ajax_bench::util::write_json("ablation_hotnodes", &vec![vid, news]);
}
