//! Durability overhead: crawl throughput with the checkpoint journal off
//! vs on at several cadences. Writes `BENCH_durability.json` in the working
//! directory (the repo's perf baseline) in addition to the usual
//! `target/experiments/durability.json` dump; exits 1 if checkpointing
//! changes the crawled output at all.
//!
//! ```sh
//! exp_durability --videos 64 --every 0,1,8,64 --repeats 3
//! ```
use ajax_bench::exp::durability;
use ajax_bench::util;
use std::process::ExitCode;

fn parse_list<T: std::str::FromStr>(args: &[String], flag: &str, default: &str) -> Vec<T> {
    let raw = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(default);
    raw.split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let videos: u32 = parse_list(&args, "--videos", "64")
        .first()
        .copied()
        .unwrap_or(64);
    let repeats: u32 = parse_list(&args, "--repeats", "3")
        .first()
        .copied()
        .unwrap_or(3);
    // Cell 0 must be the checkpointing-off baseline the others compare to.
    let mut cadences: Vec<usize> = parse_list(&args, "--every", "0,1,8,64");
    if cadences.first() != Some(&0) {
        cadences.insert(0, 0);
    }

    let sweep = durability::collect(videos, &cadences, repeats);
    println!("{}", sweep.render());
    util::write_json("durability", &sweep);

    match serde_json::to_string_pretty(&sweep) {
        Ok(json) => {
            if let Err(e) = std::fs::write("BENCH_durability.json", json) {
                eprintln!("warning: cannot write BENCH_durability.json: {e}");
            } else {
                eprintln!("(baseline dump: BENCH_durability.json)");
            }
        }
        Err(e) => eprintln!("warning: cannot serialize baseline: {e}"),
    }

    if sweep.no_output_drift() {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: checkpointing changed the crawled models");
        ExitCode::FAILURE
    }
}
