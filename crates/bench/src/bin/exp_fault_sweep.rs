//! Fault-matrix smoke sweep: seeds × transient-fault rates over a VidShare
//! site; fails (exit 1) if any cell loses pages or is non-deterministic.
//!
//! ```sh
//! exp_fault_sweep --videos 12 --seeds 1,2 --rates 0,0.1,0.3
//! ```
use ajax_bench::exp::faults;
use ajax_bench::util;
use std::process::ExitCode;

fn parse_list<T: std::str::FromStr>(args: &[String], flag: &str, default: &str) -> Vec<T> {
    let raw = args
        .iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or(default);
    raw.split(',')
        .filter(|s| !s.is_empty())
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let videos: u32 = parse_list(&args, "--videos", "12")
        .first()
        .copied()
        .unwrap_or(12);
    let seeds: Vec<u64> = parse_list(&args, "--seeds", "1,2");
    let rates: Vec<f64> = parse_list(&args, "--rates", "0,0.1,0.3");

    let sweep = faults::collect(videos, &seeds, &rates);
    println!("{}", sweep.render());
    util::write_json("fault_sweep", &sweep);

    if sweep.all_resilient() {
        ExitCode::SUCCESS
    } else {
        eprintln!("FAIL: lost pages or non-deterministic cells in the sweep");
        ExitCode::FAILURE
    }
}
