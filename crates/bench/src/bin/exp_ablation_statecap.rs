//! Ablation: the additional-states cap (`SACR_NUM_OF_ADDITIONAL_STATES`) —
//! crawl cost and coverage as the cap sweeps 1..11. Complements the
//! threshold discussion of §7.6.

use ajax_bench::util::{latency, TableFmt};
use ajax_crawl::crawler::{CrawlConfig, Crawler, PageStats};
use ajax_net::{Server, Url};
use ajax_webgen::{VidShareServer, VidShareSpec};
use serde::Serialize;
use std::sync::Arc;

#[derive(Debug, Clone, Serialize)]
struct Row {
    cap: usize,
    states: u64,
    network_calls: u64,
    crawl_s: f64,
}

fn main() {
    let n = 80u32;
    let spec = VidShareSpec::small(n);
    let urls: Vec<String> = (0..n).map(|v| spec.watch_url(v)).collect();
    let server: Arc<VidShareServer> = Arc::new(VidShareServer::new(spec));

    let mut rows = Vec::new();
    for cap in [1usize, 2, 3, 4, 5, 7, 9, 11] {
        let mut crawler = Crawler::new(
            Arc::clone(&server) as Arc<dyn Server>,
            latency(),
            CrawlConfig::ajax().with_max_states(cap),
        );
        let mut total = PageStats::default();
        for url in &urls {
            total.merge(&crawler.crawl_page(&Url::parse(url)).expect("crawl").stats);
        }
        rows.push(Row {
            cap,
            states: total.states,
            network_calls: total.ajax_network_calls,
            crawl_s: total.crawl_micros as f64 / 1e6,
        });
    }

    let mut t = TableFmt::new(vec!["state cap", "states", "network calls", "crawl (s)"]);
    for r in &rows {
        t.row(vec![
            r.cap.to_string(),
            r.states.to_string(),
            r.network_calls.to_string(),
            format!("{:.1}", r.crawl_s),
        ]);
    }
    println!(
        "Ablation — state cap sweep (crawl cost side of the §7.6 threshold)\n{}",
        t.render()
    );
    ajax_bench::util::write_json("ablation_statecap", &rows);
}
