//! Typed errors for cluster setup and the shard binary — the user-facing
//! replacements for the socket-setup panics the serve CLI used to have.

use std::fmt;
use std::net::SocketAddr;

/// Why a shard, transport, or cluster could not be brought up.
#[derive(Debug)]
pub enum DistError {
    /// Binding the shard listener failed. `AddrInUse` gets an actionable
    /// message naming the port and the `--port` flag.
    Bind {
        host: String,
        port: u16,
        source: std::io::Error,
    },
    /// Connecting to a shard (or its proxy) failed after retries.
    Connect {
        addr: SocketAddr,
        source: std::io::Error,
    },
    /// The shard answered the handshake with something unexpected.
    Handshake { addr: SocketAddr, detail: String },
    /// Spawning or initializing a shard child process failed.
    Spawn(String),
    /// A configuration value was rejected before any socket was touched.
    InvalidConfig(String),
    /// Any other I/O failure (index save/load for child processes, …).
    Io(std::io::Error),
}

impl fmt::Display for DistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistError::Bind { host, port, source } => {
                if source.kind() == std::io::ErrorKind::AddrInUse {
                    write!(
                        f,
                        "port {port} on {host} is already in use; \
                         pass --port to choose a different one"
                    )
                } else {
                    write!(f, "cannot bind {host}:{port}: {source}")
                }
            }
            DistError::Connect { addr, source } => {
                write!(f, "cannot connect to shard at {addr}: {source}")
            }
            DistError::Handshake { addr, detail } => {
                write!(f, "handshake with shard at {addr} failed: {detail}")
            }
            DistError::Spawn(detail) => write!(f, "cannot spawn shard process: {detail}"),
            DistError::InvalidConfig(detail) => write!(f, "invalid configuration: {detail}"),
            DistError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for DistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DistError::Bind { source, .. } | DistError::Connect { source, .. } => Some(source),
            DistError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for DistError {
    fn from(e: std::io::Error) -> Self {
        DistError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_in_use_message_names_port_and_flag() {
        let err = DistError::Bind {
            host: "127.0.0.1".into(),
            port: 7700,
            source: std::io::Error::from(std::io::ErrorKind::AddrInUse),
        };
        let msg = err.to_string();
        assert!(msg.contains("7700"), "message names the port: {msg}");
        assert!(msg.contains("--port"), "message suggests --port: {msg}");
    }

    #[test]
    fn other_bind_errors_keep_the_source() {
        let err = DistError::Bind {
            host: "127.0.0.1".into(),
            port: 80,
            source: std::io::Error::from(std::io::ErrorKind::PermissionDenied),
        };
        assert!(err.to_string().contains("cannot bind 127.0.0.1:80"));
    }
}
