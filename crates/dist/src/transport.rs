//! [`TcpTransport`]: the coordinator's side of the wire.
//!
//! One persistent connection per shard. `ship` assigns each shard a fresh
//! correlation id, registers the query's [`Rendezvous`] as pending, and
//! writes one `Eval` frame per shard back-to-back — queries *pipeline*: many
//! can be in flight per connection, and a dedicated reader thread per shard
//! routes each reply to its rendezvous by id, in whatever order shards
//! answer.
//!
//! Failure semantics:
//!
//! * **connection death** — every pending query on that connection is
//!   delivered `Failed` (the coordinator degrades those responses), then the
//!   reader reconnects with exponential backoff (5 ms doubling, capped at
//!   500 ms) and re-handshakes. Queries shipped while disconnected fail fast
//!   instead of queueing.
//! * **hedging** — with `hedge_after_micros` set, a watchdog re-issues the
//!   query for every shard still unanswered after the hedge delay, on a
//!   *fresh direct connection* to the shard (`direct_addr`, bypassing any
//!   chaos proxy in `addr`). The rendezvous keeps the first delivery per
//!   shard, so hedging can only improve latency — never change results.

use crate::error::DistError;
use crate::proto::{read_message, write_message, EvalRequest, Message, ShardInfo};
use ajax_index::{InvertedIndex, Query, RankWeights};
use ajax_net::Micros;
use ajax_obs::{AttrValue, SpanLog};
use ajax_serve::{Rendezvous, ShardOutcome, ShardTransport, TransportError};
use std::collections::HashMap;
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Where one shard lives.
#[derive(Debug, Clone, Copy)]
pub struct ShardEndpoint {
    /// The address queries normally go through (may be a chaos proxy).
    pub addr: SocketAddr,
    /// The shard's real address — the hedge path connects here directly.
    pub direct_addr: SocketAddr,
}

impl ShardEndpoint {
    /// An endpoint with no proxy in front.
    pub fn direct(addr: SocketAddr) -> Self {
        Self {
            addr,
            direct_addr: addr,
        }
    }
}

/// Tunables for [`TcpTransport::connect`].
#[derive(Default)]
pub struct TcpTransportConfig {
    /// Re-issue a query to shards still silent after this many µs, over a
    /// fresh direct connection. `None` disables hedging.
    pub hedge_after_micros: Option<u64>,
    /// Shared flight-recorder ring for `rpc.send` / `rpc.recv` /
    /// `dist.hedge` spans (pass the same ring to
    /// `ShardServer::from_transport` for one combined timeline).
    pub trace: Option<Arc<Mutex<SpanLog>>>,
}

struct ShardConn {
    shard_idx: usize,
    endpoint: ShardEndpoint,
    /// Write half; `None` while the reader is reconnecting, so shipping
    /// fails fast instead of queueing on a dead socket.
    writer: Mutex<Option<TcpStream>>,
    /// In-flight queries awaiting replies, by correlation id.
    pending: Mutex<HashMap<u64, Arc<Rendezvous>>>,
    info: Mutex<ShardInfo>,
    shutting_down: Arc<AtomicBool>,
    trace: Option<Arc<Mutex<SpanLog>>>,
    epoch: Instant,
}

impl ShardConn {
    fn now(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Coordinator-side spans go on track 0 with the server's own spans.
    fn record_span(&self, name: &'static str, start: u64, end: u64, id: u64) {
        if let Some(trace) = &self.trace {
            let mut log = trace.lock().expect("transport trace lock");
            log.set_track(0);
            log.push(
                name,
                start,
                end,
                vec![
                    ("shard", AttrValue::U64(self.shard_idx as u64)),
                    ("id", AttrValue::U64(id)),
                ],
            );
        }
    }

    /// Fails every pending query on this connection (connection death).
    fn fail_pending(&self) {
        for (_, reply) in self.pending.lock().unwrap().drain() {
            reply.deliver(self.shard_idx, ShardOutcome::Failed);
        }
    }
}

/// The remote shard transport. Build with [`TcpTransport::connect`], then
/// hand to `ShardServer::from_transport`.
pub struct TcpTransport {
    conns: Vec<Arc<ShardConn>>,
    hedge_after_micros: Option<u64>,
    next_id: AtomicU64,
    hedges_fired: Arc<AtomicU64>,
    shutting_down: Arc<AtomicBool>,
    readers: Vec<JoinHandle<()>>,
}

/// Connects with a few quick retries — shard processes may still be coming
/// up when the coordinator starts.
fn connect_retry(addr: SocketAddr) -> Result<TcpStream, DistError> {
    let mut last_err = None;
    for attempt in 0..40u32 {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                let _ = stream.set_nodelay(true);
                return Ok(stream);
            }
            Err(e) => last_err = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5 + u64::from(attempt) * 5));
    }
    Err(DistError::Connect {
        addr,
        source: last_err.unwrap_or_else(|| std::io::Error::from(std::io::ErrorKind::TimedOut)),
    })
}

/// Ping → Pong identity exchange on a fresh connection.
fn handshake(stream: &mut TcpStream, addr: SocketAddr) -> Result<ShardInfo, DistError> {
    write_message(stream, &Message::Ping).map_err(|e| DistError::Handshake {
        addr,
        detail: e.to_string(),
    })?;
    match read_message(stream) {
        Ok(Message::Pong(info)) => {
            if info.proto_version != crate::proto::PROTO_VERSION {
                return Err(DistError::Handshake {
                    addr,
                    detail: format!(
                        "protocol version mismatch: coordinator speaks {}, shard speaks {}",
                        crate::proto::PROTO_VERSION,
                        info.proto_version
                    ),
                });
            }
            Ok(info)
        }
        Ok(other) => Err(DistError::Handshake {
            addr,
            detail: format!("expected Pong, got {other:?}"),
        }),
        Err(e) => Err(DistError::Handshake {
            addr,
            detail: e.to_string(),
        }),
    }
}

impl TcpTransport {
    /// Connects to every endpoint (in shard order), handshakes, and starts
    /// one reader thread per shard.
    pub fn connect(
        endpoints: Vec<ShardEndpoint>,
        config: TcpTransportConfig,
    ) -> Result<Self, DistError> {
        if endpoints.is_empty() {
            return Err(DistError::InvalidConfig(
                "a cluster needs at least one shard".to_string(),
            ));
        }
        let shutting_down = Arc::new(AtomicBool::new(false));
        let epoch = Instant::now();
        let mut conns = Vec::with_capacity(endpoints.len());
        let mut readers = Vec::with_capacity(endpoints.len());
        for (shard_idx, endpoint) in endpoints.into_iter().enumerate() {
            let mut stream = connect_retry(endpoint.addr)?;
            let info = handshake(&mut stream, endpoint.addr)?;
            let read_half = stream.try_clone().map_err(DistError::Io)?;
            let conn = Arc::new(ShardConn {
                shard_idx,
                endpoint,
                writer: Mutex::new(Some(stream)),
                pending: Mutex::new(HashMap::new()),
                info: Mutex::new(info),
                shutting_down: Arc::clone(&shutting_down),
                trace: config.trace.clone(),
                epoch,
            });
            let reader_conn = Arc::clone(&conn);
            let reader = std::thread::Builder::new()
                .name(format!("ajax-dist-rx{shard_idx}"))
                .spawn(move || reader_loop(&reader_conn, read_half))
                .map_err(|e| DistError::Spawn(e.to_string()))?;
            conns.push(conn);
            readers.push(reader);
        }
        Ok(Self {
            conns,
            hedge_after_micros: config.hedge_after_micros,
            next_id: AtomicU64::new(1),
            hedges_fired: Arc::new(AtomicU64::new(0)),
            shutting_down,
            readers,
        })
    }

    /// Shared counter of hedge requests issued — clone the `Arc` before
    /// boxing the transport into a server if you want to read it later.
    pub fn hedge_counter(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.hedges_fired)
    }

    /// Per-shard identities from the last handshake (diagnostics).
    pub fn shard_infos(&self) -> Vec<ShardInfo> {
        self.conns
            .iter()
            .map(|c| c.info.lock().unwrap().clone())
            .collect()
    }
}

fn reader_loop(conn: &Arc<ShardConn>, mut stream: TcpStream) {
    loop {
        match read_message(&mut stream) {
            Ok(Message::Reply(reply)) => {
                let t = conn.now();
                let pending = conn.pending.lock().unwrap().remove(&reply.id);
                if let Some(rendezvous) = pending {
                    conn.record_span("rpc.recv", t, conn.now(), reply.id);
                    rendezvous.deliver(
                        conn.shard_idx,
                        ShardOutcome::Evaluated(reply.results, reply.stats),
                    );
                }
            }
            Ok(Message::Error(err)) => {
                let pending = conn.pending.lock().unwrap().remove(&err.id);
                if let Some(rendezvous) = pending {
                    rendezvous.deliver(conn.shard_idx, ShardOutcome::Failed);
                }
            }
            // Stray frames (e.g. a Pong from diagnostics) are ignored.
            Ok(_) => {}
            Err(_) => {
                // Connection died: fail in-flight queries, then reconnect
                // with backoff unless the transport is shutting down.
                *conn.writer.lock().unwrap() = None;
                conn.fail_pending();
                if conn.shutting_down.load(Ordering::SeqCst) {
                    return;
                }
                match reconnect_backoff(conn) {
                    Some(new_stream) => stream = new_stream,
                    None => return,
                }
            }
        }
    }
}

/// Exponential backoff reconnect: 5 ms doubling, capped at 500 ms per
/// attempt, forever — a crashed shard that comes back is re-adopted
/// automatically. Returns `None` when the transport shut down meanwhile.
fn reconnect_backoff(conn: &Arc<ShardConn>) -> Option<TcpStream> {
    let mut delay = Duration::from_millis(5);
    loop {
        if conn.shutting_down.load(Ordering::SeqCst) {
            return None;
        }
        std::thread::sleep(delay);
        delay = (delay * 2).min(Duration::from_millis(500));
        let Ok(mut stream) = TcpStream::connect(conn.endpoint.addr) else {
            continue;
        };
        let _ = stream.set_nodelay(true);
        let Ok(info) = handshake(&mut stream, conn.endpoint.addr) else {
            continue;
        };
        let Ok(read_half) = stream.try_clone() else {
            continue;
        };
        *conn.info.lock().unwrap() = info;
        *conn.writer.lock().unwrap() = Some(stream);
        return Some(read_half);
    }
}

/// One synchronous hedge round-trip on a fresh direct connection.
fn hedge_eval(
    conn: &ShardConn,
    id: u64,
    query: &Query,
    weights: RankWeights,
) -> Result<(Vec<ajax_index::ShardResult>, ajax_index::ShardTermStats), std::io::Error> {
    let mut stream = TcpStream::connect(conn.endpoint.direct_addr)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write_message(
        &mut stream,
        &Message::Eval(EvalRequest {
            id,
            query: query.clone(),
            weights,
        }),
    )?;
    loop {
        match read_message(&mut stream)? {
            Message::Reply(reply) if reply.id == id => return Ok((reply.results, reply.stats)),
            Message::Error(err) if err.id == id => return Err(std::io::Error::other(err.message)),
            _ => {}
        }
    }
}

impl ShardTransport for TcpTransport {
    fn shard_count(&self) -> usize {
        self.conns.len()
    }

    fn worker_count(&self) -> usize {
        // One connection (hence one pipelined lane) per shard.
        self.conns.len()
    }

    fn ship(
        &self,
        query: Arc<Query>,
        weights: RankWeights,
        _deadline: Option<Micros>,
        reply: Arc<Rendezvous>,
    ) {
        let mut shipped_ids = Vec::with_capacity(self.conns.len());
        for conn in &self.conns {
            let id = self.next_id.fetch_add(1, Ordering::Relaxed);
            conn.pending.lock().unwrap().insert(id, Arc::clone(&reply));
            let send_start = conn.now();
            let sent = {
                let mut writer = conn.writer.lock().unwrap();
                match writer.as_mut() {
                    Some(stream) => {
                        let msg = Message::Eval(EvalRequest {
                            id,
                            query: (*query).clone(),
                            weights,
                        });
                        write_message(stream, &msg).is_ok()
                    }
                    // Reconnecting: fail fast rather than queue on a dead
                    // shard. The degraded response names this shard.
                    None => false,
                }
            };
            if sent {
                conn.record_span("rpc.send", send_start, conn.now(), id);
                shipped_ids.push(id);
            } else {
                conn.pending.lock().unwrap().remove(&id);
                reply.deliver(conn.shard_idx, ShardOutcome::Failed);
                shipped_ids.push(0); // placeholder; nothing to hedge
            }
        }

        // Hedge watchdog: after the delay, re-issue for silent shards on a
        // fresh direct connection. First delivery per shard wins, so this
        // never changes results — only tail latency.
        if let Some(hedge_after) = self.hedge_after_micros {
            let conns = self.conns.clone();
            let hedges = Arc::clone(&self.hedges_fired);
            let shutting_down = Arc::clone(&self.shutting_down);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_micros(hedge_after));
                for (conn, &id) in conns.iter().zip(&shipped_ids) {
                    if id == 0
                        || reply.arrived(conn.shard_idx)
                        || shutting_down.load(Ordering::SeqCst)
                    {
                        continue;
                    }
                    let start = conn.now();
                    hedges.fetch_add(1, Ordering::Relaxed);
                    let outcome = hedge_eval(conn, id, &query, weights);
                    conn.record_span("dist.hedge", start, conn.now(), id);
                    if let Ok((results, stats)) = outcome {
                        // Drop the pending entry so the (slower) primary
                        // reply is ignored by the reader too.
                        conn.pending.lock().unwrap().remove(&id);
                        reply.deliver(conn.shard_idx, ShardOutcome::Evaluated(results, stats));
                    }
                }
            });
        }
    }

    fn total_states(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.info.lock().unwrap().total_states)
            .sum()
    }

    fn index_bytes(&self) -> u64 {
        self.conns
            .iter()
            .map(|c| c.info.lock().unwrap().index_bytes)
            .sum()
    }

    fn reload(&self, _shards: Vec<InvertedIndex>) -> Result<(), TransportError> {
        Err(TransportError::Unsupported(
            "hot reload of remote shards — restart the shard processes with new partitions",
        ))
    }

    fn shutdown(&mut self) {
        self.shutting_down.store(true, Ordering::SeqCst);
        for conn in &self.conns {
            if let Some(stream) = conn.writer.lock().unwrap().take() {
                let _ = stream.shutdown(Shutdown::Both);
            }
            conn.fail_pending();
        }
        for reader in self.readers.drain(..) {
            let _ = reader.join();
        }
    }

    fn is_remote(&self) -> bool {
        true
    }
}

impl Drop for TcpTransport {
    fn drop(&mut self) {
        ShardTransport::shutdown(self);
    }
}
