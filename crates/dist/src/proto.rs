//! The shard wire protocol: length-prefixed frames on localhost TCP.
//!
//! A frame is `[u32 LE: frame length][u8: kind][JSON payload]`, where the
//! length covers the kind byte plus the payload. The kind byte discriminates
//! message types (the vendored serde derive handles plain structs, so the
//! discriminant lives outside the JSON rather than in a tagged enum); the
//! payload is the serde-JSON encoding of the matching payload struct, empty
//! for `Ping`.
//!
//! JSON is a deliberate choice over a hand-rolled binary encoding: the
//! vendored `serde_json` round-trips `f64` bit-exactly (shortest-roundtrip
//! formatting), which is what lets the coordinator's merged scores stay
//! bit-identical to single-process serving. Frames are small — a query is a
//! handful of terms, a reply is the shard's matching results — and the
//! framing itself is binary, so parsing never scans for delimiters.
//!
//! Request/response correlation is by explicit `id`: the coordinator
//! pipelines many `Eval` frames down one connection and the shard may
//! interleave replies from its evaluation threads in any order.

use ajax_index::{Query, RankWeights, ShardResult, ShardTermStats};
use serde::{Deserialize, Serialize};
use std::io::{self, Read, Write};

/// Protocol version, exchanged in [`ShardInfo`] at handshake.
pub const PROTO_VERSION: u64 = 1;

/// Upper bound on a frame body; anything larger means a corrupt or hostile
/// peer and is refused before allocation.
pub const MAX_FRAME_BYTES: u32 = 64 * 1024 * 1024;

const KIND_EVAL: u8 = 1;
const KIND_REPLY: u8 = 2;
const KIND_PING: u8 = 3;
const KIND_PONG: u8 = 4;
const KIND_ERROR: u8 = 5;

/// Coordinator → shard: evaluate `query` under `weights`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalRequest {
    /// Correlation id, echoed in the reply.
    pub id: u64,
    pub query: Query,
    pub weights: RankWeights,
}

/// Shard → coordinator: the local results plus the term stats the merger
/// needs for global idf (df per term, shard state count) — the "idf
/// exchange" travels with every reply, so the coordinator never caches
/// stale statistics across reloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalReply {
    pub id: u64,
    pub results: Vec<ShardResult>,
    pub stats: ShardTermStats,
}

/// Shard → coordinator at handshake (`Pong`): identity and index shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardInfo {
    pub shard_id: u64,
    pub proto_version: u64,
    /// `|Idx_i|` — used for diagnostics; the authoritative value for merging
    /// always comes per-reply in [`EvalReply::stats`].
    pub total_states: u64,
    pub index_bytes: u64,
    pub term_count: u64,
}

/// Shard → coordinator: the request with this `id` could not be evaluated.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireError {
    pub id: u64,
    pub message: String,
}

/// One protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    Eval(EvalRequest),
    Reply(EvalReply),
    Ping,
    Pong(ShardInfo),
    Error(WireError),
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Writes one frame. Not atomic across callers — writers serialize access
/// (the transport holds a per-connection write lock).
pub fn write_message(w: &mut impl Write, msg: &Message) -> io::Result<()> {
    let (kind, payload) = match msg {
        Message::Eval(m) => (KIND_EVAL, serde_json::to_string(m)),
        Message::Reply(m) => (KIND_REPLY, serde_json::to_string(m)),
        Message::Ping => (KIND_PING, Ok(String::new())),
        Message::Pong(m) => (KIND_PONG, serde_json::to_string(m)),
        Message::Error(m) => (KIND_ERROR, serde_json::to_string(m)),
    };
    let payload = payload.map_err(|e| invalid(format!("encode frame: {e:?}")))?;
    let len = 1 + payload.len() as u32;
    // One write per frame: header and payload coalesced so the kernel sees a
    // single segment (three small writes would hit Nagle + delayed-ACK
    // stalls of ~40 ms each on localhost).
    let mut frame = Vec::with_capacity(5 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.push(kind);
    frame.extend_from_slice(payload.as_bytes());
    w.write_all(&frame)?;
    w.flush()
}

/// Reads one frame, blocking. `Err(UnexpectedEof)` on clean connection
/// close at a frame boundary.
pub fn read_message(r: &mut impl Read) -> io::Result<Message> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len == 0 {
        return Err(invalid("zero-length frame".to_string()));
    }
    if len > MAX_FRAME_BYTES {
        return Err(invalid(format!("frame of {len} bytes exceeds limit")));
    }
    let mut kind = [0u8; 1];
    r.read_exact(&mut kind)?;
    let mut payload = vec![0u8; len as usize - 1];
    r.read_exact(&mut payload)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|_| invalid("frame payload is not UTF-8".to_string()))?;
    let decode_err = |e: serde_json::Error| invalid(format!("decode frame: {e:?}"));
    match kind[0] {
        KIND_EVAL => Ok(Message::Eval(
            serde_json::from_str(text).map_err(decode_err)?,
        )),
        KIND_REPLY => Ok(Message::Reply(
            serde_json::from_str(text).map_err(decode_err)?,
        )),
        KIND_PING => Ok(Message::Ping),
        KIND_PONG => Ok(Message::Pong(
            serde_json::from_str(text).map_err(decode_err)?,
        )),
        KIND_ERROR => Ok(Message::Error(
            serde_json::from_str(text).map_err(decode_err)?,
        )),
        other => Err(invalid(format!("unknown frame kind {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ajax_index::DocKey;

    fn round_trip(msg: Message) -> Message {
        let mut buf = Vec::new();
        write_message(&mut buf, &msg).unwrap();
        let decoded = read_message(&mut buf.as_slice()).unwrap();
        decoded
    }

    #[test]
    fn eval_round_trips() {
        let msg = Message::Eval(EvalRequest {
            id: 42,
            query: Query::parse("Morcheeba Enjoy the Ride"),
            weights: RankWeights::default(),
        });
        assert_eq!(round_trip(msg.clone()), msg);
    }

    #[test]
    fn reply_round_trips_score_bits_exactly() {
        // Scores that stress shortest-roundtrip float formatting: merge-time
        // fusion relies on these bits surviving the wire unchanged.
        let scores = [0.1 + 0.2, 1.0 / 3.0, f64::MIN_POSITIVE, 1e-300, 123.456e37];
        for (i, &score) in scores.iter().enumerate() {
            let msg = Message::Reply(EvalReply {
                id: i as u64,
                results: vec![ShardResult {
                    shard: 3,
                    url: "http://v/watch?v=1".into(),
                    doc: DocKey {
                        page: 7,
                        state: ajax_crawl::StateId(9),
                    },
                    base_score: score,
                    tfs: vec![score * 0.5, score],
                }],
                stats: ShardTermStats {
                    total_states: 1000,
                    df: vec![17, 0],
                },
            });
            let Message::Reply(decoded) = round_trip(msg) else {
                panic!("wrong kind")
            };
            assert_eq!(
                decoded.results[0].base_score.to_bits(),
                score.to_bits(),
                "bit-exact f64 round-trip for {score}"
            );
            assert_eq!(decoded.results[0].tfs[1].to_bits(), score.to_bits());
        }
    }

    #[test]
    fn ping_pong_round_trip() {
        assert_eq!(round_trip(Message::Ping), Message::Ping);
        let pong = Message::Pong(ShardInfo {
            shard_id: 2,
            proto_version: PROTO_VERSION,
            total_states: 5000,
            index_bytes: 1 << 20,
            term_count: 31337,
        });
        assert_eq!(round_trip(pong.clone()), pong);
    }

    #[test]
    fn error_round_trips() {
        let msg = Message::Error(WireError {
            id: 9,
            message: "evaluation panicked".into(),
        });
        assert_eq!(round_trip(msg.clone()), msg);
    }

    #[test]
    fn pipelined_frames_decode_in_sequence() {
        let mut buf = Vec::new();
        for id in 0..5u64 {
            write_message(
                &mut buf,
                &Message::Eval(EvalRequest {
                    id,
                    query: Query::parse("wow"),
                    weights: RankWeights::default(),
                }),
            )
            .unwrap();
        }
        let mut cursor = buf.as_slice();
        for id in 0..5u64 {
            let Message::Eval(req) = read_message(&mut cursor).unwrap() else {
                panic!("wrong kind")
            };
            assert_eq!(req.id, id);
        }
        assert!(read_message(&mut cursor).is_err(), "EOF after last frame");
    }

    #[test]
    fn oversized_and_garbage_frames_are_refused() {
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_BYTES + 1).to_le_bytes());
        oversized.push(KIND_PING);
        assert!(read_message(&mut oversized.as_slice()).is_err());

        let mut unknown = Vec::new();
        unknown.extend_from_slice(&2u32.to_le_bytes());
        unknown.push(200);
        unknown.push(b'x');
        assert!(read_message(&mut unknown.as_slice()).is_err());

        let mut zero = Vec::new();
        zero.extend_from_slice(&0u32.to_le_bytes());
        assert!(read_message(&mut zero.as_slice()).is_err());
    }
}
